#!/usr/bin/env python3
"""CI smoke for the HTTP service front: boot, query, stats, clean stop.

Launches the real entry point (``python -m repro.service --port 0``) as
a subprocess, waits for its "listening" line to learn the OS-assigned
port, issues one count query against a freshly written ``.rgx`` graph
(exercising path-based registry resolution) and one ``/stats`` request,
then interrupts the server and asserts it exits cleanly.  Exit code 0
means the whole boot -> serve -> shutdown loop works outside pytest.

Run:  PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
LISTENING = re.compile(r"listening on http://([\d.]+):(\d+)")


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60.0) as response:
        return json.load(response)


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.session import MiningSession
    from repro.graph import barabasi_albert
    from repro.graph.binary_io import save_mmap
    from repro.pattern import generate_clique

    graph = barabasi_albert(200, 3, seed=11)
    expected = MiningSession(graph).count(generate_clique(3))

    with tempfile.TemporaryDirectory() as tmp:
        graph_path = os.path.join(tmp, "smoke.rgx")
        save_mmap(graph, graph_path)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            line = server.stdout.readline()
            match = LISTENING.search(line)
            assert match, f"no listening banner, got: {line!r}"
            base = f"http://{match.group(1)}:{match.group(2)}"

            count = _post(
                f"{base}/query",
                {"verb": "count", "graph": graph_path, "pattern": "clique:3"},
            )
            assert count["ok"], count
            assert count["result"]["count"] == expected, count

            with urllib.request.urlopen(f"{base}/stats", timeout=60.0) as r:
                stats = json.load(r)
            assert stats["ok"], stats
            assert stats["result"]["requests"]["count"] == 1, stats
            assert stats["result"]["registry"]["sessions"] == 1, stats
        finally:
            server.send_signal(signal.SIGINT)
            output, _ = server.communicate(timeout=30.0)

        assert server.returncode == 0, (
            f"server exited {server.returncode}; output:\n{output}"
        )
        assert "repro service stopped" in output, output

    print("service smoke OK: count + stats served, clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
