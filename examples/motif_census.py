#!/usr/bin/env python3
"""Motif census with the symmetry-breaking ablation (Fig 4e + Fig 10).

Counts all 3- and 4-vertex motifs on a dataset stand-in, then re-runs
4-motifs without symmetry breaking (PRG-U) to show the cost of losing
pattern-awareness — same answers, multiplied work.

Run:  python examples/motif_census.py
"""

import time

from repro.baselines import prgu_motif_counts
from repro.graph import patents_like
from repro.mining import motif_census_table, motif_counts


def main() -> None:
    graph = patents_like(scale=0.15)
    print(f"data graph: {graph!r}\n")

    print(motif_census_table(graph, 3))
    print()
    print(motif_census_table(graph, 4))

    # --- the ablation ----------------------------------------------------
    begin = time.perf_counter()
    aware = motif_counts(graph, 4)
    t_aware = time.perf_counter() - begin

    begin = time.perf_counter()
    unaware = prgu_motif_counts(graph, 4)
    t_unaware = time.perf_counter() - begin

    assert aware == unaware
    print("\nsymmetry-breaking ablation (4-motifs):")
    print(f"  PRG   (with symmetry breaking):    {t_aware:.3f}s")
    print(f"  PRG-U (without, + user dedup):     {t_unaware:.3f}s")
    print(f"  slowdown: {t_unaware / t_aware:.1f}x — the Figure 10 effect")


if __name__ == "__main__":
    main()
