#!/usr/bin/env python3
"""Quickstart: the pattern-first programming model in five minutes.

Builds a small social-network-like graph, then shows the core verbs:

* ``count``  — how many matches of a pattern exist;
* ``match``  — run a callback on every match;
* ``exists`` — early-terminating existence query;
* plan inspection — what the engine computed from your pattern.

Run:  python examples/quickstart.py
"""

from repro.core import count, exists, generate_plan, match
from repro.graph import barabasi_albert
from repro.pattern import generate_chain, generate_clique, generate_star


def main() -> None:
    # A scale-free graph standing in for a small social network.
    graph = barabasi_albert(500, 4, seed=7, name="demo-social")
    print(f"data graph: {graph!r}\n")

    # --- count: triangles, wedges, 4-cliques --------------------------
    triangle = generate_clique(3)
    print(f"triangles:      {count(graph, triangle):>8,}")
    print(f"wedges:         {count(graph, generate_star(3)):>8,}")
    print(f"4-cliques:      {count(graph, generate_clique(4)):>8,}")
    print(f"4-paths:        {count(graph, generate_chain(4)):>8,}")

    # --- match: callbacks see every match -----------------------------
    hub_triangles = [0]

    def spot_hub(m) -> None:
        if any(graph.degree(v) > 50 for v in m.vertices()):
            hub_triangles[0] += 1

    match(graph, triangle, callback=spot_hub)
    print(f"\ntriangles touching a degree>50 hub: {hub_triangles[0]:,}")

    # --- exists: early termination -------------------------------------
    for k in (4, 6, 9):
        verdict = "yes" if exists(graph, generate_clique(k)) else "no"
        print(f"contains a {k}-clique? {verdict}")

    # --- the exploration plan, the heart of pattern-awareness ----------
    print("\nexploration plan for the 4-clique:")
    print(generate_plan(generate_clique(4)).describe())


if __name__ == "__main__":
    main()
