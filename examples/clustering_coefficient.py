#!/usr/bin/env python3
"""Global clustering coefficient with early termination (Figure 4b).

The paper's existence-query idiom: to decide whether a graph's global
clustering coefficient exceeds a bound, count 3-stars first (cheap), then
count triangles but *stop exploring* the moment enough triangles have
been seen — the aggregate answer is already determined, so the remaining
exploration is wasted work.

This example runs the bounded query against two graphs — one clustered,
one not — and compares the early-terminating run's explored-task count
against a full count to show the termination actually saves work.

Run:  python examples/clustering_coefficient.py
"""

from repro.graph import barabasi_albert, random_regular
from repro.mining import gcc_exceeds_bound, global_clustering_coefficient


def probe(name: str, graph, bound: float) -> None:
    exact = global_clustering_coefficient(graph)
    total_triangles = round(exact * result_wedges(graph) / 3)
    result = gcc_exceeds_bound(graph, bound)
    verdict = "exceeds" if result.exceeded else "does not exceed"
    stopped_early = result.exceeded and result.triangles_seen < total_triangles
    print(f"{name}: gcc = {exact:.4f} -> {verdict} bound {bound}")
    print(
        f"  triangles seen before deciding: {result.triangles_seen:,}"
        f" of {total_triangles:,} (early stop: {'yes' if stopped_early else 'no'})"
    )


def result_wedges(graph) -> int:
    from repro.core import count
    from repro.pattern import generate_star

    return count(graph, generate_star(3))


def main() -> None:
    # Scale-free graphs close many triangles around hubs; random regular
    # graphs of modest degree close almost none.
    clustered = barabasi_albert(2_000, 8, seed=3, name="scale-free")
    sparse = random_regular(2_000, 8, seed=3, name="regular")

    print("=== clustered graph ===")
    probe("scale-free", clustered, bound=0.01)
    print()
    print("=== unclustered graph ===")
    probe("regular", sparse, bound=0.01)


if __name__ == "__main__":
    main()
