#!/usr/bin/env python3
"""The async mining service, embedded in-process.

A ``MiningService`` is the whole service tier behind one object: a
session registry (shared ``MiningSession`` per graph, LRU + TTL
eviction), a batching queue (concurrent compatible requests coalesce
into one fused walk), a worker pool, and metrics.  The HTTP front
(``python -m repro.service`` / ``repro-mine serve``) is just this object
behind a socket — everything below works identically over HTTP.

The demo registers an in-memory graph, fires a burst of concurrent
requests (which fuse), shows structured guardrail errors, and reads the
fusion gauges back from the ``stats`` verb.

Run:  python examples/service_demo.py
"""

import asyncio

from repro.graph import barabasi_albert
from repro.service import MiningService, ServiceConfig


async def main() -> None:
    graph = barabasi_albert(800, 4, seed=7, name="demo-service")
    config = ServiceConfig(workers=2, max_wait_ms=5.0)
    async with MiningService(config) as service:
        service.register_graph("demo", graph)
        print(f"serving {graph!r} as 'demo'\n")

        # --- a concurrent burst: compatible requests fuse ------------
        burst = [
            {"verb": "count", "graph": "demo", "pattern": spec}
            for spec in (
                "clique:3", "star:3", "chain:3",
                "clique:3",  # duplicate: rides its sibling's walk
                "cycle:4",
            )
        ]
        responses = await asyncio.gather(*[service.handle(r) for r in burst])
        print("concurrent counts (one fused walk):")
        for response in responses:
            result = response["result"]
            print(f"  {result['pattern']:>9}: {result['count']:>8,}")

        # --- other verbs through the same dispatch surface ------------
        exists = await service.handle(
            {"verb": "exists", "graph": "demo", "pattern": "clique:5"}
        )
        print(f"\n5-clique exists: {exists['result']['exists']}")

        matches = await service.handle(
            {"verb": "match", "graph": "demo", "pattern": "clique:3",
             "limit": 3}
        )
        result = matches["result"]
        print(
            f"triangles: {result['count']:,} total, "
            f"first {result['returned']} rows: {result['matches']}"
        )

        # --- guardrail refusals come back as structured errors --------
        refused = await service.handle(
            {"verb": "count", "graph": "demo", "pattern": "star:5",
             "options": {"guard": "refuse"},
             "timeout_ms": 0.001}  # an absurd deadline: solo + budget
        )
        error = refused["error"]
        print(f"\nbudgeted request -> {error['code']}: "
              f"partial={error['partial']['matches']}")

        unknown = await service.handle(
            {"verb": "count", "graph": "not-registered",
             "pattern": "clique:3"}
        )
        print(f"unknown graph   -> {unknown['error']['code']}")

        # --- the stats verb exposes the fusion gauges ----------------
        stats = (await service.handle({"verb": "stats"}))["result"]
        batching = stats["batching"]
        print(
            f"\nbatching: {batching['batches']} batches, "
            f"max size {batching['max_batch_size']}, "
            f"{batching['deduped_requests']} deduped, "
            f"fusion rate {batching['fusion_batch_rate']:.2f}"
        )
        print(f"registry: {stats['registry']}")


if __name__ == "__main__":
    asyncio.run(main())
