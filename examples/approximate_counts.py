#!/usr/bin/env python3
"""Approximate pattern counting with error bounds (the sampling tier).

Exact mining explores every match; the approximate tier samples level-0
frontiers through the same engines, reweights by inverse sampling
probability, and grows the sample adaptively until a requested relative
error is met.  This example:

1. counts triangles and tailed-triangles exactly with the engine,
2. estimates the same counts at several relative-error targets and
   checks the truth lies inside the reported confidence interval,
3. shows a capped-budget estimate, the exact-degeneration fallback, and
   planner auto-routing under a latency budget.

Run:  python examples/approximate_counts.py
"""

from repro.core.session import MiningSession
from repro.graph import barabasi_albert
from repro.pattern import Pattern, generate_clique


def main() -> None:
    graph = barabasi_albert(3_000, 6, seed=11, name="demo")
    session = MiningSession(graph)
    print(f"data graph: {graph!r}\n")

    triangle = generate_clique(3)
    tailed = Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])

    for name, pattern in [("triangle", triangle), ("tailed triangle", tailed)]:
        exact = session.count(pattern)
        print(f"--- {name}: exact = {exact:,}")
        for rel_err in (0.10, 0.05, 0.02):
            r = session.count(pattern, approx=rel_err, seed=1)
            err = abs(r.estimate - exact) / exact * 100
            print(
                f"  target {rel_err:>4.0%} -> {r.estimate:>12,.0f}"
                f"  (CI [{r.ci_low:,.0f}, {r.ci_high:,.0f}],"
                f" {r.samples} samples, actual error {err:.1f}%,"
                f" in CI: {r.within(exact)})"
            )
        print()

    # A hard sample cap trades accuracy for a latency bound ...
    capped = session.count(triangle, approx=0.05, max_samples=1_500, seed=2)
    print(f"capped at 1,500 samples: {capped.estimate:,.0f} "
          f"(stop: {capped.early_stop})")
    # ... and a cap covering the whole frontier degenerates to exact.
    full = session.count(
        triangle, approx=0.05, max_samples=graph.num_vertices, seed=2
    )
    print(f"budget >= frontier: {full.estimate:,.0f} (exact={full.exact})\n")

    # Planner auto-routing: plan="auto" plus a latency budget answers
    # predicted-slow queries from the sampling tier automatically.
    routed = session.count(
        generate_clique(4), plan="auto", latency_budget=1e-6, seed=3
    )
    kind = type(routed).__name__
    print(f"latency-budgeted 4-clique census came back as {kind}: "
          f"{float(routed):,.0f}")


if __name__ == "__main__":
    main()
