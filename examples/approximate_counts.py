#!/usr/bin/env python3
"""Approximate pattern counting with an error-latency profile (ASAP-style).

Exact mining explores every match; approximate mining samples guided
paths through the pattern's schedule and scales by inverse probability.
This example:

1. counts triangles and tailed-triangles exactly with the engine,
2. estimates the same counts from samples at several trial budgets,
3. builds an error profile (how many trials buy a 5% error bound) and
   verifies the profile's promise.

Run:  python examples/approximate_counts.py
"""

from repro.core import count
from repro.graph import barabasi_albert
from repro.mining import approximate_count, trials_for_error
from repro.pattern import Pattern, generate_clique


def main() -> None:
    graph = barabasi_albert(3_000, 6, seed=11, name="demo")
    print(f"data graph: {graph!r}\n")

    triangle = generate_clique(3)
    tailed = Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])

    for name, pattern in [("triangle", triangle), ("tailed triangle", tailed)]:
        exact = count(graph, pattern)
        print(f"--- {name}: exact = {exact:,}")
        for trials in (1_000, 10_000, 100_000):
            r = approximate_count(graph, pattern, trials=trials, seed=1)
            err = abs(r.estimate - exact) / exact * 100
            print(
                f"  {trials:>7,} trials -> {r.estimate:>12,.0f}"
                f"  (+-{r.ci95:,.0f} CI, actual error {err:.1f}%)"
            )
        print()

    # Error-latency profile: ask for 5% error at 95% confidence.
    target = 0.05
    trials = trials_for_error(graph, triangle, target, pilot_trials=2_000, seed=2)
    r = approximate_count(graph, triangle, trials=trials, seed=3)
    exact = count(graph, triangle)
    err = abs(r.estimate - exact) / exact
    print(f"profile: {trials:,} trials promised <= {target:.0%} error")
    print(f"achieved: estimate {r.estimate:,.0f} vs exact {exact:,} "
          f"-> {err:.1%} error")


if __name__ == "__main__":
    main()
