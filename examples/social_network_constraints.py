#!/usr/bin/env python3
"""Structural constraints: anti-edges and anti-vertices (§3.1 use cases).

The paper motivates its two novel abstractions with social-network
queries that no pattern-unaware system can express directly:

* **friend recommendation** (anti-edge): find unrelated pairs of people
  with at least two mutual friends — a 4-cycle whose 'recommendation'
  diagonal is strictly absent;
* **exactly-one-mutual-friend** (anti-vertex): pairs of friends whose
  only mutual friend is the one in the match;
* **maximal triangles** (fully-connected anti-vertex, pattern p7):
  triangles not contained in any 4-clique.

Run:  python examples/social_network_constraints.py
"""

from repro.core import count, match
from repro.graph import barabasi_albert
from repro.pattern import Pattern, pattern_p7


def recommendation_pattern() -> Pattern:
    """Figure 3's pa: path a - f1 - b - f2 - a closed, with (a, b) anti."""
    p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    p.add_anti_edge(0, 2)  # the two people must NOT already be friends
    return p


def one_mutual_friend_pattern() -> Pattern:
    """Figure 3's pe: a triangle where the friend pair (0, 2) has no other
    common neighbor — an anti-vertex anti-adjacent to 0 and 2."""
    p = Pattern.from_edges([(0, 1), (1, 2), (0, 2)])
    p.add_anti_vertex([0, 2])
    return p


def main() -> None:
    graph = barabasi_albert(400, 5, seed=21, name="friends")
    print(f"social graph: {graph!r}\n")

    # --- anti-edge: friend recommendations -----------------------------
    rec = recommendation_pattern()
    suggestions: dict[tuple[int, int], int] = {}

    def collect(m) -> None:
        pair = tuple(sorted((m[0], m[2])))
        suggestions[pair] = suggestions.get(pair, 0) + 1

    total = match(graph, rec, callback=collect)
    top = sorted(suggestions.items(), key=lambda kv: -kv[1])[:5]
    print(f"recommendation contexts found: {total:,}")
    print("top suggested friendships (pair: #shared-friend paths):")
    for (a, b), n in top:
        print(f"  {a:>4} - {b:<4} {n} mutual-friend pairs")

    # --- anti-vertex: exactly one mutual friend -------------------------
    one_mutual = one_mutual_friend_pattern()
    print(f"\nfriend pairs with exactly one mutual friend: "
          f"{count(graph, one_mutual):,}")

    # --- p7: maximal triangles ------------------------------------------
    print(f"maximal triangles (in no 4-clique):            "
          f"{count(graph, pattern_p7()):,}")
    print(f"all triangles:                                 "
          f"{count(graph, Pattern.from_edges([(0, 1), (1, 2), (0, 2)])):,}")


if __name__ == "__main__":
    main()
