#!/usr/bin/env python3
"""Frequent subgraph mining with MNI support and label discovery (Fig 4a).

Mines a labeled co-authorship-like graph for frequent labeled patterns,
growing them edge by edge.  Starting patterns are unlabeled; labels are
*discovered* from matches, and anti-monotone pruning keeps only extensions
of frequent patterns.

Run:  python examples/fsm_labeled.py
"""

from repro.graph import mico_like
from repro.mining import fsm
from repro.pattern import pattern_to_text


def main() -> None:
    graph = mico_like(scale=0.4)
    print(f"labeled graph: {graph!r}")

    threshold = 5
    for num_edges in (1, 2, 3):
        result = fsm(graph, num_edges=num_edges, threshold=threshold)
        print(
            f"\n=== FSM: {num_edges}-edge patterns, support >= {threshold} ==="
        )
        print(f"frequent patterns: {len(result.frequent)}")
        print(f"structural patterns explored: {result.patterns_explored}")
        print(f"domain writes: {result.domain_writes:,}")

        top = sorted(result.frequent.items(), key=lambda kv: -kv[1])[:3]
        for pattern, support in top:
            print(f"\nsupport {support}:")
            for line in pattern_to_text(pattern).splitlines():
                print(f"  {line}")


if __name__ == "__main__":
    main()
