#!/usr/bin/env python3
"""Existence queries with early termination (Fig 4b, 4f, §5.3).

Two programs from the paper:

* the global-clustering-coefficient bound: count wedges, then count
  triangles only until the bound is provably exceeded;
* k-clique existence: stop all exploration at the first match.

Run:  python examples/existence_queries.py
"""

from repro.core import EngineStats, ExplorationControl, count, match
from repro.graph import orkut_like
from repro.mining import (
    clique_existence,
    gcc_exceeds_bound,
    global_clustering_coefficient,
)
from repro.pattern import generate_clique


def main() -> None:
    graph = orkut_like(scale=0.15)
    print(f"data graph: {graph!r}\n")

    # --- clustering coefficient bound ----------------------------------
    gcc = global_clustering_coefficient(graph)
    print(f"exact global clustering coefficient: {gcc:.4f}")
    for bound in (gcc / 2, gcc * 2):
        result = gcc_exceeds_bound(graph, bound)
        verdict = "exceeded" if result.exceeded else "not exceeded"
        print(
            f"  bound {bound:.4f}: {verdict} after counting "
            f"{result.triangles_seen:,} triangles "
            f"(of {count(graph, generate_clique(3)):,} total)"
        )

    # --- clique existence with work accounting --------------------------
    print("\nclique existence (early termination):")
    for k in (5, 8, 12):
        stats = EngineStats()
        control = ExplorationControl()
        found = []
        match(
            graph,
            generate_clique(k),
            callback=lambda m: (found.append(m), control.stop()),
            control=control,
            stats=stats,
        )
        verdict = "found" if found else "absent"
        print(
            f"  {k:>2}-clique: {verdict:<6} "
            f"after {stats.partial_matches:,} partial matches"
        )

    # Convenience wrapper doing the same:
    print(f"\nclique_existence(graph, 8) = {clique_existence(graph, 8)}")


if __name__ == "__main__":
    main()
