#!/usr/bin/env python3
"""Multi-query session: one graph, one ``MiningSession``, many verbs.

The session-centric workflow for service-style workloads: pin a graph
once, then issue a whole analysis — motif census, labeled counts,
existence probes, a map/reduce aggregation — against the same session.
The degree ordering, CSR view, exploration plans and label-filtered
start lists are derived once and reused by every query
(``session.cache_info()`` shows the reuse at the end).

Run:  python examples/session_workflow.py
"""

from repro.core import MiningSession
from repro.graph import barabasi_albert, with_random_labels
from repro.mining.motifs import motif_counts
from repro.pattern import generate_chain, generate_clique, generate_star


def main() -> None:
    # A labeled scale-free graph standing in for a small social network
    # (labels ~ user segments).
    graph = with_random_labels(
        barabasi_albert(600, 4, seed=7, name="demo-social"), 3, seed=11
    )
    session = MiningSession(graph)
    print(f"data graph: {graph!r}\n")

    # --- a 4-motif census: six patterns over one session ---------------
    print("4-motif census (vertex-induced):")
    for motif, n in sorted(
        motif_counts(session, 4).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {n:>10,}  {motif!r}")

    # --- labeled counts reuse the same ordering and CSR view -----------
    tri = generate_clique(3)
    same_segment = generate_clique(3)
    for u in range(3):
        same_segment.set_label(u, 0)
    print(f"\ntriangles:                 {session.count(tri):>8,}")
    print(f"triangles all in segment 0: {session.count(same_segment):>7,}")

    # --- existence probes: early-terminating, batched-engine served ----
    for k in (4, 6, 9):
        verdict = "yes" if session.exists(generate_clique(k)) else "no"
        print(f"contains a {k}-clique? {verdict}")

    # --- aggregate: the paper's map/reduce idiom as a verb --------------
    shapes = session.aggregate(
        [tri, generate_star(3), generate_chain(4)],
        lambda m: (m.pattern.num_edges, 1),
    )
    print("\nmatches by pattern edge count:", dict(sorted(shapes.items())))

    # --- everything above shared one derivation of the graph state -----
    print("\nsession cache info:", session.cache_info())


if __name__ == "__main__":
    main()
