"""Horizontal ASCII bar charts (the terminal stand-in for Figs 10-13).

``bar_chart`` draws one bar per labeled value, scaled to a width;
``stacked_bar`` draws a single 100% bar split into named segments (the
Figure 11 runtime-ratio style).  Both support log-ish readability by
printing exact values beside the bars — the bars orient, the numbers
carry the data.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

__all__ = ["bar_chart", "stacked_bar"]

_FULL = "#"
_SEGMENT_GLYPHS = "#=+:.~o*"


def bar_chart(
    items: Mapping[str, float] | Sequence[tuple[str, float]],
    width: int = 48,
    value_format: Callable[[float], str] = lambda v: f"{v:,.2f}",
) -> str:
    """One horizontal bar per item, scaled to the largest value.

    >>> print(bar_chart({"a": 4.0, "b": 1.0}, width=8))
    a  ########  4.00
    b  ##        1.00
    """
    pairs = list(items.items()) if isinstance(items, Mapping) else list(items)
    if not pairs:
        return "(no data)"
    if width < 1:
        raise ValueError("width must be positive")
    if any(v < 0 for _, v in pairs):
        raise ValueError("bar values must be non-negative")
    peak = max(v for _, v in pairs)
    label_w = max(len(name) for name, _ in pairs)
    lines = []
    for name, value in pairs:
        filled = 0 if peak == 0 else max(
            round(width * value / peak), 1 if value > 0 else 0
        )
        bar = (_FULL * filled).ljust(width)
        lines.append(f"{name:<{label_w}}  {bar}  {value_format(value)}")
    return "\n".join(lines)


def stacked_bar(
    shares: Mapping[str, float] | Sequence[tuple[str, float]],
    width: int = 60,
) -> str:
    """A single 100% bar split into named segments, plus a legend.

    Shares are normalized; zero-share segments appear in the legend but
    occupy no cells.  Rounding remainders go to the largest segment so
    the bar is always exactly ``width`` cells.
    """
    pairs = list(shares.items()) if isinstance(shares, Mapping) else list(shares)
    if not pairs:
        return "(no data)"
    if width < len(pairs):
        raise ValueError("width must fit at least one cell per segment")
    if any(v < 0 for _, v in pairs):
        raise ValueError("shares must be non-negative")
    total = sum(v for _, v in pairs)
    if total == 0:
        return "(no data)"
    cells = [round(width * v / total) for _, v in pairs]
    drift = width - sum(cells)
    widest = max(range(len(pairs)), key=lambda i: pairs[i][1])
    cells[widest] += drift
    glyphs = [
        _SEGMENT_GLYPHS[i % len(_SEGMENT_GLYPHS)] for i in range(len(pairs))
    ]
    bar = "".join(g * c for g, c in zip(glyphs, cells))
    legend = "  ".join(
        f"{g}={name} {v / total:.1%}"
        for g, (name, v), c in zip(glyphs, pairs, cells)
    )
    return f"[{bar}]\n{legend}"
