"""Aligned ASCII tables for benchmark and CLI output.

A deliberately small renderer: typed columns, row accumulation, one
``render()``.  No wrapping, no colors — output is meant to be diffable
and to paste cleanly into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Table"]


@dataclass(frozen=True)
class _Column:
    header: str
    align: str  # "<" left, ">" right


class Table:
    """Accumulate rows, then render with per-column width fitting.

    >>> t = Table(["system", "time"], aligns="<>")
    >>> t.add_row("peregrine", "0.12s")
    >>> t.add_row("arabesque-like", "158.05s")
    >>> print(t.render())
    system          time
    ----------------------
    peregrine       0.12s
    arabesque-like  158.05s
    """

    def __init__(self, headers: Sequence[str], aligns: str | None = None):
        if aligns is None:
            aligns = "<" * len(headers)
        if len(aligns) != len(headers):
            raise ValueError("aligns must have one character per header")
        if any(a not in "<>" for a in aligns):
            raise ValueError("aligns characters must be '<' or '>'")
        self._columns = [
            _Column(header=h, align=a) for h, a in zip(headers, aligns)
        ]
        self._rows: list[list[str]] = []

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def add_row(self, *cells: object) -> None:
        """Append one row; cells are str()-ed."""
        if len(cells) != len(self._columns):
            raise ValueError(
                f"expected {len(self._columns)} cells, got {len(cells)}"
            )
        self._rows.append([str(c) for c in cells])

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self, separator: str = "  ") -> str:
        """The table as a string: header, rule, rows."""
        widths = [
            max(len(col.header), *(len(r[i]) for r in self._rows))
            if self._rows
            else len(col.header)
            for i, col in enumerate(self._columns)
        ]
        def fmt(cells: Sequence[str]) -> str:
            return separator.join(
                f"{cell:{col.align}{width}}"
                for cell, col, width in zip(cells, self._columns, widths)
            ).rstrip()

        header = fmt([c.header for c in self._columns])
        rule = "-" * (sum(widths) + len(separator) * (len(widths) - 1))
        lines = [header, rule]
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
