"""Value formatters shared by tables, charts and the CLI.

The conventions follow the paper's tables: seconds with two decimals,
'—' for out-of-memory / not-applicable cells, '×' for budget timeouts,
and thousands separators on counts.
"""

from __future__ import annotations

__all__ = ["format_seconds", "format_bytes", "format_count", "speedup_cell"]

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]


def format_seconds(seconds: float | None) -> str:
    """Seconds in the paper's table style; sub-millisecond gets precision."""
    if seconds is None:
        return "—"
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def format_bytes(nbytes: int | None) -> str:
    """Binary-unit byte sizes (the Figure 13 axis)."""
    if nbytes is None:
        return "—"
    if nbytes < 0:
        raise ValueError("negative byte count")
    value = float(nbytes)
    for unit in _BYTE_UNITS:
        if value < 1024 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_count(n: int | None) -> str:
    """Counts with thousands separators; '—' for missing."""
    return "—" if n is None else f"{n:,}"


def speedup_cell(
    baseline_seconds: float | None, ours_seconds: float, status: str = "ok"
) -> str:
    """A 'their-time (Nx)' cell; '×' for timeout, '—' for oom, as in Tables 3-5."""
    if status == "timeout":
        return "×"
    if status == "oom":
        return "—"
    if baseline_seconds is None:
        return "—"
    ratio = baseline_seconds / ours_seconds if ours_seconds > 0 else float("inf")
    ratio_text = "inf" if ratio == float("inf") else f"{ratio:.1f}x"
    return f"{format_seconds(baseline_seconds)} ({ratio_text})"
