"""Plain-text reporting: tables, bar charts, and unit formatting.

Every table and figure the benchmark harness regenerates is ultimately a
terminal artifact; this package holds the shared renderers so benches,
examples and the CLI format results the same way:

* :class:`~repro.reporting.tables.Table` — aligned ASCII tables with
  typed columns (Table 2-5 style output);
* :func:`~repro.reporting.charts.bar_chart` /
  :func:`~repro.reporting.charts.stacked_bar` — horizontal bars for the
  Figure 10/13 comparisons and the Figure 11 ratio breakdown;
* formatters for seconds, bytes and counts with the conventions the
  paper's tables use ('—' for n/a, '×' for timeouts).
"""

from .charts import bar_chart, stacked_bar
from .format import format_bytes, format_count, format_seconds, speedup_cell
from .tables import Table

__all__ = [
    "Table",
    "bar_chart",
    "stacked_bar",
    "format_bytes",
    "format_count",
    "format_seconds",
    "speedup_cell",
]
