"""Byte accounting for intermediate state (the Figure 13 comparison).

Peak memory in the paper separates systems far more than wall time: BFS
systems must hold every partial embedding of a step, while Peregrine keeps
only the recursion stack.  We account *logical* bytes (8 per vertex slot)
so pure-Python object overhead does not drown the comparison.
"""

from __future__ import annotations

__all__ = ["StoreMeter", "embedding_bytes"]

_BYTES_PER_SLOT = 8


def embedding_bytes(size: int) -> int:
    """Logical footprint of one embedding with ``size`` vertices."""
    return _BYTES_PER_SLOT * size


class StoreMeter:
    """Tracks live + peak bytes of an embedding/aggregation store.

    Baselines call :meth:`add` / :meth:`remove` as embeddings enter and
    leave their queues; ``peak_bytes`` is what Fig 13 reports.  An optional
    ``budget_bytes`` makes the store raise through the caller (the caller
    checks :meth:`over_budget`) to model the paper's OOM cells.
    """

    __slots__ = ("live_bytes", "peak_bytes", "budget_bytes")

    def __init__(self, budget_bytes: int | None = None):
        self.live_bytes = 0
        self.peak_bytes = 0
        self.budget_bytes = budget_bytes

    def add(self, nbytes: int) -> None:
        self.live_bytes += nbytes
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes

    def add_embedding(self, size: int) -> None:
        self.add(embedding_bytes(size))

    def remove(self, nbytes: int) -> None:
        self.live_bytes = max(0, self.live_bytes - nbytes)

    def remove_embedding(self, size: int) -> None:
        self.remove(embedding_bytes(size))

    def over_budget(self) -> bool:
        return self.budget_bytes is not None and self.live_bytes > self.budget_bytes
