"""Instrumentation: counters (Fig 1), memory accounting (Fig 13), stage
timers (Fig 11)."""

from .breakdown import StageTimer
from .counters import ExplorationCounters, format_fig1_row
from .memory import StoreMeter, embedding_bytes

__all__ = [
    "StageTimer",
    "ExplorationCounters",
    "format_fig1_row",
    "StoreMeter",
    "embedding_bytes",
]
