"""Exploration-cost counters shared by the engine and the baselines.

Figure 1 of the paper profiles graph mining systems by three numbers:
total (partial + complete) matches explored, canonicality checks performed,
and isomorphism checks performed.  :class:`ExplorationCounters` is the
common ledger all our systems write to, so the Fig 1 benchmark can print
one row per system from identical bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExplorationCounters", "format_fig1_row"]


@dataclass
class ExplorationCounters:
    """Cost ledger for one mining run of any system (ours or a baseline)."""

    system: str = "unknown"
    matches_explored: int = 0  # partial + complete embeddings touched
    canonicality_checks: int = 0
    isomorphism_checks: int = 0
    result_size: int = 0  # final number of (canonical) matches
    peak_store_bytes: int = 0  # max bytes of live intermediate embeddings
    aggregation_writes: int = 0  # domain/support updates (FSM workloads)
    extra: dict = field(default_factory=dict)

    def explored_ratio(self) -> float:
        """Matches explored relative to result size (Fig 1's '(N x)')."""
        if self.result_size == 0:
            return float("inf") if self.matches_explored else 0.0
        return self.matches_explored / self.result_size

    def merge(self, other: "ExplorationCounters") -> None:
        self.matches_explored += other.matches_explored
        self.canonicality_checks += other.canonicality_checks
        self.isomorphism_checks += other.isomorphism_checks
        self.aggregation_writes += other.aggregation_writes
        self.peak_store_bytes = max(self.peak_store_bytes, other.peak_store_bytes)


def format_fig1_row(counters: ExplorationCounters) -> str:
    """One row of the Figure 1b/1c-style profiling table."""
    ratio = counters.explored_ratio()
    ratio_text = f"({ratio:,.0f}x)" if ratio != float("inf") else "(inf)"
    return (
        f"{counters.system:<14} {counters.matches_explored:>14,} {ratio_text:>10} "
        f"{counters.canonicality_checks:>14,} {counters.isomorphism_checks:>14,}"
    )
