"""Stage-time accounting for the Figure 11 execution-time breakdown.

The engine, when handed a :class:`StageTimer`, attributes time to the
paper's four stages:

* ``po`` — restricting sorted candidate sets to the partial-order range;
* ``core`` — adjacency-list intersections matching the pattern core;
* ``noncore`` — intersections/differences completing the match;
* ``other`` — everything else (fetching adjacency lists, remapping, ...),
  computed as total wall time minus the three measured stages.
"""

from __future__ import annotations

import time

__all__ = ["StageTimer"]

_STAGES = ("po", "core", "noncore", "other")


class StageTimer:
    """Accumulates per-stage wall time; safe to reuse across runs.

    ``other`` is special: the engine brackets the whole run with it, and
    :meth:`breakdown` subtracts the inner stages so the four shares sum to
    the total.
    """

    __slots__ = ("_totals", "_starts")

    def __init__(self) -> None:
        self._totals: dict[str, float] = {name: 0.0 for name in _STAGES}
        self._starts: dict[str, float] = {}

    def start(self, stage: str) -> None:
        self._starts[stage] = time.perf_counter()

    def stop(self, stage: str) -> None:
        begin = self._starts.pop(stage, None)
        if begin is not None:
            self._totals[stage] += time.perf_counter() - begin

    @property
    def total(self) -> float:
        """Total bracketed wall time in seconds."""
        return self._totals["other"]

    def breakdown(self) -> dict[str, float]:
        """Absolute seconds per stage; 'other' excludes the inner stages."""
        po = self._totals["po"]
        core = self._totals["core"]
        noncore = self._totals["noncore"]
        other = max(0.0, self._totals["other"] - po - core - noncore)
        return {"po": po, "core": core, "noncore": noncore, "other": other}

    def shares(self) -> dict[str, float]:
        """Per-stage fractions of total time (the Fig 11 ratio bars)."""
        parts = self.breakdown()
        total = sum(parts.values())
        if total <= 0.0:
            return {name: 0.0 for name in parts}
        return {name: value / total for name, value in parts.items()}

    def reset(self) -> None:
        self._totals = {name: 0.0 for name in _STAGES}
        self._starts.clear()
