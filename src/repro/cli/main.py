"""Argument parser wiring for ``repro-mine``.

``build_parser`` is separate from ``main`` so tests (and docs tooling)
can inspect the CLI surface without executing anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .. import __version__
from . import commands
from .parsing import add_dataset_arguments

__all__ = ["build_parser", "main"]


def _add_pattern_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pattern",
        required=True,
        help="pattern spec: clique:K, star:K, chain:K, cycle:K, p1..p8, "
        "edges:0-1,1-2,..., or file:PATH",
    )


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes (shared-CSR pool; 1 = in-process)",
    )
    parser.add_argument(
        "--schedule",
        choices=["dynamic", "static"],
        default=None,
        help="work placement across workers: 'dynamic' pulls "
        "degree-weighted frontier chunks from a shared queue (absorbs "
        "stragglers on skewed graphs), 'static' pre-assigns stride "
        "slices (the ablation baseline)",
    )
    parser.add_argument(
        "--chunk-hint",
        type=int,
        default=None,
        help="target start-vertices per dynamic chunk (uniform-frontier "
        "equivalent; default sizes chunks automatically)",
    )


def _add_guard_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per query; runs past it stop "
        "cooperatively and are reported as truncated",
    )
    parser.add_argument(
        "--max-matches",
        type=int,
        default=None,
        metavar="N",
        help="stop after roughly N matches (cooperative; in-process "
        "engines only)",
    )
    parser.add_argument(
        "--guard",
        choices=["off", "refuse", "downgrade"],
        default="off",
        help="admission guard: probe the query's frontier up front and "
        "refuse (exit 3) or downgrade predicted-explosive runs",
    )


def _add_matching_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vertex-induced",
        action="store_true",
        help="vertex-induced matching (Theorem 3.1) instead of edge-induced",
    )
    parser.add_argument(
        "--no-symmetry-breaking",
        action="store_true",
        help="PRG-U mode: report every automorphic copy (Figure 10 ablation)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Pattern-aware graph mining (Peregrine, EuroSys 2020)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="Table-2 style dataset statistics")
    add_dataset_arguments(p)
    p.set_defaults(func=commands.cmd_stats)

    p = sub.add_parser("generate", help="write a synthetic dataset to disk")
    add_dataset_arguments(p)
    p.add_argument("--output", required=True, help="edge-list output path")
    p.add_argument("--label-output", help="vertex-label output path")
    p.set_defaults(func=commands.cmd_generate)

    p = sub.add_parser("plan", help="show a pattern's exploration plan")
    _add_pattern_argument(p)
    _add_matching_flags(p)
    p.set_defaults(func=commands.cmd_plan)

    p = sub.add_parser(
        "explain",
        help="probe a query and print its cost estimate and adaptive "
        "plan without running it",
    )
    add_dataset_arguments(p)
    _add_pattern_argument(p)
    _add_matching_flags(p)
    p.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker budget the plan may cap (never exceed)",
    )
    p.add_argument(
        "--engine",
        choices=["auto", "fused", "accel", "accel-batch", "reference"],
        default="auto",
        help="pin an engine ('auto' lets the planner choose)",
    )
    p.set_defaults(func=commands.cmd_explain)

    p = sub.add_parser("count", help="count matches of a pattern")
    add_dataset_arguments(p)
    _add_pattern_argument(p)
    _add_matching_flags(p)
    p.add_argument(
        "--profile",
        action="store_true",
        help="print engine counters (tasks, partial matches, ...)",
    )
    p.add_argument(
        "--engine",
        choices=["auto", "accel", "accel-batch", "reference"],
        default="auto",
        help="engine selection (auto dispatches by graph density; "
        "--profile forces the reference engine)",
    )
    p.add_argument(
        "--plan",
        choices=["fixed", "auto"],
        default="fixed",
        help="'auto' replaces the fixed engine/schedule thresholds with "
        "the probe-driven adaptive planner ('fixed' is the ablation "
        "baseline)",
    )
    p.add_argument(
        "--approx",
        type=float,
        default=None,
        metavar="REL_ERR",
        help="estimate the count instead of enumerating: sample the "
        "frontier adaptively until the confidence interval is within "
        "REL_ERR of the estimate (prints the CI)",
    )
    p.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for the --approx interval (default 0.95)",
    )
    p.add_argument(
        "--max-samples",
        type=int,
        default=None,
        metavar="N",
        help="cap on sampled start vertices for --approx (covering the "
        "whole frontier degenerates to the exact count)",
    )
    p.add_argument(
        "--sample-seed",
        type=int,
        default=None,
        help="sampling RNG seed for --approx (reproducible estimates)",
    )
    p.add_argument(
        "--latency-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --plan auto: auto-route to the approximate tier when "
        "the probe predicts the exact run would blow this budget",
    )
    _add_parallel_flags(p)
    _add_guard_flags(p)
    p.set_defaults(func=commands.cmd_count)

    p = sub.add_parser("match", help="enumerate matches of a pattern")
    add_dataset_arguments(p)
    _add_pattern_argument(p)
    p.add_argument(
        "--vertex-induced", action="store_true", help="vertex-induced matching"
    )
    p.add_argument("--output", help="write matches to this file")
    p.add_argument(
        "--limit", type=int, default=None, help="print at most N matches"
    )
    p.set_defaults(func=commands.cmd_match)

    p = sub.add_parser("exists", help="existence query (early termination)")
    add_dataset_arguments(p)
    _add_pattern_argument(p)
    p.add_argument(
        "--vertex-induced", action="store_true", help="vertex-induced matching"
    )
    p.set_defaults(func=commands.cmd_exists)

    p = sub.add_parser("motifs", help="vertex-induced motif census")
    add_dataset_arguments(p)
    p.add_argument("--size", type=int, default=3, help="motif size (vertices)")
    p.add_argument(
        "--engine",
        choices=["auto", "fused", "accel", "accel-batch", "reference"],
        default=None,
        help="engine selection; 'fused' forces the multi-pattern runner, "
        "'accel-batch' ablates it with sequential per-pattern execution",
    )
    _add_parallel_flags(p)
    _add_guard_flags(p)
    p.set_defaults(func=commands.cmd_motifs)

    p = sub.add_parser("cliques", help="k-clique counting and variants")
    add_dataset_arguments(p)
    p.add_argument("-k", type=int, required=True, help="clique size")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--existence", action="store_true", help="stop at the first clique"
    )
    mode.add_argument(
        "--maximal",
        action="store_true",
        help="count k-cliques in no (k+1)-clique (anti-vertex query)",
    )
    mode.add_argument("--list", action="store_true", help="list cliques")
    p.add_argument(
        "--limit", type=int, default=None, help="list at most N cliques"
    )
    p.set_defaults(func=commands.cmd_cliques)

    p = sub.add_parser("fsm", help="frequent subgraph mining (MNI support)")
    add_dataset_arguments(p)
    p.add_argument(
        "--edges", type=int, default=2, help="pattern size in edges"
    )
    p.add_argument(
        "--threshold", type=int, required=True, help="MNI support threshold"
    )
    p.add_argument(
        "--verbose", action="store_true", help="print each frequent pattern"
    )
    p.add_argument(
        "--engine",
        choices=["auto", "fused", "accel", "accel-batch", "reference"],
        default=None,
        help="engine selection for each round's structural matches; "
        "'fused' forces the round onto one shared frontier walk",
    )
    _add_guard_flags(p)
    p.set_defaults(func=commands.cmd_fsm)

    p = sub.add_parser("graph", help="on-disk graph store tooling")
    gsub = p.add_subparsers(dest="graph_command", required=True)
    c = gsub.add_parser(
        "convert",
        help="convert between graph formats "
        "(.rgx mmap store, .npz, edge list — by extension)",
    )
    c.add_argument("input", help="source graph (.rgx, .npz, or edge list)")
    c.add_argument(
        "output", help="destination (.rgx, .npz, or edge list by extension)"
    )
    c.add_argument(
        "--labels",
        metavar="FILE",
        help="vertex-label file accompanying an edge-list input",
    )
    c.add_argument(
        "--degree-order",
        action="store_true",
        help="degree-order vertices before writing, so mining reloads "
        "skip the ordering pass entirely",
    )
    c.set_defaults(func=commands.cmd_graph_convert)
    i = gsub.add_parser("info", help="print an .rgx store's header")
    i.add_argument("path", help=".rgx file to inspect")
    i.set_defaults(func=commands.cmd_graph_info)

    p = sub.add_parser(
        "serve", help="serve mining queries over HTTP/JSON (async service)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (0 picks a free one; default 8765)",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="mining worker threads"
    )
    p.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="resident graph sessions before LRU eviction",
    )
    p.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict sessions idle longer than this",
    )
    p.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="batching window before a bucket flushes",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="requests that flush a bucket immediately",
    )
    p.add_argument(
        "--no-batching",
        action="store_true",
        help="run every request solo (ablation / debugging)",
    )
    p.set_defaults(func=commands.cmd_serve)

    p = sub.add_parser(
        "approx",
        help="approximate counting with error bounds (sampling tier)",
    )
    add_dataset_arguments(p)
    _add_pattern_argument(p)
    p.add_argument(
        "--vertex-induced", action="store_true", help="vertex-induced matching"
    )
    p.add_argument(
        "--rel-err",
        type=float,
        default=0.05,
        help="target relative error the adaptive estimator grows "
        "samples to meet (default 0.05)",
    )
    p.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for the reported interval (default 0.95)",
    )
    p.add_argument(
        "--max-samples",
        type=int,
        default=None,
        metavar="N",
        help="cap on sampled start vertices (covering the whole "
        "frontier degenerates to the exact count)",
    )
    p.add_argument(
        "--method",
        choices=["ns", "color-coding"],
        default="ns",
        help="estimator: 'ns' neighborhood sampling (default) or "
        "'color-coding' colorful sparsification (connected "
        "edge-induced patterns)",
    )
    p.add_argument(
        "--colors",
        type=int,
        default=2,
        help="number of colors for --method color-coding (default 2)",
    )
    p.add_argument(
        "--sample-seed", type=int, default=None, help="sampling RNG seed"
    )
    p.set_defaults(func=commands.cmd_approx)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, sys.stdout)
