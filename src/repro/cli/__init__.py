"""``repro-mine`` — the command-line face of the library.

Every mining verb the paper's Figure 4 programs exercise is available as
a subcommand, so the system can be driven without writing Python:

=============  ==========================================================
``stats``      Table-2 style statistics of a dataset or graph file
``generate``   write a synthetic stand-in dataset to an edge-list file
``plan``       print a pattern's exploration plan (Figure 5 output)
``count``      count matches of one pattern
``match``      enumerate matches (optionally to a file)
``exists``     existence query with early termination
``motifs``     vertex-induced motif census
``cliques``    k-clique counting / listing / maximal variants
``fsm``        frequent subgraph mining with MNI support
``approx``     ASAP-style approximate counting with error bounds
=============  ==========================================================

Datasets are selected with ``--dataset {mico,patents,orkut,friendster}``
(synthetic stand-ins, scaled by ``--scale``) or ``--graph FILE`` for an
edge-list on disk; patterns with ``--pattern SPEC`` where SPEC is
``clique:K``, ``star:K``, ``chain:K``, ``cycle:K``, ``p1``..``p8``
(Figure 9), ``edges:0-1,1-2,...`` or ``file:PATH``.
"""

from .main import build_parser, main

__all__ = ["build_parser", "main"]
