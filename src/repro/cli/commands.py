"""Implementations of the ``repro-mine`` subcommands.

Each ``cmd_*`` takes the parsed argparse namespace and an output stream,
returns a process exit code, and prints human-readable results.  They are
thin session consumers: every command builds one
:class:`~repro.core.session.MiningSession` over the loaded dataset and
issues its queries through it, so multi-pattern commands (motif census,
clique scans, FSM rounds) share one degree ordering, CSR view and plan
cache — and anything the CLI can do is equally scriptable from Python.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import TextIO

from ..core.callbacks import Budget
from ..core.engine import EngineStats
from ..core.session import MiningSession
from ..errors import (
    BudgetExceededError,
    PartialResult,
    QueryCancelledError,
    QueryRefusedError,
)
from ..core.plan import generate_plan
from ..graph.binary_io import GraphStore, open_graph, save_mmap, save_npz
from ..graph.io import load_edge_list, load_labeled, save_edge_list, save_labels
from ..graph.stats import graph_stats
from ..mining.sampling import ApproxCount, approx_count
from ..mining.cliques import (
    clique_count,
    clique_exists,
    list_cliques,
    maximal_clique_count,
)
from ..mining.fsm import fsm as fsm_api
from ..mining.motifs import motif_census_table
from ..pattern.io import pattern_to_text
from .parsing import load_dataset, parse_pattern_spec

__all__ = [
    "cmd_stats",
    "cmd_generate",
    "cmd_plan",
    "cmd_explain",
    "cmd_count",
    "cmd_match",
    "cmd_exists",
    "cmd_motifs",
    "cmd_cliques",
    "cmd_fsm",
    "cmd_approx",
    "cmd_graph_convert",
    "cmd_graph_info",
    "cmd_serve",
]


# Exit code for queries the admission guard refused up front — distinct
# from argparse errors (2) and success-with-truncation (0).
EXIT_REFUSED = 3


def _build_budget(args: argparse.Namespace) -> Budget | None:
    """The ``Budget`` described by ``--deadline`` / ``--max-matches``."""
    deadline = getattr(args, "deadline", None)
    max_matches = getattr(args, "max_matches", None)
    if deadline is None and max_matches is None:
        return None
    return Budget(deadline=deadline, max_matches=max_matches)


def _report_refused(err: QueryRefusedError, out: TextIO) -> int:
    print(f"refused: {err}", file=out)
    return EXIT_REFUSED


def _timed_header(out: TextIO, title: str) -> float:
    print(title, file=out)
    return time.perf_counter()


def _timed_footer(out: TextIO, begin: float) -> None:
    print(f"elapsed: {time.perf_counter() - begin:.3f}s", file=out)


def cmd_stats(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Table 2-style statistics for the selected graph."""
    graph = load_dataset(args)
    s = graph_stats(graph)
    print(s.row(), file=out)
    return 0


def cmd_generate(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Write a synthetic dataset to an edge-list (and optional label) file."""
    graph = load_dataset(args)
    if str(args.output).endswith(".npz"):
        save_npz(graph, args.output)
    else:
        save_edge_list(graph, args.output)
    print(
        f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges"
        f" to {args.output}",
        file=out,
    )
    if args.label_output:
        if not graph.is_labeled:
            raise SystemExit("error: --label-output needs a labeled graph")
        save_labels(graph, args.label_output)
        print(f"wrote labels to {args.label_output}", file=out)
    return 0


def cmd_plan(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Print a pattern's exploration plan (the Figure 5 pipeline output)."""
    pattern = parse_pattern_spec(args.pattern)
    plan = generate_plan(
        pattern,
        edge_induced=not args.vertex_induced,
        symmetry_breaking=not args.no_symmetry_breaking,
    )
    print(pattern_to_text(pattern), file=out)
    print(plan.describe(), file=out)
    return 0


def cmd_explain(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Probe a query and print its cost estimate and chosen plan.

    Runs nothing but the bounded probe walk — the same walk ``--guard``
    and ``--plan auto`` share — so the output is exactly what an
    adaptive run of the same query would decide.
    """
    from ..runtime import planner

    session = MiningSession(load_dataset(args))
    pattern = parse_pattern_spec(args.pattern)
    query_plan = planner.explain(
        session,
        pattern,
        num_workers=getattr(args, "processes", 1),
        edge_induced=not args.vertex_induced,
        symmetry_breaking=not args.no_symmetry_breaking,
        engine=getattr(args, "engine", "auto"),
    )
    est = query_plan.estimate
    print(f"pattern: {args.pattern}", file=out)
    if est is not None:
        print(
            f"frontier: {est.frontier_size} starts "
            f"({est.sampled} probed, {est.hub_count} hubs)",
            file=out,
        )
        print(
            f"level-1 expansion: avg {est.avg_expansion:.2f}, "
            f"max {est.max_expansion}, skew {est.hub_skew:.2f}",
            file=out,
        )
        print(f"growth trend: {est.growth:.2f}", file=out)
        print(
            f"predicted partials: {est.predicted_partials:.3g} "
            f"(raw {est.predicted_partials_raw:.3g}, "
            f"threshold {est.threshold:.3g})",
            file=out,
        )
        print("explosive: " + ("yes" if est.explosive else "no"), file=out)
    print(f"plan: {query_plan.describe()}", file=out)
    for reason in query_plan.reasons:
        print(f"  - {reason}", file=out)
    return 0


def cmd_count(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Count matches of one pattern (optionally across worker processes)."""
    session = MiningSession(load_dataset(args))
    pattern = parse_pattern_spec(args.pattern)
    processes = getattr(args, "processes", 1)
    stats = EngineStats() if args.profile else None
    # Profiling counters live in the reference engine only; forcing a
    # vectorized engine alongside --profile would raise at dispatch.
    engine = "reference" if args.profile else getattr(args, "engine", "auto")
    if processes > 1 and args.profile:
        raise SystemExit("error: --profile needs the in-process engine; "
                         "drop --processes")
    if processes > 1 and engine != "auto":
        raise SystemExit("error: --processes picks engines per worker; "
                         "drop --engine")
    guard = getattr(args, "guard", "off")
    plan_mode = getattr(args, "plan", None) or "fixed"
    approx = getattr(args, "approx", None)
    latency_budget = getattr(args, "latency_budget", None)
    budget = _build_budget(args)
    if approx is not None or latency_budget is not None:
        flag = "--approx" if approx is not None else "--latency-budget"
        if processes > 1:
            raise SystemExit(f"error: {flag} runs in-process; "
                             "drop --processes")
        if args.profile:
            raise SystemExit(f"error: {flag} drives the sampling tier; "
                             "drop --profile")
        if budget is not None:
            raise SystemExit(f"error: {flag} has its own stopping rule; "
                             "drop --deadline/--max-matches")
    begin = time.perf_counter()
    if processes > 1:
        from ..runtime.parallel import process_count

        # Match caps are polled by the in-process engines; the pool's
        # budget story is deadline-as-cancellation (the shared token the
        # workers poll between and inside chunks).
        if getattr(args, "max_matches", None) is not None:
            raise SystemExit("error: --max-matches needs the in-process "
                             "engines; drop --processes or use --deadline")
        cancel = None
        if getattr(args, "deadline", None) is not None:
            from ..runtime.termination import DeadlineControl

            if getattr(args, "schedule", None) == "static":
                raise SystemExit("error: --deadline needs the dynamic "
                                 "schedule under --processes")
            cancel = DeadlineControl(args.deadline)
        try:
            n = process_count(
                session,
                pattern,
                num_processes=processes,
                edge_induced=not args.vertex_induced,
                symmetry_breaking=not args.no_symmetry_breaking,
                schedule=getattr(args, "schedule", None),
                chunk_hint=getattr(args, "chunk_hint", None),
                cancel=cancel,
                guard=guard,
                plan=plan_mode,
            )
        except QueryRefusedError as err:
            return _report_refused(err, out)
        except QueryCancelledError as err:
            n = err.partial
    else:
        try:
            n = session.count(
                pattern,
                edge_induced=not args.vertex_induced,
                symmetry_breaking=not args.no_symmetry_breaking,
                stats=stats,
                engine=engine,
                budget=budget,
                on_budget="partial",
                guard=guard,
                plan=plan_mode,
                approx=approx,
                confidence=getattr(args, "confidence", 0.95),
                max_samples=getattr(args, "max_samples", None),
                seed=getattr(args, "sample_seed", None),
                latency_budget=latency_budget,
            )
        except QueryRefusedError as err:
            return _report_refused(err, out)
    elapsed = time.perf_counter() - begin
    print(f"matches: {int(n)}", file=out)
    if isinstance(n, ApproxCount):
        _print_approx(n, out)
    if isinstance(n, PartialResult) and n.truncated:
        print(f"truncated: {n.reason}", file=out)
    print(f"elapsed: {elapsed:.3f}s", file=out)
    if stats is not None:
        for key, value in stats.as_dict().items():
            print(f"  {key}: {value}", file=out)
    return 0


def cmd_match(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Enumerate matches, printing each mapping (or writing to a file)."""
    session = MiningSession(load_dataset(args))
    pattern = parse_pattern_spec(args.pattern)
    sink = open(args.output, "w") if args.output else out
    emitted = 0
    limit = args.limit

    try:
        def on_match(m) -> None:
            nonlocal emitted
            if limit is None or emitted < limit:
                print(" ".join(str(v) for v in m.mapping), file=sink)
                emitted += 1

        total = session.match(
            pattern,
            on_match,
            edge_induced=not args.vertex_induced,
        )
    finally:
        if args.output:
            sink.close()
    print(f"matches: {total}", file=out)
    if limit is not None and total > limit:
        print(f"(printed first {limit})", file=out)
    return 0


def cmd_exists(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Existence query: exit code 0 when found, 1 when absent."""
    session = MiningSession(load_dataset(args))
    pattern = parse_pattern_spec(args.pattern)
    begin = time.perf_counter()
    found = session.exists(pattern, edge_induced=not args.vertex_induced)
    elapsed = time.perf_counter() - begin
    print("found" if found else "not found", file=out)
    print(f"elapsed: {elapsed:.3f}s", file=out)
    return 0 if found else 1


def cmd_motifs(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Vertex-induced motif census of the selected size."""
    budget = _build_budget(args)
    processes = getattr(args, "processes", 1)
    if processes > 1 and budget is not None:
        raise SystemExit("error: --deadline/--max-matches need the "
                         "in-process engines; drop --processes")
    session = MiningSession(
        load_dataset(args),
        budget=budget,
        guard=getattr(args, "guard", "off"),
    )
    begin = _timed_header(out, f"{args.size}-motif census")
    engine = getattr(args, "engine", None)
    if processes > 1 and engine not in (None, "auto", "fused"):
        raise SystemExit("error: --processes runs the fused worker path; "
                         "use --engine auto/fused or drop --processes")
    try:
        table = motif_census_table(
            session,
            args.size,
            engine=engine,
            num_processes=processes,
            schedule=getattr(args, "schedule", None),
            chunk_hint=getattr(args, "chunk_hint", None),
        )
    except QueryRefusedError as err:
        return _report_refused(err, out)
    except BudgetExceededError as err:
        print(f"truncated: {err.partial.reason}", file=out)
        print(f"matches before stop: {err.partial.matches}", file=out)
        _timed_footer(out, begin)
        return 0
    print(table, file=out)
    _timed_footer(out, begin)
    return 0


def cmd_cliques(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """k-clique counting / existence / listing / maximal variants."""
    session = MiningSession(load_dataset(args))
    k = args.k
    begin = time.perf_counter()
    if args.maximal:
        n = maximal_clique_count(session, k)
        print(f"maximal {k}-cliques: {n}", file=out)
    elif args.existence:
        found = clique_exists(session, k)
        print("found" if found else "not found", file=out)
        print(f"elapsed: {time.perf_counter() - begin:.3f}s", file=out)
        return 0 if found else 1
    elif args.list:
        cliques = list_cliques(session, k, limit=args.limit)
        for c in cliques:
            print(" ".join(str(v) for v in c), file=out)
        print(f"{k}-cliques listed: {len(cliques)}", file=out)
    else:
        n = clique_count(session, k)
        print(f"{k}-cliques: {n}", file=out)
    print(f"elapsed: {time.perf_counter() - begin:.3f}s", file=out)
    return 0


def cmd_fsm(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Frequent subgraph mining with MNI support."""
    graph = load_dataset(args)
    if not graph.is_labeled:
        raise SystemExit(
            "error: FSM needs a labeled graph (--dataset patents --labeled, "
            "--dataset mico, or --graph/--labels)"
        )
    session = MiningSession(
        graph,
        budget=_build_budget(args),
        guard=getattr(args, "guard", "off"),
    )
    begin = time.perf_counter()
    try:
        result = fsm_api(
            session,
            args.edges,
            args.threshold,
            engine=getattr(args, "engine", None),
        )
    except QueryRefusedError as err:
        return _report_refused(err, out)
    except BudgetExceededError as err:
        # Session-default budgets arm per query, so the failing round's
        # partial is all we can report.
        print(f"truncated: {err.partial.reason}", file=out)
        print(f"matches before stop: {err.partial.matches}", file=out)
        return 0
    elapsed = time.perf_counter() - begin
    print(
        f"frequent {args.edges}-edge patterns at support >= {args.threshold}: "
        f"{result.total_frequent()}",
        file=out,
    )
    if args.verbose:
        for pattern, support in sorted(
            result.frequent.items(), key=lambda item: -item[1]
        ):
            print(f"  support={support}  {pattern!r}", file=out)
    print(f"patterns explored: {result.patterns_explored}", file=out)
    print(f"elapsed: {elapsed:.3f}s", file=out)
    return 0


def _load_graph_file(path, labels=None):
    """Load one graph file by extension (binary formats embed labels)."""
    text = str(path)
    if text.endswith((".rgx", ".npz")):
        if labels:
            raise SystemExit(
                "error: binary graph formats embed labels; --labels "
                "applies to edge-list inputs only"
            )
        return open_graph(path)
    if labels:
        return load_labeled(path, labels)
    return load_edge_list(path)


def cmd_graph_convert(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Convert a graph between on-disk formats (extension-routed).

    The main use is producing ``.rgx`` mmap stores from text edge lists
    or ``.npz`` archives so later runs cold-start in O(header) time;
    ``--degree-order`` bakes the §5.2 ordering into the file so mining
    reloads skip the ordering pass too.
    """
    graph = _load_graph_file(args.input, getattr(args, "labels", None))
    if args.degree_order:
        graph, _ = graph.degree_ordered()
    dest = str(args.output)
    begin = time.perf_counter()
    if dest.endswith(".rgx"):
        save_mmap(graph, dest)
    elif dest.endswith(".npz"):
        save_npz(graph, dest)
    else:
        save_edge_list(graph, dest)
    elapsed = time.perf_counter() - begin
    print(
        f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges "
        f"to {dest} ({os.path.getsize(dest)} bytes)",
        file=out,
    )
    print(f"elapsed: {elapsed:.3f}s", file=out)
    return 0


def cmd_graph_info(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Print an ``.rgx`` store's header without touching the sections."""
    store = GraphStore(args.path)
    for key, value in store.info().items():
        print(f"{key}: {value}", file=out)
    return 0


def _print_approx(r: ApproxCount, out: TextIO) -> None:
    """Shared ApproxCount rendering for ``count --approx`` and ``approx``."""
    print(
        f"estimate: {r.estimate:.1f}  "
        f"({r.confidence:.0%} CI [{r.ci_low:.1f}, {r.ci_high:.1f}])",
        file=out,
    )
    target = "-" if r.requested_rel_err is None else f"{r.requested_rel_err:g}"
    print(
        f"rel err: {r.rel_err:.4g} (target {target})  "
        f"samples: {r.samples}/{r.frontier_size}  stop: {r.early_stop}",
        file=out,
    )
    if r.exact:
        print("exact: the sample budget covered the whole frontier", file=out)


def cmd_approx(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Approximate counting through the session-integrated sampling tier."""
    session = MiningSession(load_dataset(args))
    pattern = parse_pattern_spec(args.pattern)
    begin = time.perf_counter()
    r = approx_count(
        session,
        pattern,
        rel_err=args.rel_err,
        confidence=args.confidence,
        max_samples=args.max_samples,
        seed=args.sample_seed,
        method=args.method,
        num_colors=args.colors,
        edge_induced=not args.vertex_induced,
    )
    elapsed = time.perf_counter() - begin
    _print_approx(r, out)
    print(f"elapsed: {elapsed:.3f}s", file=out)
    return 0


def cmd_serve(args: argparse.Namespace, out: TextIO = sys.stdout) -> int:
    """Run the async mining service's HTTP front until interrupted."""
    # Imported here so plain mining commands never pay for the service
    # tier (asyncio, http.server) at CLI startup.
    from ..service.http import serve
    from ..service.service import ServiceConfig

    config = ServiceConfig(
        workers=args.workers,
        max_sessions=args.max_sessions,
        ttl_seconds=args.ttl,
        max_wait_ms=args.max_wait_ms,
        max_batch=args.max_batch,
        batching=not args.no_batching,
    )
    serve(args.host, args.port, config=config)
    return 0
