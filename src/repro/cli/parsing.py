"""Shared argument handling for the CLI: dataset and pattern specs.

Kept separate from the command implementations so both the argument
parser (help text) and the commands agree on one spec grammar, and so
tests can exercise spec parsing without argparse.
"""

from __future__ import annotations

import argparse

from ..errors import PatternFormatError
from ..graph.generators import (
    friendster_like,
    mico_like,
    orkut_like,
    patents_like,
)
from ..graph.binary_io import open_graph
from ..graph.graph import DataGraph
from ..graph.io import load_edge_list, load_labeled
from ..pattern.evaluation import (
    pattern_p1,
    pattern_p2,
    pattern_p3,
    pattern_p4,
    pattern_p5,
    pattern_p6,
    pattern_p7,
    pattern_p8,
)
from ..pattern.generators import (
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
)
from ..pattern.io import load_pattern
from ..pattern.pattern import Pattern

__all__ = ["add_dataset_arguments", "load_dataset", "parse_pattern_spec"]

_DATASET_FACTORIES = {
    "mico": lambda scale, seed, labeled: mico_like(scale, seed=seed),
    "patents": lambda scale, seed, labeled: patents_like(
        scale, seed=seed, labeled=labeled
    ),
    "orkut": lambda scale, seed, labeled: orkut_like(scale, seed=seed),
    "friendster": lambda scale, seed, labeled: friendster_like(scale, seed=seed),
}

_FIGURE9 = {
    "p1": pattern_p1,
    "p2": pattern_p2,
    "p3": pattern_p3,
    "p4": pattern_p4,
    "p5": pattern_p5,
    "p6": pattern_p6,
    "p7": pattern_p7,
    "p8": pattern_p8,
}

_GENERATORS = {
    "clique": generate_clique,
    "star": generate_star,
    "chain": generate_chain,
    "cycle": generate_cycle,
}


def add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the dataset-selection argument group to a subparser."""
    group = parser.add_argument_group("dataset")
    group.add_argument(
        "--dataset",
        choices=sorted(_DATASET_FACTORIES),
        help="synthetic stand-in dataset (see DESIGN.md substitutions)",
    )
    group.add_argument(
        "--graph",
        metavar="FILE",
        help="graph file to load instead of a synthetic dataset "
        "(.rgx mmap store, .npz binary, or whitespace edge list)",
    )
    group.add_argument(
        "--labels",
        metavar="FILE",
        help="vertex-label file accompanying --graph",
    )
    group.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="size multiplier for synthetic datasets (default 0.1)",
    )
    group.add_argument(
        "--labeled",
        action="store_true",
        help="generate the labeled variant (patents only)",
    )
    group.add_argument(
        "--seed", type=int, default=None, help="generator seed override"
    )


def load_dataset(args: argparse.Namespace) -> DataGraph:
    """Materialize the graph selected by parsed dataset arguments."""
    if args.graph:
        if str(args.graph).endswith((".npz", ".rgx")):
            if args.labels:
                raise SystemExit(
                    "error: binary graph formats embed labels; --labels "
                    "applies to edge-list graphs only"
                )
            return open_graph(args.graph)
        if args.labels:
            return load_labeled(args.graph, args.labels)
        return load_edge_list(args.graph)
    if not args.dataset:
        raise SystemExit("error: one of --dataset or --graph is required")
    factory = _DATASET_FACTORIES[args.dataset]
    if args.seed is not None:
        return _with_seed(factory, args)
    return factory(args.scale, _default_seed(args.dataset), args.labeled)


def _default_seed(dataset: str) -> int:
    return {"mico": 7, "patents": 11, "orkut": 13, "friendster": 17}[dataset]


def _with_seed(factory, args: argparse.Namespace) -> DataGraph:
    return factory(args.scale, args.seed, args.labeled)


def parse_pattern_spec(spec: str) -> Pattern:
    """Parse a ``--pattern`` spec into a Pattern.

    Grammar::

        clique:K | star:K | chain:K | cycle:K     generated patterns
        p1 .. p8                                  Figure 9 patterns
        edges:0-1,1-2,...                         explicit edge list
        file:PATH                                 pattern file on disk
    """
    spec = spec.strip()
    if spec in _FIGURE9:
        return _FIGURE9[spec]()
    head, sep, tail = spec.partition(":")
    if not sep:
        raise PatternFormatError(
            f"bad pattern spec {spec!r}: expected NAME:ARG or p1..p8"
        )
    if head in _GENERATORS:
        try:
            size = int(tail)
        except ValueError:
            raise PatternFormatError(
                f"bad pattern spec {spec!r}: size must be an integer"
            ) from None
        return _GENERATORS[head](size)
    if head == "file":
        return load_pattern(tail)
    if head == "edges":
        edges = []
        for part in tail.split(","):
            a, sep2, b = part.partition("-")
            if not sep2:
                raise PatternFormatError(
                    f"bad edge {part!r} in pattern spec: expected U-V"
                )
            try:
                edges.append((int(a), int(b)))
            except ValueError:
                raise PatternFormatError(
                    f"bad edge {part!r} in pattern spec: endpoints must be ints"
                ) from None
        return Pattern.from_edges(edges)
    raise PatternFormatError(f"unknown pattern spec kind {head!r}")
