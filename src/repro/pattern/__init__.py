"""Pattern abstraction: patterns as first-class constructs (§3)."""

from .pattern import Pattern, Edge
from .canonical import (
    automorphisms,
    automorphism_count,
    find_isomorphism,
    are_isomorphic,
    canonical_code,
    canonical_form,
)
from .generators import (
    generate_clique,
    generate_star,
    generate_chain,
    generate_cycle,
    generate_triangle,
    generate_all_vertex_induced,
    generate_all_edge_induced,
)
from .extend import extend_by_edge, extend_by_vertex
from .io import (
    load_patterns,
    load_pattern,
    save_patterns,
    pattern_to_text,
    pattern_from_text,
)
from .evaluation import (
    pattern_p1,
    pattern_p2,
    pattern_p3,
    pattern_p4,
    pattern_p5,
    pattern_p6,
    pattern_p7,
    pattern_p8,
    evaluation_patterns,
)

__all__ = [
    "Pattern",
    "Edge",
    "automorphisms",
    "automorphism_count",
    "find_isomorphism",
    "are_isomorphic",
    "canonical_code",
    "canonical_form",
    "generate_clique",
    "generate_star",
    "generate_chain",
    "generate_cycle",
    "generate_triangle",
    "generate_all_vertex_induced",
    "generate_all_edge_induced",
    "extend_by_edge",
    "extend_by_vertex",
    "load_patterns",
    "load_pattern",
    "save_patterns",
    "pattern_to_text",
    "pattern_from_text",
    "pattern_p1",
    "pattern_p2",
    "pattern_p3",
    "pattern_p4",
    "pattern_p5",
    "pattern_p6",
    "pattern_p7",
    "pattern_p8",
    "evaluation_patterns",
]
