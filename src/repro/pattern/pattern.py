"""The :class:`Pattern` class — graph patterns as first-class constructs.

Patterns are small graphs describing the sub-structure a mining task wants
to find (§3.1 of the paper).  Besides regular vertices and edges a pattern
may contain:

* **anti-edges** — pairs of vertices that must be *disconnected* in every
  match (§3.1.1);
* **anti-vertices** — vertices incident only to anti-edges, expressing the
  strict absence of a common neighbor among their anti-neighbors (§3.1.2);
* **labels** — per-vertex label constraints; an unlabeled pattern vertex is
  a wildcard that matches any data label (used for FSM label discovery).

Vertices are dense integers ``0..n-1``.  Patterns are mutable; all derived
artifacts (canonical codes, exploration plans) are computed on demand from
a snapshot.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator

from ..errors import PatternError

__all__ = ["Pattern", "Edge"]

Edge = tuple[int, int]


def _norm(u: int, v: int) -> Edge:
    """Normalize an edge to (min, max) order."""
    return (u, v) if u < v else (v, u)


class Pattern:
    """A connected graph pattern with optional anti-edges, anti-vertices, labels.

    The class implements the pattern interface of Figure 2: structure
    accessors (``neighbors``, ``are_connected``, ``label_of``) and mutators
    (``add_edge``, ``add_anti_edge``, ``remove_edge``, ``set_label``).
    """

    __slots__ = ("_n", "_edges", "_anti_edges", "_labels")

    def __init__(
        self,
        num_vertices: int = 0,
        edges: Iterable[Edge] = (),
        anti_edges: Iterable[Edge] = (),
        labels: dict[int, int] | None = None,
    ):
        self._n = num_vertices
        self._edges: set[Edge] = set()
        self._anti_edges: set[Edge] = set()
        self._labels: dict[int, int] = {}
        for u, v in edges:
            self.add_edge(u, v)
        for u, v in anti_edges:
            self.add_anti_edge(u, v)
        if labels:
            for u, lab in labels.items():
                self.set_label(u, lab)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], anti_edges: Iterable[Edge] = (),
                   labels: dict[int, int] | None = None) -> "Pattern":
        """Build a pattern from edge lists; vertex count is inferred."""
        p = cls()
        for u, v in edges:
            p.add_edge(u, v)
        for u, v in anti_edges:
            p.add_anti_edge(u, v)
        if labels:
            for u, lab in labels.items():
                p.set_label(u, lab)
        return p

    def copy(self) -> "Pattern":
        """Deep copy of this pattern."""
        p = Pattern.__new__(Pattern)
        p._n = self._n
        p._edges = set(self._edges)
        p._anti_edges = set(self._anti_edges)
        p._labels = dict(self._labels)
        return p

    # ------------------------------------------------------------------
    # Mutators (Figure 2 API)
    # ------------------------------------------------------------------

    def add_vertex(self) -> int:
        """Add an isolated vertex and return its id."""
        self._n += 1
        return self._n - 1

    def _grow_to(self, u: int) -> None:
        if u < 0:
            raise PatternError(f"negative vertex id {u}")
        if u >= self._n:
            self._n = u + 1

    def add_edge(self, u: int, v: int) -> None:
        """Add a regular edge, growing the vertex set as needed."""
        if u == v:
            raise PatternError(f"self-loop at pattern vertex {u}")
        e = _norm(u, v)
        if e in self._anti_edges:
            raise PatternError(f"edge {e} already present as anti-edge")
        self._grow_to(max(u, v))
        self._edges.add(e)

    def add_anti_edge(self, u: int, v: int) -> None:
        """Add an anti-edge: the matched vertices must be non-adjacent."""
        if u == v:
            raise PatternError(f"anti-edge self-loop at pattern vertex {u}")
        e = _norm(u, v)
        if e in self._edges:
            raise PatternError(f"anti-edge {e} already present as edge")
        self._grow_to(max(u, v))
        self._anti_edges.add(e)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove a regular edge (raises if absent)."""
        e = _norm(u, v)
        try:
            self._edges.remove(e)
        except KeyError:
            raise PatternError(f"edge {e} not in pattern") from None

    def remove_anti_edge(self, u: int, v: int) -> None:
        """Remove an anti-edge (raises if absent)."""
        e = _norm(u, v)
        try:
            self._anti_edges.remove(e)
        except KeyError:
            raise PatternError(f"anti-edge {e} not in pattern") from None

    def set_label(self, u: int, label: int) -> None:
        """Constrain vertex ``u`` to match only data vertices labeled ``label``."""
        self._grow_to(u)
        self._labels[u] = label

    def clear_label(self, u: int) -> None:
        """Make vertex ``u`` a label wildcard again."""
        self._labels.pop(u, None)

    def add_anti_vertex(self, neighbors: Iterable[int]) -> int:
        """Add an anti-vertex anti-adjacent to ``neighbors``; return its id.

        The new vertex has only anti-edges, making it an anti-vertex by
        definition (§3.1.2).
        """
        nbrs = list(neighbors)
        if not nbrs:
            raise PatternError("anti-vertex needs at least one anti-neighbor")
        av = self.add_vertex()
        for u in nbrs:
            self.add_anti_edge(av, u)
        return av

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Total vertex count, anti-vertices included."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Regular edge count."""
        return len(self._edges)

    @property
    def num_anti_edges(self) -> int:
        """Anti-edge count."""
        return len(self._anti_edges)

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self._n)

    def edges(self) -> list[Edge]:
        """Sorted list of regular edges."""
        return sorted(self._edges)

    def anti_edges(self) -> list[Edge]:
        """Sorted list of anti-edges."""
        return sorted(self._anti_edges)

    def neighbors(self, u: int) -> list[int]:
        """Sorted regular neighbors of ``u``."""
        out = [v for v in range(self._n) if _norm(u, v) in self._edges and v != u]
        return out

    def anti_neighbors(self, u: int) -> list[int]:
        """Sorted anti-neighbors of ``u``."""
        return [v for v in range(self._n) if v != u and _norm(u, v) in self._anti_edges]

    def degree(self, u: int) -> int:
        """Regular degree of ``u``."""
        return sum(1 for v in range(self._n) if v != u and _norm(u, v) in self._edges)

    def are_connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` share a regular edge."""
        return u != v and _norm(u, v) in self._edges

    def are_anti_adjacent(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` share an anti-edge."""
        return u != v and _norm(u, v) in self._anti_edges

    def label_of(self, u: int) -> int | None:
        """Label constraint on ``u`` (``None`` = wildcard)."""
        return self._labels.get(u)

    def labels(self) -> dict[int, int]:
        """Copy of the label-constraint mapping."""
        return dict(self._labels)

    @property
    def is_labeled(self) -> bool:
        """Whether any vertex carries a label constraint."""
        return bool(self._labels)

    @property
    def is_fully_labeled(self) -> bool:
        """Whether every regular vertex carries a label constraint."""
        return all(u in self._labels for u in self.regular_vertices())

    # ------------------------------------------------------------------
    # Anti-vertex classification (§3.1.2)
    # ------------------------------------------------------------------

    def is_anti_vertex(self, u: int) -> bool:
        """True when ``u`` has at least one anti-edge and no regular edge."""
        return self.degree(u) == 0 and bool(self.anti_neighbors(u))

    def anti_vertices(self) -> list[int]:
        """All anti-vertices in id order."""
        return [u for u in range(self._n) if self.is_anti_vertex(u)]

    def regular_vertices(self) -> list[int]:
        """All non-anti vertices in id order (includes isolated vertices)."""
        return [u for u in range(self._n) if not self.is_anti_vertex(u)]

    def without_anti_vertices(self) -> "Pattern":
        """Copy with anti-vertices (and their anti-edges) removed.

        Remaining vertices are renamed densely, preserving relative order.
        """
        keep = self.regular_vertices()
        remap = {old: new for new, old in enumerate(keep)}
        p = Pattern(num_vertices=len(keep))
        for u, v in self._edges:
            if u in remap and v in remap:
                p.add_edge(remap[u], remap[v])
        for u, v in self._anti_edges:
            if u in remap and v in remap:
                p.add_anti_edge(remap[u], remap[v])
        for u, lab in self._labels.items():
            if u in remap:
                p.set_label(remap[u], lab)
        return p

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Connectivity over *regular* edges, ignoring anti-vertices.

        Anti-vertices are attached only via anti-edges, which do not count
        toward connectivity; a pattern is connected when its regular
        vertices form one component under regular edges.
        """
        regular = self.regular_vertices()
        if not regular:
            return False
        seen = {regular[0]}
        stack = [regular[0]]
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return all(u in seen for u in regular)

    def vertex_induced_closure(self) -> "Pattern":
        """Anti-edge completion implementing Theorem 3.1.

        Returns a copy where every pair of regular vertices that is neither
        adjacent nor anti-adjacent becomes anti-adjacent.  Edge-induced
        matches of the result are exactly the vertex-induced matches of
        ``self``.
        """
        p = self.copy()
        for u, v in combinations(self.regular_vertices(), 2):
            e = _norm(u, v)
            if e not in p._edges and e not in p._anti_edges:
                p.add_anti_edge(u, v)
        return p

    def degree_sequence(self) -> list[int]:
        """Sorted regular-degree sequence (an isomorphism invariant)."""
        return sorted(self.degree(u) for u in range(self._n))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def signature(self) -> tuple:
        """Hashable exact-identity snapshot (not isomorphism-invariant)."""
        return (
            self._n,
            tuple(sorted(self._edges)),
            tuple(sorted(self._anti_edges)),
            tuple(sorted(self._labels.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"n={self._n}", f"edges={sorted(self._edges)}"]
        if self._anti_edges:
            parts.append(f"anti={sorted(self._anti_edges)}")
        if self._labels:
            parts.append(f"labels={dict(sorted(self._labels.items()))}")
        return f"Pattern({', '.join(parts)})"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))
