"""Pattern constructors: special patterns and exhaustive families.

Implements the generation half of the Figure 2 API:

* ``[S1-S3]`` special patterns: cliques, stars, chains (plus cycles, which
  the evaluation patterns need);
* ``[G1]`` ``generate_all_edge_induced(k)`` — all connected unlabeled
  patterns with exactly ``k`` edges, up to isomorphism (FSM's seed set);
* ``[G2]`` ``generate_all_vertex_induced(k)`` — all connected unlabeled
  patterns with exactly ``k`` vertices, up to isomorphism (the motifs of
  size ``k``).
"""

from __future__ import annotations

from itertools import combinations

from ..errors import PatternError
from .canonical import canonical_code, canonical_form
from .pattern import Pattern

__all__ = [
    "generate_clique",
    "generate_star",
    "generate_chain",
    "generate_cycle",
    "generate_triangle",
    "generate_all_vertex_induced",
    "generate_all_edge_induced",
]


def generate_clique(size: int) -> Pattern:
    """K_size: the fully-connected pattern on ``size`` vertices."""
    if size < 1:
        raise PatternError(f"clique size must be >= 1, got {size}")
    p = Pattern(num_vertices=size)
    for u, v in combinations(range(size), 2):
        p.add_edge(u, v)
    return p


def generate_star(size: int) -> Pattern:
    """Star on ``size`` vertices: hub 0 plus ``size - 1`` leaves.

    ``generate_star(3)`` is the paper's 3-star / wedge used by the global
    clustering coefficient program (Fig 4b).
    """
    if size < 2:
        raise PatternError(f"star size must be >= 2, got {size}")
    p = Pattern(num_vertices=size)
    for leaf in range(1, size):
        p.add_edge(0, leaf)
    return p


def generate_chain(size: int) -> Pattern:
    """Path on ``size`` vertices."""
    if size < 2:
        raise PatternError(f"chain size must be >= 2, got {size}")
    p = Pattern(num_vertices=size)
    for u in range(size - 1):
        p.add_edge(u, u + 1)
    return p


def generate_cycle(size: int) -> Pattern:
    """Cycle on ``size`` vertices."""
    if size < 3:
        raise PatternError(f"cycle size must be >= 3, got {size}")
    p = Pattern(num_vertices=size)
    for u in range(size):
        p.add_edge(u, (u + 1) % size)
    return p


def generate_triangle() -> Pattern:
    """K_3 — convenience alias used throughout the examples."""
    return generate_clique(3)


def generate_all_vertex_induced(size: int) -> list[Pattern]:
    """All connected patterns with ``size`` vertices, up to isomorphism.

    These are the motifs of size ``size`` (3 -> wedge + triangle; 4 -> the
    six classic 4-motifs).  Enumerates edge subsets of K_size and dedupes
    by canonical code; feasible for the sizes graph mining uses (<= 6).
    """
    if size < 1:
        raise PatternError(f"motif size must be >= 1, got {size}")
    if size == 1:
        return [Pattern(num_vertices=1)]
    all_pairs = list(combinations(range(size), 2))
    seen: dict[tuple, Pattern] = {}
    for mask in range(1 << len(all_pairs)):
        edges = [all_pairs[i] for i in range(len(all_pairs)) if mask >> i & 1]
        if len(edges) < size - 1:
            continue  # too few edges to connect `size` vertices
        p = Pattern(num_vertices=size, edges=edges)
        if not p.is_connected():
            continue
        code = canonical_code(p)
        if code not in seen:
            seen[code] = canonical_form(p)
    return sorted(seen.values(), key=canonical_code)


def generate_all_edge_induced(size: int) -> list[Pattern]:
    """All connected patterns with ``size`` edges, up to isomorphism.

    FSM seeds itself with ``generate_all_edge_induced(2)`` (the wedge) and
    grows frequent patterns edge by edge (Fig 4a).  Implemented by
    iterative edge extension from the single-edge pattern, deduping by
    canonical code at every step.
    """
    if size < 1:
        raise PatternError(f"edge count must be >= 1, got {size}")
    frontier: dict[tuple, Pattern] = {}
    single = Pattern.from_edges([(0, 1)])
    frontier[canonical_code(single)] = single
    for _ in range(size - 1):
        next_frontier: dict[tuple, Pattern] = {}
        for p in frontier.values():
            for q in _extend_one_edge(p):
                code = canonical_code(q)
                if code not in next_frontier:
                    next_frontier[code] = canonical_form(q)
        frontier = next_frontier
    return sorted(frontier.values(), key=canonical_code)


def _extend_one_edge(p: Pattern) -> list[Pattern]:
    """All patterns obtained by adding one edge to ``p`` (connected results).

    Adds either an edge between two existing non-adjacent vertices, or a
    pendant edge to a brand-new vertex.
    """
    out = []
    n = p.num_vertices
    for u, v in combinations(range(n), 2):
        if not p.are_connected(u, v) and not p.are_anti_adjacent(u, v):
            q = p.copy()
            q.add_edge(u, v)
            out.append(q)
    for u in range(n):
        q = p.copy()
        w = q.add_vertex()
        q.add_edge(u, w)
        out.append(q)
    return out
