"""Pattern extension operators ``[C1]`` / ``[C2]`` of the Figure 2 API.

Both take a set of patterns and return all *unique* (up to isomorphism)
patterns obtained by growing each input by one edge or one vertex.  FSM
uses :func:`extend_by_edge` to grow frequent labeled patterns, attaching
new vertices as label wildcards so label discovery can run on the next
round (§3.2.1).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from .canonical import canonical_code
from .pattern import Pattern

__all__ = ["extend_by_edge", "extend_by_vertex"]


def extend_by_edge(patterns: Iterable[Pattern]) -> list[Pattern]:
    """All unique one-edge extensions of the given patterns.

    An extension either connects two existing non-adjacent vertices or
    attaches a new unlabeled (wildcard) vertex by a pendant edge.  Labels
    of existing vertices are preserved; results are deduped by canonical
    code across all inputs.
    """
    seen: dict[tuple, Pattern] = {}
    for p in patterns:
        for q in _edge_extensions(p):
            code = canonical_code(q)
            if code not in seen:
                seen[code] = q
    return sorted(seen.values(), key=canonical_code)


def extend_by_vertex(patterns: Iterable[Pattern]) -> list[Pattern]:
    """All unique one-vertex extensions of the given patterns.

    The new (wildcard) vertex is attached to every non-empty subset of the
    existing regular vertices, covering all ways a vertex-induced match can
    grow by one vertex.
    """
    seen: dict[tuple, Pattern] = {}
    for p in patterns:
        regular = p.regular_vertices()
        for r in range(1, len(regular) + 1):
            for anchor_set in combinations(regular, r):
                q = p.copy()
                w = q.add_vertex()
                for u in anchor_set:
                    q.add_edge(u, w)
                code = canonical_code(q)
                if code not in seen:
                    seen[code] = q
    return sorted(seen.values(), key=canonical_code)


def _edge_extensions(p: Pattern) -> list[Pattern]:
    out = []
    regular = p.regular_vertices()
    for u, v in combinations(regular, 2):
        if not p.are_connected(u, v) and not p.are_anti_adjacent(u, v):
            q = p.copy()
            q.add_edge(u, v)
            out.append(q)
    for u in regular:
        q = p.copy()
        w = q.add_vertex()
        q.add_edge(u, w)
        out.append(q)
    return out
