"""Isomorphism, automorphisms and canonical codes for small patterns.

Patterns are tiny (the paper never mines beyond a handful of vertices), so
exact algorithms are affordable: automorphisms and isomorphisms are found by
class-pruned backtracking, and the canonical code is the lexicographically
minimal encoding over all vertex orderings consistent with invariant
classes.

Anti-edges are treated as a second edge color: an automorphism must map
edges to edges *and* anti-edges to anti-edges (this is what makes
symmetry-breaking anti-vertex-aware, §4.3).  Labels must be preserved
exactly, with the wildcard (no label) its own class.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator

from .pattern import Pattern

__all__ = [
    "automorphisms",
    "automorphism_count",
    "find_isomorphism",
    "are_isomorphic",
    "canonical_code",
    "canonical_form",
    "canonical_permutation",
]


def _vertex_class(p: Pattern, u: int) -> tuple:
    """Isomorphism-invariant vertex fingerprint used to prune search."""
    return (
        p.degree(u),
        len(p.anti_neighbors(u)),
        p.label_of(u) if p.label_of(u) is not None else -1,
    )


def _compatible(p: Pattern, q: Pattern, mapping: list[int], u: int, cand: int) -> bool:
    """Whether extending ``mapping`` with ``u -> cand`` preserves structure."""
    for w in range(u):
        mw = mapping[w]
        if p.are_connected(u, w) != q.are_connected(cand, mw):
            return False
        if p.are_anti_adjacent(u, w) != q.are_anti_adjacent(cand, mw):
            return False
    return True


def _isomorphisms(p: Pattern, q: Pattern) -> Iterator[list[int]]:
    """Yield all isomorphisms p -> q as lists (mapping[u] = image of u)."""
    n = p.num_vertices
    if n != q.num_vertices or p.num_edges != q.num_edges:
        return
    if p.num_anti_edges != q.num_anti_edges:
        return
    p_classes = [_vertex_class(p, u) for u in range(n)]
    q_classes = [_vertex_class(q, u) for u in range(n)]
    if sorted(p_classes) != sorted(q_classes):
        return

    candidates = [
        [v for v in range(n) if q_classes[v] == p_classes[u]] for u in range(n)
    ]
    mapping = [-1] * n
    used = [False] * n

    def backtrack(u: int) -> Iterator[list[int]]:
        if u == n:
            yield mapping.copy()
            return
        for cand in candidates[u]:
            if not used[cand] and _compatible(p, q, mapping, u, cand):
                mapping[u] = cand
                used[cand] = True
                yield from backtrack(u + 1)
                used[cand] = False
                mapping[u] = -1

    yield from backtrack(0)


def automorphisms(p: Pattern) -> list[list[int]]:
    """All automorphisms of ``p`` (edge-, anti-edge- and label-preserving).

    Returns a list of permutations, each a list where ``perm[u]`` is the
    image of vertex ``u``.  The identity is always included.

    .. warning:: the group can be factorial in ``|V(p)|`` (a k-clique has
       k! automorphisms) — materialize it only for small patterns.  The
       plan generator never calls this: it uses the polynomial
       stabilizer-chain helpers (:func:`exists_automorphism`,
       :func:`stabilizer_orbit`) instead.
    """
    return list(_isomorphisms(p, p))


def exists_automorphism(p: Pattern, forced: dict[int, int]) -> bool:
    """Whether some automorphism of ``p`` extends the ``forced`` assignments.

    ``forced`` maps pattern vertices to required images.  Backtracks with
    class pruning and stops at the *first* witness, so highly symmetric
    patterns (where the full group is factorial) answer in polynomial
    time in practice — this is the primitive behind stabilizer-chain
    symmetry breaking.
    """
    n = p.num_vertices
    classes = [_vertex_class(p, u) for u in range(n)]
    for u, v in forced.items():
        if classes[u] != classes[v]:
            return False
    candidates = [
        [v for v in range(n) if classes[v] == classes[u]] for u in range(n)
    ]
    mapping = [-1] * n
    used = [False] * n

    def backtrack(u: int) -> bool:
        if u == n:
            return True
        cands = (forced[u],) if u in forced else candidates[u]
        for cand in cands:
            if not used[cand] and _compatible(p, p, mapping, u, cand):
                mapping[u] = cand
                used[cand] = True
                if backtrack(u + 1):
                    return True
                used[cand] = False
                mapping[u] = -1
        return False

    return backtrack(0)


def stabilizer_orbit(p: Pattern, u: int, fixed_count: int) -> list[int]:
    """Orbit of ``u`` under the subgroup fixing vertices ``0..fixed_count-1``.

    Since the stabilizer fixes every vertex below ``fixed_count``
    pointwise, the orbit is a subset of ``{u} ∪ {fixed_count.., n-1}``;
    each candidate costs one :func:`exists_automorphism` search.
    """
    forced_base = {w: w for w in range(fixed_count)}
    orbit = [u]
    for v in range(p.num_vertices):
        if v == u or v < fixed_count:
            continue
        forced = dict(forced_base)
        forced[u] = v
        if exists_automorphism(p, forced):
            orbit.append(v)
    return sorted(orbit)


def automorphism_count(p: Pattern) -> int:
    """|Aut(p)| — the redundancy factor symmetry breaking removes (Fig 10).

    Computed by the orbit–stabilizer theorem along the chain fixing
    vertices ``0, 1, ..``: ``|Aut| = ∏ |orbit(u) under Stab(0..u-1)|``.
    Polynomially many single-automorphism searches instead of a factorial
    enumeration, so it is exact even for large cliques (14! and beyond).
    """
    total = 1
    for u in range(p.num_vertices):
        total *= len(stabilizer_orbit(p, u, u))
    return total


def find_isomorphism(p: Pattern, q: Pattern) -> list[int] | None:
    """One isomorphism from ``p`` to ``q``, or ``None``."""
    for mapping in _isomorphisms(p, q):
        return mapping
    return None


def are_isomorphic(p: Pattern, q: Pattern) -> bool:
    """Whether two patterns are isomorphic (respecting anti-edges, labels)."""
    return find_isomorphism(p, q) is not None


def _encode(p: Pattern, order: tuple[int, ...]) -> tuple:
    """Encode ``p`` under a vertex ordering as a comparable tuple.

    ``order[i]`` is the original vertex placed at position ``i``.  Cell
    values: 0 = no edge, 1 = edge, 2 = anti-edge; labels use -1 for the
    wildcard.
    """
    n = p.num_vertices
    cells = []
    for i in range(n):
        for j in range(i + 1, n):
            u, v = order[i], order[j]
            if p.are_connected(u, v):
                cells.append(1)
            elif p.are_anti_adjacent(u, v):
                cells.append(2)
            else:
                cells.append(0)
    label_row = tuple(
        p.label_of(order[i]) if p.label_of(order[i]) is not None else -1
        for i in range(n)
    )
    return (n, tuple(cells), label_row)


def canonical_code(p: Pattern) -> tuple:
    """Isomorphism-invariant canonical code.

    Two patterns have equal codes iff they are isomorphic.  The code is the
    minimum of :func:`_encode` over vertex orderings; orderings are pruned
    to those sorted by invariant vertex class, which preserves exactness
    (any minimizing ordering can be reordered within classes).
    """
    n = p.num_vertices
    if n == 0:
        return (0, (), ())
    classes = [_vertex_class(p, u) for u in range(n)]
    # Only orderings where class keys appear in non-decreasing order can be
    # minimal w.r.t. some fixed class-major layout; to stay exact we instead
    # sort vertices by class and permute within the whole sorted frame, but
    # skip orderings whose class sequence differs from the sorted one.
    sorted_class_seq = sorted(classes)
    best: tuple | None = None
    for order in permutations(range(n)):
        if [classes[v] for v in order] != sorted_class_seq:
            continue
        code = _encode(p, order)
        if best is None or code < best:
            best = code
    assert best is not None
    return best


def canonical_permutation(p: Pattern) -> tuple[tuple, tuple[int, ...]]:
    """Canonical code plus one ordering achieving it.

    Returns ``(code, order)`` where ``order[i]`` is the original vertex
    placed at canonical position ``i`` — the correspondence FSM needs to
    fold a match's vertices into the canonical pattern's domains.
    """
    n = p.num_vertices
    if n == 0:
        return (0, (), ()), ()
    classes = [_vertex_class(p, u) for u in range(n)]
    sorted_class_seq = sorted(classes)
    best: tuple | None = None
    best_order: tuple[int, ...] = ()
    for order in permutations(range(n)):
        if [classes[v] for v in order] != sorted_class_seq:
            continue
        code = _encode(p, order)
        if best is None or code < best:
            best = code
            best_order = order
    assert best is not None
    return best, best_order


def canonical_form(p: Pattern) -> Pattern:
    """A canonical representative: rebuild the pattern from its code."""
    n, cells, label_row = canonical_code(p)
    q = Pattern(num_vertices=n)
    idx = 0
    for i in range(n):
        for j in range(i + 1, n):
            if cells[idx] == 1:
                q.add_edge(i, j)
            elif cells[idx] == 2:
                q.add_anti_edge(i, j)
            idx += 1
    for i, lab in enumerate(label_row):
        if lab != -1:
            q.set_label(i, lab)
    return q
