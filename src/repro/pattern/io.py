"""Pattern file I/O — the ``[L1] load_patterns`` API of Figure 2.

File format (one pattern per block, blocks separated by blank lines):

.. code-block:: text

    # optional comment
    e 0 1        # regular edge
    e 1 2
    a 0 2        # anti-edge
    l 0 5        # label: vertex 0 must match data label 5

Vertex ids are dense non-negative integers within a block.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..errors import PatternFormatError
from .pattern import Pattern

__all__ = ["load_patterns", "load_pattern", "save_patterns", "pattern_to_text", "pattern_from_text"]


def pattern_from_text(text: str, where: str = "<string>") -> Pattern:
    """Parse one pattern block."""
    p = Pattern()
    saw_any = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0].lower()
        if kind not in ("e", "a", "l") or len(parts) != 3:
            raise PatternFormatError(
                f"{where}:{line_no}: expected 'e|a|l u v', got {raw!r}"
            )
        try:
            u, v = int(parts[1]), int(parts[2])
        except ValueError:
            raise PatternFormatError(
                f"{where}:{line_no}: non-integer operand in {raw!r}"
            ) from None
        saw_any = True
        if kind == "e":
            p.add_edge(u, v)
        elif kind == "a":
            p.add_anti_edge(u, v)
        else:
            p.set_label(u, v)
    if not saw_any:
        raise PatternFormatError(f"{where}: empty pattern block")
    return p


def pattern_to_text(p: Pattern) -> str:
    """Serialize one pattern to the block format."""
    lines = [f"e {u} {v}" for u, v in p.edges()]
    lines.extend(f"a {u} {v}" for u, v in p.anti_edges())
    lines.extend(f"l {u} {lab}" for u, lab in sorted(p.labels().items()))
    return "\n".join(lines)


def load_patterns(path: str | os.PathLike) -> list[Pattern]:
    """Load all pattern blocks from a file."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    blocks = [b for b in content.split("\n\n") if b.strip()]
    patterns = []
    for i, block in enumerate(blocks):
        stripped = "\n".join(
            line for line in block.splitlines()
            if line.split("#", 1)[0].strip()
        )
        if not stripped:
            continue
        patterns.append(pattern_from_text(stripped, where=f"{path}#block{i}"))
    if not patterns:
        raise PatternFormatError(f"{path}: no patterns found")
    return patterns


def load_pattern(path: str | os.PathLike) -> Pattern:
    """Load exactly one pattern from a file (raises if several)."""
    patterns = load_patterns(path)
    if len(patterns) != 1:
        raise PatternFormatError(
            f"{os.fspath(path)}: expected one pattern, found {len(patterns)}"
        )
    return patterns[0]


def save_patterns(patterns: Iterable[Pattern], path: str | os.PathLike) -> None:
    """Write patterns as blank-line-separated blocks."""
    blocks = [pattern_to_text(p) for p in patterns]
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write("\n\n".join(blocks) + "\n")
