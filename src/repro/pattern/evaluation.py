"""The evaluation patterns p1-p8 of Figure 9.

The paper's Figure 9 is pictorial; the text pins down p2 (the labeled
pattern G-Miner ships a purpose-built matcher for), p7 (a maximal triangle:
a triangle plus a fully-connected anti-vertex) and p8 (a vertex-induced
chordal square expressed with an anti-edge).  p1-p6 were chosen "to cover
all the patterns used in [Fractal] and [G-Miner]"; we reconstruct them as
the standard 4- and 5-vertex query patterns those papers use, ordered by
increasing cost, and document the reconstruction here:

* p1 — diamond (4-cycle plus one chord), 4 vertices
* p2 — tailed triangle with distinct labels 1-4 (the labeled query)
* p3 — house (5-cycle plus one chord), 5 vertices
* p4 — 4-clique with a pendant vertex, 5 vertices
* p5 — bowtie (two triangles sharing a vertex), 5 vertices
* p6 — near-5-clique (K_5 minus one edge), the most expensive query
* p7 — triangle with a fully-connected anti-vertex (maximal triangle)
* p8 — chordal square, vertex-induced: 4-cycle + chord + anti-edge on the
  other diagonal
"""

from __future__ import annotations

from .pattern import Pattern

__all__ = [
    "pattern_p1",
    "pattern_p2",
    "pattern_p3",
    "pattern_p4",
    "pattern_p5",
    "pattern_p6",
    "pattern_p7",
    "pattern_p8",
    "evaluation_patterns",
]


def pattern_p1() -> Pattern:
    """Diamond: 4-cycle 0-1-2-3 plus the chord (0, 2)."""
    return Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])


def pattern_p2() -> Pattern:
    """Tailed triangle with labels 1-4 (G-Miner's labeled query pattern)."""
    p = Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    for v, lab in enumerate((1, 2, 3, 4)):
        p.set_label(v, lab)
    return p


def pattern_p3() -> Pattern:
    """House: 5-cycle 0-1-2-3-4 plus the chord (0, 2) forming the roof."""
    return Pattern.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]
    )


def pattern_p4() -> Pattern:
    """4-clique on 0-3 with pendant vertex 4 attached to vertex 0."""
    edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
    edges.append((0, 4))
    return Pattern.from_edges(edges)


def pattern_p5() -> Pattern:
    """Bowtie: triangles 0-1-2 and 0-3-4 sharing vertex 0."""
    return Pattern.from_edges(
        [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]
    )


def pattern_p6() -> Pattern:
    """Near-5-clique: K_5 minus the edge (3, 4)."""
    edges = [
        (u, v)
        for u in range(5)
        for v in range(u + 1, 5)
        if (u, v) != (3, 4)
    ]
    return Pattern.from_edges(edges)


def pattern_p7() -> Pattern:
    """Maximal triangle: triangle 0-1-2 plus anti-vertex 3 anti-adjacent to all.

    Matches exactly the triangles not contained in any 4-clique (§6.5).
    """
    p = Pattern.from_edges([(0, 1), (1, 2), (2, 0)])
    p.add_anti_vertex([0, 1, 2])
    return p


def pattern_p8() -> Pattern:
    """Vertex-induced chordal square via an anti-edge.

    4-cycle 0-1-2-3 with chord (0, 2) and anti-edge (1, 3): matches
    diamonds whose other diagonal is strictly absent (§6.5).
    """
    p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    p.add_anti_edge(1, 3)
    return p


def evaluation_patterns() -> dict[str, Pattern]:
    """All Figure 9 patterns keyed ``p1`` .. ``p8``."""
    return {
        "p1": pattern_p1(),
        "p2": pattern_p2(),
        "p3": pattern_p3(),
        "p4": pattern_p4(),
        "p5": pattern_p5(),
        "p6": pattern_p6(),
        "p7": pattern_p7(),
        "p8": pattern_p8(),
    }
