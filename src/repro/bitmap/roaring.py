"""The :class:`RoaringBitmap`: chunked compressed set of 32-bit ints.

Implements the subset of the roaring interface that MNI domains need —
single-value insertion, membership, in-place and out-of-place union,
intersection, cardinality, iteration, equality, and a faithful
``memory_bytes`` accounting — with per-chunk adaptive containers from
:mod:`repro.bitmap.containers`.

Interface-compatible with :class:`repro.mining.support.Bitset`, so it can
back :class:`repro.mining.support.Domain` via its ``bitset_factory``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .containers import (
    ArrayContainer,
    BitmapContainer,
    CHUNK_BITS,
    CHUNK_SIZE,
    container_from_values,
)

__all__ = ["RoaringBitmap"]

_LOW_MASK = (1 << CHUNK_BITS) - 1
_CHUNK_BYTES = CHUNK_SIZE // 8


class RoaringBitmap:
    """Compressed bitmap over non-negative integers.

    Values are split into a high-16-bit chunk key and a low-16-bit offset;
    each chunk is stored in whichever container (array / bitmap / run) is
    cheapest for its contents.  New chunks start as arrays and upgrade to
    bitmaps when they pass the roaring cardinality threshold; full
    re-optimization (including run detection) happens on
    :meth:`optimize`, which unions call on their results.
    """

    __slots__ = ("_chunks",)

    def __init__(self, values: Iterable[int] = ()):
        self._chunks: dict[int, object] = {}
        for v in values:
            self.add(v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, value: int) -> None:
        """Insert one value (non-negative)."""
        if value < 0:
            raise ValueError("RoaringBitmap holds non-negative integers only")
        key = value >> CHUNK_BITS
        low = value & _LOW_MASK
        chunk = self._chunks.get(key)
        if chunk is None:
            chunk = ArrayContainer()
            self._chunks[key] = chunk
        chunk.add(low)
        # Array chunks that outgrow the threshold upgrade immediately;
        # run detection is deferred to optimize() as in roaring.
        if chunk.kind == "array" and chunk.memory_bytes() > 1 << 13:
            self._chunks[key] = container_from_values(chunk.values())

    @classmethod
    def from_sorted(cls, values: Iterable[int]) -> "RoaringBitmap":
        """Bulk-build from a sorted, duplicate-free iterable.

        The fast path for compiling CSR adjacency rows into membership
        bitmaps: consecutive values sharing a high-16-bit key are grouped
        in one pass and each chunk goes straight through
        :func:`container_from_values`, which picks the cheapest
        representation — no per-value ``add`` churn or array-to-bitmap
        upgrades along the way.
        """
        out = cls()
        chunks = out._chunks
        cur_key = -1
        cur: list[int] = []
        for v in values:
            v = int(v)
            if v < 0:
                raise ValueError(
                    "RoaringBitmap holds non-negative integers only"
                )
            key = v >> CHUNK_BITS
            if key != cur_key:
                if cur:
                    chunks[cur_key] = container_from_values(cur)
                cur_key = key
                cur = []
            cur.append(v & _LOW_MASK)
        if cur:
            chunks[cur_key] = container_from_values(cur)
        return out

    def optimize(self) -> "RoaringBitmap":
        """Re-pick the cheapest container per chunk (``runOptimize``)."""
        for key, chunk in list(self._chunks.items()):
            self._chunks[key] = chunk.optimized()
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, value: int) -> bool:
        if value < 0:
            return False
        chunk = self._chunks.get(value >> CHUNK_BITS)
        return chunk is not None and (value & _LOW_MASK) in chunk

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self._chunks.values())

    def __iter__(self) -> Iterator[int]:
        for key in sorted(self._chunks):
            base = key << CHUNK_BITS
            for low in self._chunks[key].values():
                yield base + low

    def to_list(self) -> list[int]:
        """Sorted member list (tests / small domains only)."""
        return list(self)

    def to_dense_bytes(self, num_bits: int) -> bytes:
        """Flatten to ``ceil(num_bits / 8)`` little-endian packed bytes.

        Bit ``v`` of the result is set iff ``v in self``; members at or
        beyond ``num_bits`` are ignored.  Chunk boundaries are byte
        aligned (the chunk size is a multiple of 8), so bitmap containers
        splice their payload in directly and sparse containers build one
        chunk-local integer first — this is how the accelerated engines
        compile hub neighborhoods into numpy bit rows.
        """
        nbytes = (num_bits + 7) >> 3
        buf = bytearray(nbytes)
        for key, chunk in self._chunks.items():
            base = (key << CHUNK_BITS) >> 3
            if base >= nbytes:
                continue
            if isinstance(chunk, BitmapContainer):
                bits = chunk._bits
            else:
                bits = 0
                for low in chunk.values():
                    bits |= 1 << low
            payload = bits.to_bytes(_CHUNK_BYTES, "little")
            end = min(base + _CHUNK_BYTES, nbytes)
            buf[base:end] = payload[: end - base]
        if nbytes and num_bits & 7:
            buf[-1] &= (1 << (num_bits & 7)) - 1
        return bytes(buf)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(v in other for v in self)

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __bool__(self) -> bool:
        return bool(self._chunks) and any(
            len(chunk) for chunk in self._chunks.values()
        )

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def __or__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        out = RoaringBitmap()
        keys = set(self._chunks) | set(other._chunks)
        for key in keys:
            a = self._chunks.get(key)
            b = other._chunks.get(key)
            if a is None:
                out._chunks[key] = b.optimized()
            elif b is None:
                out._chunks[key] = a.optimized()
            else:
                out._chunks[key] = a.union(b)
        return out

    def __ior__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        for key, b in other._chunks.items():
            a = self._chunks.get(key)
            if a is None:
                self._chunks[key] = b.optimized()
            else:
                self._chunks[key] = a.union(b)
        return self

    def __and__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        out = RoaringBitmap()
        for key, a in self._chunks.items():
            b = other._chunks.get(key)
            if b is None:
                continue
            common = a.intersect(b)
            if len(common):
                out._chunks[key] = common
        return out

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Serialized size: container payloads + 4 bytes/chunk of keys."""
        return sum(
            4 + chunk.memory_bytes() for chunk in self._chunks.values()
        ) or 1

    def container_kinds(self) -> dict[str, int]:
        """Histogram of container kinds in use (inspection / tests)."""
        hist: dict[str, int] = {}
        for chunk in self._chunks.values():
            hist[chunk.kind] = hist.get(chunk.kind, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoaringBitmap({len(self)} values, "
            f"{len(self._chunks)} chunks, {self.memory_bytes()} bytes)"
        )
