"""Roaring containers: the three per-chunk representations.

A container stores a set of 16-bit values (one roaring *chunk*).  The
representation adapts to the data:

* :class:`ArrayContainer` — sorted list of values; best below
  :data:`ARRAY_MAX` members (the reference implementation's 4096 cutoff).
* :class:`BitmapContainer` — 65536-bit dense bitmap backed by a Python
  int; best for mid-density chunks.
* :class:`RunContainer` — sorted ``(start, length)`` runs; best when the
  chunk is a few long intervals (e.g. FSM domains over degree-ordered
  contiguous id ranges).

All containers share one small interface (`add`, `__contains__`,
`__len__`, `values`, `union`, `intersect`, `memory_bytes`) and the module
function :func:`container_from_values` plus each container's
``optimized()`` method pick the cheapest representation, mirroring
roaring's ``runOptimize``.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Iterator

__all__ = [
    "ARRAY_MAX",
    "CHUNK_BITS",
    "CHUNK_SIZE",
    "ArrayContainer",
    "BitmapContainer",
    "RunContainer",
    "container_from_values",
]

CHUNK_BITS = 16
CHUNK_SIZE = 1 << CHUNK_BITS  # values per container: 65536

# Reference roaring converts array -> bitmap above 4096 members: beyond
# that, 2 bytes/member exceeds the 8 KiB fixed bitmap.
ARRAY_MAX = 4096


class ArrayContainer:
    """Sorted-array container for sparse chunks (< :data:`ARRAY_MAX`)."""

    __slots__ = ("_values",)

    kind = "array"

    def __init__(self, values: Iterable[int] = ()):
        self._values = sorted(set(values))

    def add(self, value: int) -> None:
        """Insert one 16-bit value, keeping the array sorted and unique."""
        i = bisect_left(self._values, value)
        if i == len(self._values) or self._values[i] != value:
            self._values.insert(i, value)

    def __contains__(self, value: int) -> bool:
        i = bisect_left(self._values, value)
        return i < len(self._values) and self._values[i] == value

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> Iterator[int]:
        """Members in increasing order."""
        return iter(self._values)

    def union(self, other) -> "ArrayContainer | BitmapContainer":
        """New container holding both containers' members."""
        merged = set(self._values)
        merged.update(other.values())
        return container_from_values(merged)

    def intersect(self, other) -> "ArrayContainer":
        """New (always array) container of the common members."""
        if isinstance(other, ArrayContainer) and len(other) < len(self):
            return other.intersect(self)
        common = [v for v in self._values if v in other]
        return ArrayContainer(common)

    def memory_bytes(self) -> int:
        """2 bytes per member, as in the reference implementation."""
        return 2 * len(self._values)

    def optimized(self) -> "ArrayContainer | BitmapContainer | RunContainer":
        """Cheapest equivalent representation of this chunk."""
        return container_from_values(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayContainer({len(self)} values)"


class BitmapContainer:
    """Dense 65536-bit container backed by an arbitrary-precision int."""

    __slots__ = ("_bits", "_count")

    kind = "bitmap"

    def __init__(self, values: Iterable[int] = ()):
        bits = 0
        for v in values:
            bits |= 1 << v
        self._bits = bits
        self._count = bits.bit_count()

    @classmethod
    def _from_bits(cls, bits: int) -> "BitmapContainer":
        out = cls()
        out._bits = bits
        out._count = bits.bit_count()
        return out

    def add(self, value: int) -> None:
        mask = 1 << value
        if not self._bits & mask:
            self._bits |= mask
            self._count += 1

    def __contains__(self, value: int) -> bool:
        return (self._bits >> value) & 1 == 1

    def __len__(self) -> int:
        return self._count

    def values(self) -> Iterator[int]:
        bits = self._bits
        v = 0
        while bits:
            tail = bits & 0xFFFFFFFFFFFFFFFF
            while tail:
                low = tail & -tail
                yield v + low.bit_length() - 1
                tail ^= low
            bits >>= 64
            v += 64

    def union(self, other) -> "BitmapContainer":
        if isinstance(other, BitmapContainer):
            return BitmapContainer._from_bits(self._bits | other._bits)
        out = BitmapContainer._from_bits(self._bits)
        for v in other.values():
            out.add(v)
        return out

    def intersect(self, other) -> "ArrayContainer | BitmapContainer":
        if isinstance(other, BitmapContainer):
            bits = self._bits & other._bits
            if bits.bit_count() <= ARRAY_MAX:
                return ArrayContainer(BitmapContainer._from_bits(bits).values())
            return BitmapContainer._from_bits(bits)
        return ArrayContainer(v for v in other.values() if v in self)

    def memory_bytes(self) -> int:
        """Fixed 8 KiB, independent of cardinality."""
        return CHUNK_SIZE // 8

    def optimized(self) -> "ArrayContainer | BitmapContainer | RunContainer":
        return container_from_values(self.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitmapContainer({len(self)} values)"


class RunContainer:
    """Run-length container: sorted, non-adjacent ``(start, length)`` runs."""

    __slots__ = ("_runs", "_count")

    kind = "run"

    def __init__(self, values: Iterable[int] = ()):
        self._runs: list[tuple[int, int]] = []
        self._count = 0
        ordered = sorted(set(values))
        for v in ordered:
            if self._runs and self._runs[-1][0] + self._runs[-1][1] == v:
                start, length = self._runs[-1]
                self._runs[-1] = (start, length + 1)
            else:
                self._runs.append((v, 1))
            self._count += 1

    def add(self, value: int) -> None:
        """Insert a value, merging adjacent runs when they become contiguous.

        Kept simple (rebuild neighborhood) — adds on run containers are
        rare because :func:`container_from_values` only picks runs for
        already-built chunks; mutation converts back on ``optimized()``.
        """
        if value in self:
            return
        starts = [r[0] for r in self._runs]
        i = bisect_left(starts, value)
        self._runs.insert(i, (value, 1))
        self._count += 1
        self._coalesce()

    def _coalesce(self) -> None:
        merged: list[tuple[int, int]] = []
        for start, length in self._runs:
            if merged and merged[-1][0] + merged[-1][1] >= start:
                pstart, plength = merged[-1]
                end = max(pstart + plength, start + length)
                merged[-1] = (pstart, end - pstart)
            else:
                merged.append((start, length))
        self._runs = merged
        self._count = sum(length for _, length in merged)

    def __contains__(self, value: int) -> bool:
        starts = [r[0] for r in self._runs]
        i = bisect_left(starts, value)
        if i < len(self._runs) and self._runs[i][0] == value:
            return True
        if i == 0:
            return False
        start, length = self._runs[i - 1]
        return start <= value < start + length

    def __len__(self) -> int:
        return self._count

    def values(self) -> Iterator[int]:
        for start, length in self._runs:
            yield from range(start, start + length)

    def runs(self) -> list[tuple[int, int]]:
        """The raw ``(start, length)`` runs (for tests and inspection)."""
        return list(self._runs)

    def union(self, other):
        merged = set(self.values())
        merged.update(other.values())
        return container_from_values(merged)

    def intersect(self, other):
        return container_from_values(v for v in other.values() if v in self)

    def memory_bytes(self) -> int:
        """4 bytes per run (16-bit start + 16-bit length)."""
        return 4 * len(self._runs)

    def optimized(self) -> "ArrayContainer | BitmapContainer | RunContainer":
        return container_from_values(self.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunContainer({len(self._runs)} runs, {len(self)} values)"


def _run_count(ordered: list[int]) -> int:
    runs = 0
    prev = None
    for v in ordered:
        if prev is None or v != prev + 1:
            runs += 1
        prev = v
    return runs


def container_from_values(values: Iterable[int]):
    """Build the cheapest container for a chunk's value set.

    Chooses by exact serialized cost, like roaring's ``runOptimize``:
    arrays cost ``2·n``, bitmaps a fixed 8 KiB, runs ``4·r``.
    """
    ordered = sorted(set(values))
    n = len(ordered)
    array_cost = 2 * n
    bitmap_cost = CHUNK_SIZE // 8
    run_cost = 4 * _run_count(ordered)
    best = min(array_cost, bitmap_cost, run_cost)
    if best == run_cost:
        return RunContainer(ordered)
    if best == array_cost:
        return ArrayContainer(ordered)
    return BitmapContainer(ordered)
