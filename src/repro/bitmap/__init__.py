"""Compressed bitmaps for MNI domains (§5.5).

Peregrine stores FSM domains as vectors of compressed *Roaring* bitmaps
[Chambi et al. 2016] because they are far more memory-efficient than dense
bitmaps on the sparse, clustered vertex-id sets that domains hold.  This
package reimplements the roaring design in pure Python:

* the 32-bit key space is split into 2^16 *chunks* by the high 16 bits;
* each chunk holds its low 16 bits in one of three container kinds —
  a sorted **array** (sparse), a dense **bitmap** (int-backed), or a
  **run**-length list (long contiguous ranges);
* containers convert between kinds automatically at the same cardinality
  thresholds the reference implementation uses.

:class:`RoaringBitmap` exposes the same interface as
:class:`repro.mining.support.Bitset` (add / contains / or / and / len /
``memory_bytes``) so FSM's :class:`~repro.mining.support.Domain` can be
backed by either; ``bench_ablations.py`` compares the two backends on the
Fig-13 FSM memory workload.
"""

from .containers import (
    ARRAY_MAX,
    ArrayContainer,
    BitmapContainer,
    RunContainer,
    container_from_values,
)
from .roaring import RoaringBitmap

__all__ = [
    "ARRAY_MAX",
    "ArrayContainer",
    "BitmapContainer",
    "RunContainer",
    "container_from_values",
    "RoaringBitmap",
]
