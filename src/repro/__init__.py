"""repro — a Python reproduction of Peregrine (EuroSys 2020).

Peregrine is a pattern-aware graph mining system: graph patterns are
first-class constructs, pattern analysis yields an exploration plan
(symmetry breaking + core decomposition + matching orders), and the plan
guides exploration so that only subgraphs matching the pattern are ever
generated — no per-match isomorphism or canonicality checks.

Quick start::

    from repro import graph, pattern, core, mining

    g = graph.load_edge_list("my.graph")
    session = core.MiningSession(g)   # pins g: ordering/CSR/plans cached
    triangles = session.count(pattern.generate_clique(3))
    motifs = mining.motif_counts(session, size=4)

    core.count(g, pattern.generate_clique(3))  # legacy one-shot shim

Packages
--------
``repro.graph``     data-graph substrate, I/O, synthetic datasets
``repro.pattern``   Pattern class, anti-edges/anti-vertices, generators
``repro.core``      exploration plans + the pattern-aware engine
``repro.mining``    motif counting, FSM, cliques, existence queries
``repro.runtime``   concurrent runtime (threads, processes, aggregation)
``repro.service``   async query service (sessions, fused batching, HTTP)
``repro.baselines`` pattern-unaware systems used in the evaluation
``repro.profiling`` counters, memory accounting, stage timers
``repro.bitmap``    roaring-like compressed bitmaps (FSM domains, §5.5)
``repro.reporting`` ASCII tables / bar charts used by benches and the CLI
"""

# Defined before the subpackage imports: repro.service pulls in the CLI
# pattern-spec grammar, and repro.cli reads the version back from here.
__version__ = "1.0.0"

from . import graph, pattern, core, mining, runtime, baselines, profiling, bitmap, reporting
from . import service
from .errors import (
    ReproError,
    GraphError,
    GraphFormatError,
    PatternError,
    PatternFormatError,
    PlanError,
    MatchingError,
    BudgetExceeded,
    MemoryBudgetExceeded,
    PartialResult,
    BudgetExceededError,
    QueryRefusedError,
    QueryCancelledError,
    WorkerCrashError,
)
from .core import Budget

__all__ = [
    "graph",
    "bitmap",
    "reporting",
    "pattern",
    "core",
    "mining",
    "runtime",
    "service",
    "baselines",
    "profiling",
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "PatternError",
    "PatternFormatError",
    "PlanError",
    "MatchingError",
    "BudgetExceeded",
    "MemoryBudgetExceeded",
    "PartialResult",
    "BudgetExceededError",
    "QueryRefusedError",
    "QueryCancelledError",
    "WorkerCrashError",
    "Budget",
    "__version__",
]
