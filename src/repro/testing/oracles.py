"""networkx oracles for exact match counts, independent of the engine.

For any pattern and small graph we can compute the exact number of
edge-induced (monomorphism) or vertex-induced (induced-isomorphism)
canonical matches by dividing raw isomorphism counts by |Aut(pattern)|.
The parity tests fuzz the engines against these.
"""

from __future__ import annotations

from ..graph.graph import DataGraph
from ..pattern.canonical import automorphism_count
from ..pattern.pattern import Pattern

__all__ = ["pattern_to_nx", "nx_count_edge_induced", "nx_count_vertex_induced"]


def pattern_to_nx(p: Pattern):
    """Regular-edge view of a pattern as a networkx graph."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(p.num_vertices))
    g.add_edges_from(p.edges())
    return g


def nx_count_edge_induced(graph: DataGraph, p: Pattern) -> int:
    """Oracle: canonical edge-induced match count via monomorphisms."""
    import networkx as nx

    gm = nx.algorithms.isomorphism.GraphMatcher(
        graph.to_networkx(), pattern_to_nx(p)
    )
    raw = sum(1 for _ in gm.subgraph_monomorphisms_iter())
    return raw // automorphism_count(p)


def nx_count_vertex_induced(graph: DataGraph, p: Pattern) -> int:
    """Oracle: canonical vertex-induced match count via induced isos."""
    import networkx as nx

    gm = nx.algorithms.isomorphism.GraphMatcher(
        graph.to_networkx(), pattern_to_nx(p)
    )
    raw = sum(1 for _ in gm.subgraph_isomorphisms_iter())
    return raw // automorphism_count(p)
