"""Cross-validation helpers shared by tests and benchmarks.

Lives inside the installed package (rather than in ``tests/``) so that
test modules, benchmark modules and downstream users can all import the
oracles without relying on pytest's ``sys.path`` insertion — bare
``from conftest import ...`` is exactly the pattern that broke tier-1
collection when two ``conftest.py`` files were on the path.
"""

from .oracles import (
    nx_count_edge_induced,
    nx_count_vertex_induced,
    pattern_to_nx,
)

__all__ = [
    "nx_count_edge_induced",
    "nx_count_vertex_induced",
    "pattern_to_nx",
]
