"""RStream-like relational enumeration with out-of-core accounting (§2.2).

RStream expresses mining as relational joins: the table of size-k
embeddings is joined with the edge table, the join output is *materialized
to disk before filtering*, and only then are duplicates and mismatches
dropped.  We reuse the BFS enumerator in ``materialize_first`` mode and
account storage as disk bytes; blowing the disk budget raises
:class:`~repro.errors.MemoryBudgetExceeded` — the '/' (out of disk) and
'—' (out of memory) cells of Tables 3 and 5.
"""

from __future__ import annotations

from ..graph.graph import DataGraph
from ..profiling.counters import ExplorationCounters
from .enumerator_bfs import bfs_clique_count, bfs_fsm, bfs_motif_count

__all__ = ["rstream_motif_count", "rstream_clique_count", "rstream_fsm"]


def rstream_motif_count(
    graph: DataGraph,
    size: int,
    step_budget: int | None = None,
    disk_budget: int | None = None,
) -> tuple[dict[tuple, int], ExplorationCounters]:
    """Motif counting via materialize-then-filter join phases."""
    return bfs_motif_count(
        graph,
        size,
        step_budget=step_budget,
        store_budget=disk_budget,
        system="rstream-like",
        materialize_first=True,
    )


def rstream_clique_count(
    graph: DataGraph,
    k: int,
    step_budget: int | None = None,
    disk_budget: int | None = None,
) -> tuple[int, ExplorationCounters]:
    """k-clique counting; RStream has native clique support (Fig 1b), so
    no isomorphism computations are charged."""
    return bfs_clique_count(
        graph,
        k,
        step_budget=step_budget,
        store_budget=disk_budget,
        system="rstream-like",
        materialize_first=True,
        native_clique=True,
    )


def rstream_fsm(
    graph: DataGraph,
    num_edges: int,
    threshold: int,
    step_budget: int | None = None,
    disk_budget: int | None = None,
) -> tuple[dict[tuple, int], ExplorationCounters]:
    """FSM via join phases; aggregation tables count against the disk
    budget, reproducing RStream's FSM out-of-memory failures (Table 3)."""
    return bfs_fsm(
        graph,
        num_edges,
        threshold,
        step_budget=step_budget,
        store_budget=disk_budget,
        system="rstream-like",
        materialize_first=True,
    )
