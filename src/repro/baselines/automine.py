"""AutoMine-like compiled-schedule baseline (Mawhirter & Wu, SOSP '19).

AutoMine compiles a mining task into nested loops: pattern vertices are
visited in a fixed connected order, and each loop level draws its
candidates from intersections of already-matched vertices' adjacency
lists.  That makes it *guided* — unlike Arabesque/RStream it never extends
an embedding that cannot complete into the pattern — but it is **not
symmetry-aware** (§2.2.2, §7):

* every automorphic copy of every match is generated; *counting* is
  repaired post-hoc by dividing by the pattern's multiplicity (|Aut|),
* *enumeration* cannot be repaired that way — the user must deduplicate
  matches individually, which this module models with an explicit
  seen-set whose bytes are charged to the store meter (the paper's point
  that AutoMine "leaves the responsibility of identifying unique matches
  to the user").

The paper could not benchmark AutoMine (its source was unavailable) and
models it with PRG-U instead; this module goes one step further and
implements the compiled-schedule design itself, so the PRG-U ≈ AutoMine
claim can be checked empirically (``bench_ablations.py``): both explore
|Aut| times more matches than Peregrine on symmetric patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from ..core.candidates import contains, difference, intersect_many
from ..errors import BudgetExceeded
from ..graph.graph import DataGraph
from ..pattern.canonical import automorphism_count
from ..pattern.generators import generate_all_vertex_induced, generate_clique
from ..pattern.pattern import Pattern
from ..profiling.counters import ExplorationCounters
from ..profiling.memory import StoreMeter

__all__ = [
    "AutoMineSchedule",
    "compile_schedule",
    "automine_count",
    "automine_enumerate",
    "automine_motif_counts",
    "automine_clique_count",
]


@dataclass(frozen=True)
class AutoMineSchedule:
    """One compiled loop nest for a pattern.

    ``order[i]`` is the pattern vertex matched at loop depth ``i``;
    ``earlier_neighbors[i]`` / ``earlier_non_neighbors[i]`` index loop
    depths (not pattern vertices) whose data vertices constrain depth
    ``i``'s candidates by intersection / difference.  The schedule has no
    partial orders — that is precisely what separates it from a Peregrine
    exploration plan.
    """

    pattern: Pattern
    order: tuple[int, ...]
    earlier_neighbors: tuple[tuple[int, ...], ...]
    earlier_non_neighbors: tuple[tuple[int, ...], ...]
    labels: tuple[int | None, ...]
    multiplicity: int

    @property
    def depth(self) -> int:
        return len(self.order)


def compile_schedule(pattern: Pattern, vertex_induced: bool = False) -> AutoMineSchedule:
    """Compile a pattern into an AutoMine-style loop nest.

    The vertex order is a greedy connected order maximizing back-edges at
    each depth (most-constrained-first), which is AutoMine's heuristic for
    minimizing loop trip counts.  With ``vertex_induced`` the schedule also
    records earlier *non*-neighbors so the loops enforce absent edges via
    set differences — no post-hoc isomorphism filtering is ever needed,
    which is the property that makes AutoMine (and Peregrine) cheaper per
    embedding than filter-based systems.
    """
    n = pattern.num_vertices
    if n == 0:
        raise ValueError("cannot compile an empty pattern")
    adjacency = [set(pattern.neighbors(u)) for u in range(n)]
    # Start from the highest-degree vertex; extend by the unvisited vertex
    # with the most visited neighbors (ties: higher degree, lower id).
    start = max(range(n), key=lambda u: (len(adjacency[u]), -u))
    order = [start]
    visited = {start}
    while len(order) < n:
        best = None
        best_key = None
        for u in range(n):
            if u in visited:
                continue
            back = len(adjacency[u] & visited)
            if back == 0 and len(visited) < n:
                # Pattern may be connected through later vertices; only
                # pick zero-back vertices when nothing better exists.
                pass
            key = (back, len(adjacency[u]), -u)
            if best_key is None or key > best_key:
                best, best_key = u, key
        order.append(best)
        visited.add(best)
    depth_of = {u: i for i, u in enumerate(order)}
    earlier_nbrs = []
    earlier_non = []
    for i, u in enumerate(order):
        nbrs = tuple(
            sorted(depth_of[v] for v in adjacency[u] if depth_of[v] < i)
        )
        if vertex_induced:
            non = tuple(
                sorted(
                    depth_of[v]
                    for v in range(n)
                    if v != u and v not in adjacency[u] and depth_of[v] < i
                )
            )
        else:
            non = ()
        earlier_nbrs.append(nbrs)
        earlier_non.append(non)
    return AutoMineSchedule(
        pattern=pattern,
        order=tuple(order),
        earlier_neighbors=tuple(earlier_nbrs),
        earlier_non_neighbors=tuple(earlier_non),
        labels=tuple(pattern.label_of(u) for u in order),
        multiplicity=automorphism_count(pattern),
    )


def _run_schedule(
    graph: DataGraph,
    schedule: AutoMineSchedule,
    visit: Callable[[tuple[int, ...]], None],
    counters: ExplorationCounters | None,
    step_budget: int | None,
) -> None:
    """Execute the loop nest, invoking ``visit`` per (raw) embedding."""
    if counters is None and step_budget is not None:
        counters = ExplorationCounters(system="automine-like")
    depth = schedule.depth
    labels = graph.labels()
    if any(l is not None for l in schedule.labels) and labels is None:
        raise ValueError("labeled schedule requires a labeled graph")
    assignment = [-1] * depth

    def spend() -> None:
        if counters is not None:
            counters.matches_explored += 1
            if (
                step_budget is not None
                and counters.matches_explored > step_budget
            ):
                raise BudgetExceeded(counters.matches_explored, step_budget)

    def loop(i: int) -> None:
        nbr_depths = schedule.earlier_neighbors[i]
        if nbr_depths:
            lists = [graph.neighbors(assignment[j]) for j in nbr_depths]
            cands: Sequence[int] = (
                intersect_many(lists) if len(lists) > 1 else lists[0]
            )
        else:
            cands = range(graph.num_vertices)
        non_depths = schedule.earlier_non_neighbors[i]
        if non_depths and not isinstance(cands, range):
            for j in non_depths:
                cands = difference(cands, graph.neighbors(assignment[j]))
            non_depths = ()
        want = schedule.labels[i]
        for v in cands:
            if v in assignment[:i]:
                continue  # injectivity
            if want is not None and labels[v] != want:
                continue
            if non_depths and any(
                contains(graph.neighbors(assignment[j]), v) for j in non_depths
            ):
                continue
            assignment[i] = v
            spend()
            if i + 1 == depth:
                visit(tuple(assignment))
            else:
                loop(i + 1)
            assignment[i] = -1

    loop(0)


def automine_count(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    counters: ExplorationCounters | None = None,
    step_budget: int | None = None,
) -> int:
    """Count matches the AutoMine way: raw loop count / multiplicity."""
    schedule = compile_schedule(pattern, vertex_induced=not edge_induced)
    raw = 0

    def visit(_: tuple[int, ...]) -> None:
        nonlocal raw
        raw += 1

    _run_schedule(graph, schedule, visit, counters, step_budget)
    result = raw // schedule.multiplicity
    if counters is not None:
        counters.result_size = result
    return result


def automine_enumerate(
    graph: DataGraph,
    pattern: Pattern,
    callback: Callable[[tuple[int, ...]], None],
    edge_induced: bool = True,
    counters: ExplorationCounters | None = None,
    store: StoreMeter | None = None,
    step_budget: int | None = None,
) -> int:
    """Enumerate unique matches; the user-side dedup AutoMine requires.

    Every raw embedding is checked against a seen-set of frozen vertex
    sets — the per-match "identify unique matches" work §2.2.2 describes —
    and the seen-set's growth is charged to ``store`` (it is O(result
    size), which Peregrine never pays).  ``callback`` receives each unique
    match's vertex tuple once, in schedule order.
    """
    schedule = compile_schedule(pattern, vertex_induced=not edge_induced)
    seen: set[frozenset[int]] = set()
    n = pattern.num_vertices

    def visit(assignment: tuple[int, ...]) -> None:
        key = frozenset(assignment)
        if counters is not None:
            counters.canonicality_checks += 1  # the user-side dedup probe
        if key in seen:
            return
        seen.add(key)
        if store is not None:
            store.add(8 * n)  # the seen-set entry lives forever
        callback(assignment)

    _run_schedule(graph, schedule, visit, counters, step_budget)
    if counters is not None:
        counters.result_size = len(seen)
    return len(seen)


def automine_motif_counts(
    graph: DataGraph,
    size: int,
    counters: ExplorationCounters | None = None,
    step_budget: int | None = None,
) -> dict[Pattern, int]:
    """Vertex-induced motif census via one compiled schedule per motif."""
    out: dict[Pattern, int] = {}
    for motif in generate_all_vertex_induced(size):
        out[motif] = automine_count(
            graph,
            motif,
            edge_induced=False,
            counters=counters,
            step_budget=step_budget,
        )
    if counters is not None:
        counters.result_size = sum(out.values())
    return out


def automine_clique_count(
    graph: DataGraph,
    k: int,
    counters: ExplorationCounters | None = None,
    step_budget: int | None = None,
) -> int:
    """k-clique counting: the fully-symmetric worst case (|Aut| = k!)."""
    return automine_count(
        graph, generate_clique(k), counters=counters, step_budget=step_budget
    )
