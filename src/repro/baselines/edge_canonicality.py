"""Canonicality for edge-grown embeddings (FSM-style exploration).

Edge-induced embeddings are grown one edge at a time; the canonical growth
order of an edge set starts from its smallest edge and repeatedly appends
the smallest remaining edge sharing a vertex with the prefix.  An embedding
is canonical iff it was grown in exactly that order.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["canonical_edge_growth", "is_canonical_edge_embedding"]

Edge = tuple[int, int]


def canonical_edge_growth(edges: Sequence[Edge]) -> tuple[Edge, ...]:
    """Unique canonical order in which ``edges`` can be grown connectedly."""
    remaining = set(edges)
    first = min(remaining)
    order = [first]
    remaining.discard(first)
    touched = {first[0], first[1]}
    while remaining:
        best = None
        for e in sorted(remaining):
            if e[0] in touched or e[1] in touched:
                best = e
                break
        if best is None:
            best = min(remaining)  # disconnected edge set
        order.append(best)
        remaining.discard(best)
        touched.update(best)
    return tuple(order)


def is_canonical_edge_embedding(embedding: Sequence[Edge]) -> bool:
    """Whether the recorded edge growth order is the canonical one."""
    return tuple(embedding) == canonical_edge_growth(embedding)
