"""Reimplementations of the pattern-unaware systems the paper compares
against: Arabesque-like BFS, Fractal-like DFS, RStream-like joins,
G-Miner-like purpose-built tasks, PRG-U (no symmetry breaking), and an
AutoMine-like compiled-schedule system."""

from .canonicality import canonical_growth_order, is_canonical_embedding
from .edge_canonicality import (
    canonical_edge_growth,
    is_canonical_edge_embedding,
)
from .isomorphism import (
    induced_pattern,
    induced_code,
    induced_labeled_code,
    edge_set_pattern,
)
from .enumerator_bfs import (
    BFSEnumerator,
    bfs_motif_count,
    bfs_clique_count,
    bfs_fsm,
)
from .enumerator_dfs import (
    DFSEnumerator,
    dfs_motif_count,
    dfs_clique_count,
    dfs_fsm,
    dfs_pattern_match,
)
from .rstream import rstream_motif_count, rstream_clique_count, rstream_fsm
from .gminer import gminer_triangle_count, gminer_match_p2, TaskStats
from .automine import (
    AutoMineSchedule,
    compile_schedule,
    automine_count,
    automine_enumerate,
    automine_motif_counts,
    automine_clique_count,
)
from .unaware import (
    prgu_count,
    prgu_count_raw,
    prgu_motif_counts,
    prgu_fsm,
    dedup_factor,
)

__all__ = [
    "canonical_growth_order",
    "is_canonical_embedding",
    "canonical_edge_growth",
    "is_canonical_edge_embedding",
    "induced_pattern",
    "induced_code",
    "induced_labeled_code",
    "edge_set_pattern",
    "BFSEnumerator",
    "bfs_motif_count",
    "bfs_clique_count",
    "bfs_fsm",
    "DFSEnumerator",
    "dfs_motif_count",
    "dfs_clique_count",
    "dfs_fsm",
    "dfs_pattern_match",
    "rstream_motif_count",
    "rstream_clique_count",
    "rstream_fsm",
    "gminer_triangle_count",
    "gminer_match_p2",
    "TaskStats",
    "AutoMineSchedule",
    "compile_schedule",
    "automine_count",
    "automine_enumerate",
    "automine_motif_counts",
    "automine_clique_count",
    "prgu_count",
    "prgu_count_raw",
    "prgu_motif_counts",
    "prgu_fsm",
    "dedup_factor",
]
