"""Arabesque-like breadth-first filter-process enumeration (§2.2).

The "think like an embedding" model: every level materializes *all*
canonical embeddings of the current size, each produced by extending a
stored embedding with one vertex (or edge), each verified by a
canonicality check, and — for classification workloads — analyzed with an
isomorphism computation.  Exactly the per-embedding costs Figure 1
profiles, and the level-store is exactly the memory burden of Figure 13.

``materialize_first=True`` switches to RStream-mode cost accounting: the
join output is materialized (written to "disk") *before* filtering, so
non-canonical and filtered tuples still pay storage — reproducing
RStream's much larger explored counts in Figure 1b.

Budgets model the paper's failure cells: exceeding ``step_budget`` raises
:class:`~repro.errors.BudgetExceeded` (the 'x' timeout cells), exceeding
``store_budget`` raises :class:`~repro.errors.MemoryBudgetExceeded` (the
'—' OOM / '/' out-of-disk cells).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import BudgetExceeded, MemoryBudgetExceeded
from ..graph.graph import DataGraph
from ..mining.support import Domain
from ..profiling.counters import ExplorationCounters
from ..profiling.memory import StoreMeter, embedding_bytes
from .canonicality import is_canonical_embedding
from .edge_canonicality import is_canonical_edge_embedding
from .isomorphism import induced_code

__all__ = ["BFSEnumerator", "bfs_motif_count", "bfs_clique_count", "bfs_fsm"]


class BFSEnumerator:
    """Level-synchronous embedding enumerator with full cost accounting."""

    def __init__(
        self,
        graph: DataGraph,
        system: str = "arabesque-like",
        step_budget: int | None = None,
        store_budget: int | None = None,
        materialize_first: bool = False,
    ):
        self.graph = graph
        self.counters = ExplorationCounters(system=system)
        self.store = StoreMeter(budget_bytes=store_budget)
        self.step_budget = step_budget
        self.materialize_first = materialize_first

    # -- bookkeeping ----------------------------------------------------

    def _spend(self, steps: int = 1) -> None:
        self.counters.matches_explored += steps
        if (
            self.step_budget is not None
            and self.counters.matches_explored > self.step_budget
        ):
            raise BudgetExceeded(self.counters.matches_explored, self.step_budget)

    def _store_add(self, size: int) -> None:
        self.store.add_embedding(size)
        if self.store.over_budget():
            raise MemoryBudgetExceeded(
                self.store.live_bytes, self.store.budget_bytes
            )

    # -- vertex-induced exploration --------------------------------------

    def final_level_vertex_induced(
        self,
        size: int,
        keep: Callable[[tuple[int, ...], int], bool] | None = None,
    ) -> list[tuple[int, ...]]:
        """All canonical vertex embeddings of ``size`` vertices.

        ``keep(embedding, new_vertex)`` filters extensions *after* the
        canonicality check (the filter step of filter-process).
        """
        graph = self.graph
        level: list[tuple[int, ...]] = []
        for v in graph.vertices():
            self._spend()
            level.append((v,))
            self._store_add(1)
        for depth in range(2, size + 1):
            next_level: list[tuple[int, ...]] = []
            for emb in level:
                members = set(emb)
                candidates = set()
                for u in emb:
                    candidates.update(graph.neighbors(u))
                candidates.difference_update(members)
                for v in sorted(candidates):
                    new_emb = emb + (v,)
                    self._spend()
                    if self.materialize_first:
                        self._store_add(depth)
                    self.counters.canonicality_checks += 1
                    if not is_canonical_embedding(graph, new_emb):
                        continue
                    if keep is not None and not keep(new_emb, v):
                        continue
                    next_level.append(new_emb)
                    if not self.materialize_first:
                        self._store_add(depth)
            # The previous level can now be dropped (superstep boundary).
            for emb in level:
                self.store.remove_embedding(len(emb))
            level = next_level
        return level

    # -- edge-induced exploration (FSM) -----------------------------------

    def final_level_edge_induced(
        self,
        num_edges: int,
        prune_pattern: Callable[[tuple], bool] | None = None,
        on_level: Callable[[int, dict], None] | None = None,
    ) -> dict[tuple, Domain]:
        """Level-by-level edge-embedding exploration with label discovery.

        Returns ``{labeled canonical code: Domain}`` at the final level.
        ``prune_pattern(code)`` drops embeddings of infrequent patterns
        between levels (Arabesque's FSM filter).  ``on_level(size, tables)``
        observes each level's domain tables (for support evaluation).
        """
        graph = self.graph
        level: list[tuple[tuple[int, int], ...]] = []
        tables: dict[tuple, Domain] = {}

        def classify(edges: tuple[tuple[int, int], ...]) -> tuple | None:
            vertices = tuple(sorted({x for e in edges for x in e}))
            self.counters.isomorphism_checks += 1
            code, ordered_data, orbits = induced_labeled_code_for_edges(
                graph, edges, vertices
            )
            if code not in tables:
                tables[code] = Domain(len(vertices), orbits)
            tables[code].update(ordered_data)
            self.counters.aggregation_writes += len(ordered_data)
            return code

        for u, v in graph.edges():
            self._spend()
            edges = ((u, v),)
            level.append(edges)
            self._store_add(2)
            classify(edges)
        if on_level is not None:
            on_level(1, tables)

        for depth in range(2, num_edges + 1):
            if prune_pattern is not None:
                level = [
                    emb
                    for emb in level
                    if not prune_pattern(_edges_code(graph, emb, self))
                ]
            tables = {}
            next_level: list[tuple[tuple[int, int], ...]] = []
            for emb in level:
                edge_set = set(emb)
                members = {x for e in emb for x in e}
                for w in sorted(members):
                    for x in graph.neighbors(w):
                        edge = (w, x) if w < x else (x, w)
                        if edge in edge_set:
                            continue
                        new_emb = emb + (edge,)
                        self._spend()
                        if self.materialize_first:
                            self._store_add(depth + 1)
                        self.counters.canonicality_checks += 1
                        if not is_canonical_edge_embedding(new_emb):
                            continue
                        classify(new_emb)
                        next_level.append(new_emb)
                        if not self.materialize_first:
                            self._store_add(depth + 1)
            for emb in level:
                self.store.remove_embedding(len(emb) + 1)
            level = next_level
            if on_level is not None:
                on_level(depth, tables)
        self.counters.peak_store_bytes = self.store.peak_bytes
        return tables


def _edges_code(graph: DataGraph, emb, enumerator: BFSEnumerator) -> tuple:
    vertices = tuple(sorted({x for e in emb for x in e}))
    enumerator.counters.isomorphism_checks += 1
    code, _, _ = induced_labeled_code_for_edges(graph, emb, vertices)
    return code


# Orbit partitions are a property of the canonical pattern, so cache them
# by code across all embeddings of a run.
_ORBIT_CACHE: dict[tuple, tuple[tuple[int, ...], ...]] = {}


def induced_labeled_code_for_edges(
    graph: DataGraph,
    edges: Sequence[tuple[int, int]],
    vertices: tuple[int, ...],
) -> tuple[tuple, tuple[int, ...], tuple[tuple[int, ...], ...]]:
    """Canonical labeled code of an edge-induced embedding.

    Returns ``(code, data order, automorphism orbits)``: the data vertices
    permuted into canonical positions, plus the canonical pattern's vertex
    orbits (needed so MNI domains merge symmetric positions — a canonical
    embedding only materializes one automorphic arrangement).
    """
    from ..core.symmetry import orbit_partition
    from ..pattern.canonical import canonical_form, canonical_permutation
    from ..pattern.pattern import Pattern

    index = {v: i for i, v in enumerate(vertices)}
    p = Pattern(num_vertices=len(vertices))
    for u, v in edges:
        p.add_edge(index[u], index[v])
    for v, i in index.items():
        label = graph.label(v)
        if label is not None:
            p.set_label(i, label)
    code, order = canonical_permutation(p)
    orbits = _ORBIT_CACHE.get(code)
    if orbits is None:
        orbits = tuple(
            tuple(orbit) for orbit in orbit_partition(canonical_form(p))
        )
        _ORBIT_CACHE[code] = orbits
    return code, tuple(vertices[i] for i in order), orbits


# ----------------------------------------------------------------------
# Applications
# ----------------------------------------------------------------------


def bfs_motif_count(
    graph: DataGraph,
    size: int,
    step_budget: int | None = None,
    store_budget: int | None = None,
    system: str = "arabesque-like",
    materialize_first: bool = False,
) -> tuple[dict[tuple, int], ExplorationCounters]:
    """Motif counting the pattern-oblivious way: enumerate all connected
    vertex embeddings, isomorphism-classify each final one."""
    enum = BFSEnumerator(
        graph,
        system=system,
        step_budget=step_budget,
        store_budget=store_budget,
        materialize_first=materialize_first,
    )
    final = enum.final_level_vertex_induced(size)
    counts: dict[tuple, int] = {}
    for emb in final:
        enum.counters.isomorphism_checks += 1
        code = induced_code(graph, emb)
        counts[code] = counts.get(code, 0) + 1
    enum.counters.result_size = len(final)
    enum.counters.peak_store_bytes = enum.store.peak_bytes
    return counts, enum.counters


def bfs_clique_count(
    graph: DataGraph,
    k: int,
    step_budget: int | None = None,
    store_budget: int | None = None,
    system: str = "arabesque-like",
    materialize_first: bool = False,
    native_clique: bool = False,
) -> tuple[int, ExplorationCounters]:
    """k-clique counting via filtered BFS enumeration.

    ``native_clique`` models systems with built-in clique support
    (RStream, Fractal): no isomorphism computation on final embeddings.
    """
    enum = BFSEnumerator(
        graph,
        system=system,
        step_budget=step_budget,
        store_budget=store_budget,
        materialize_first=materialize_first,
    )

    def keep(emb: tuple[int, ...], new_vertex: int) -> bool:
        return all(
            graph.has_edge(new_vertex, u) for u in emb if u != new_vertex
        )

    final = enum.final_level_vertex_induced(k, keep=keep)
    if not native_clique:
        for emb in final:
            enum.counters.isomorphism_checks += 1
            induced_code(graph, emb)
    enum.counters.result_size = len(final)
    enum.counters.peak_store_bytes = enum.store.peak_bytes
    return len(final), enum.counters


def bfs_fsm(
    graph: DataGraph,
    num_edges: int,
    threshold: int,
    step_budget: int | None = None,
    store_budget: int | None = None,
    system: str = "arabesque-like",
    materialize_first: bool = False,
) -> tuple[dict[tuple, int], ExplorationCounters]:
    """FSM via exhaustive edge-induced BFS with per-embedding isomorphism.

    Embeddings of patterns that fall below the threshold are pruned
    between levels (anti-monotonicity), but — unlike Peregrine — every
    surviving embedding is still stored, checked and classified.
    """
    enum = BFSEnumerator(
        graph,
        system=system,
        step_budget=step_budget,
        store_budget=store_budget,
        materialize_first=materialize_first,
    )
    supports_by_level: dict[int, dict[tuple, int]] = {}

    def on_level(size: int, tables: dict[tuple, Domain]) -> None:
        supports_by_level[size] = {
            code: domain.support() for code, domain in tables.items()
        }
        # Domains are live memory too (the FSM memory wall of Fig 13).
        for domain in tables.values():
            enum.store.add(domain.memory_bytes())
        if enum.store.over_budget():
            raise MemoryBudgetExceeded(
                enum.store.live_bytes, enum.store.budget_bytes
            )

    def prune_current(code: tuple) -> bool:
        if not supports_by_level:
            return False
        last_level = max(supports_by_level)
        return supports_by_level[last_level].get(code, 0) < threshold

    tables = enum.final_level_edge_induced(
        num_edges, prune_pattern=prune_current, on_level=on_level
    )
    frequent = {
        code: domain.support()
        for code, domain in tables.items()
        if domain.support() >= threshold
    }
    enum.counters.result_size = len(frequent)
    enum.counters.peak_store_bytes = enum.store.peak_bytes
    return frequent, enum.counters
