"""G-Miner-like purpose-built algorithms with task materialization (§6.4).

G-Miner is task-oriented: a mining job is decomposed into per-vertex tasks,
each *carrying its own subgraph* (the vertex's neighborhood data), which a
distributed task queue ships around.  Our reimplementation keeps the two
applications G-Miner ships — triangle counting and matching the labeled
pattern p2 — and models the task overhead faithfully: every task
materializes a private copy of the adjacency slices it needs before
computing on them.

That overhead is why Peregrine beats a purpose-built triangle counter in
Table 5 while G-Miner wins on p2 over Orkut: its *label index* (built at
preprocessing time) prefilters candidates by label, which pays off on
label-selective queries over dense graphs.
"""

from __future__ import annotations

from ..core.candidates import intersect_count
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from ..profiling.counters import ExplorationCounters
from ..profiling.memory import StoreMeter

__all__ = ["gminer_triangle_count", "gminer_match_p2", "TaskStats"]


class TaskStats(ExplorationCounters):
    """Counters extended with task-materialization accounting."""

    def __init__(self, system: str):
        super().__init__(system=system)
        self.extra["tasks"] = 0
        self.extra["task_bytes"] = 0


def gminer_triangle_count(graph: DataGraph) -> tuple[int, ExplorationCounters]:
    """Purpose-built triangle counting over per-vertex tasks.

    Each task copies the forward adjacency (neighbors with larger id) of
    its vertex and of each such neighbor — the task's shipped subgraph —
    then counts |N+(v) ∩ N+(w)| pairs.
    """
    counters = TaskStats("gminer-like")
    store = StoreMeter()
    total = 0
    for v in graph.vertices():
        counters.extra["tasks"] += 1
        forward = list(graph.neighbors_above(v, v))  # task-local copy
        task_bytes = 8 * len(forward)
        slices = {}
        for w in forward:
            slices[w] = list(graph.neighbors_above(w, w))  # shipped slice
            task_bytes += 8 * len(slices[w])
        counters.extra["task_bytes"] += task_bytes
        store.add(task_bytes)
        for w in forward:
            counters.matches_explored += 1
            total += intersect_count(forward, slices[w])
        store.remove(task_bytes)
    counters.result_size = total
    counters.peak_store_bytes = store.peak_bytes
    return total, counters


def gminer_match_p2(
    graph: DataGraph, pattern: Pattern
) -> tuple[int, ExplorationCounters]:
    """Match a fully-labeled tailed-triangle pattern via the label index.

    ``pattern`` must be p2-shaped: triangle (0,1,2) with tail (2,3) and a
    label on every vertex.  Candidates for each pattern vertex come from
    the preprocessed label index; the triangle is found by intersecting
    label-filtered adjacency, then the tail is attached.
    """
    counters = TaskStats("gminer-like")
    store = StoreMeter()
    labels = [pattern.label_of(u) for u in range(4)]
    if any(lab is None for lab in labels) or not graph.is_labeled:
        raise ValueError("gminer_match_p2 requires a fully labeled pattern and graph")
    lab0, lab1, lab2, lab3 = labels
    count = 0
    # Index preprocessing cost: the label index is materialized per task
    # batch (G-Miner builds it when loading the graph).
    for lab in set(labels):
        store.add(8 * len(graph.vertices_with_label(lab)))
    glabel = graph.label
    for v0 in graph.vertices_with_label(lab0):
        counters.extra["tasks"] += 1
        nbrs0 = graph.neighbors(v0)
        cand1 = [v for v in nbrs0 if glabel(v) == lab1]
        store.add(8 * len(cand1))
        for v1 in cand1:
            for v2 in graph.neighbors(v1):
                counters.matches_explored += 1
                if v2 == v0 or glabel(v2) != lab2:
                    continue
                if not graph.has_edge(v0, v2):
                    continue
                for v3 in graph.neighbors(v2):
                    if v3 in (v0, v1) or glabel(v3) != lab3:
                        continue
                    counters.matches_explored += 1
                    count += 1
        store.remove(8 * len(cand1))
    counters.result_size = count
    counters.peak_store_bytes = store.peak_bytes
    return count, counters
