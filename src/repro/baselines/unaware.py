"""PRG-U: Peregrine with symmetry breaking disabled (Figure 10, Table 1).

PRG-U models systems that are guided but not *fully* pattern-aware
(AutoMine, Fractal's non-matching workloads): exploration still follows
the pattern's structure, but without partial orders every automorphic copy
of every match is generated, and deduplication / multiplicity correction
falls back on the user (§2.2.2, §6.6).
"""

from __future__ import annotations

from ..core.api import count as _count
from ..graph.graph import DataGraph
from ..mining.fsm import FSMResult, fsm as _fsm
from ..mining.motifs import motif_counts as _motif_counts
from ..pattern.canonical import automorphism_count
from ..pattern.pattern import Pattern

__all__ = [
    "prgu_count",
    "prgu_count_raw",
    "prgu_motif_counts",
    "prgu_fsm",
    "dedup_factor",
]


def dedup_factor(pattern: Pattern, edge_induced: bool = True) -> int:
    """|Aut| — how many times PRG-U reports each unique match."""
    p = pattern if edge_induced else pattern.vertex_induced_closure()
    return automorphism_count(p)


def prgu_count_raw(
    graph: DataGraph, pattern: Pattern, edge_induced: bool = True
) -> int:
    """Raw PRG-U count: every automorphic copy included."""
    return _count(
        graph, pattern, edge_induced=edge_induced, symmetry_breaking=False
    )


def prgu_count(
    graph: DataGraph, pattern: Pattern, edge_induced: bool = True
) -> int:
    """PRG-U count with the user-side multiplicity correction applied."""
    raw = prgu_count_raw(graph, pattern, edge_induced=edge_induced)
    return raw // dedup_factor(pattern, edge_induced=edge_induced)


def prgu_motif_counts(graph: DataGraph, size: int) -> dict[Pattern, int]:
    """Motif counting without symmetry breaking (corrected counts)."""
    return _motif_counts(graph, size, symmetry_breaking=False)


def prgu_fsm(graph: DataGraph, num_edges: int, threshold: int) -> FSMResult:
    """FSM without symmetry breaking: redundant domain writes per match."""
    return _fsm(graph, num_edges, threshold, symmetry_breaking=False)
