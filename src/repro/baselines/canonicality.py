"""Embedding canonicality checks — the per-embedding cost Peregrine avoids.

Pattern-oblivious systems (Arabesque, RStream, Fractal) dedupe automorphic
embeddings by testing, for every embedding they generate, whether the order
its vertices were added is the *canonical* growth order of that vertex set.
The check is O(k^2 . deg) per embedding, and Figure 1 shows the systems
perform it hundreds of millions to billions of times.

Canonical growth order (the standard Arabesque rule): start from the
smallest vertex of the set; repeatedly append the smallest remaining vertex
adjacent to the current prefix.  An embedding is canonical iff its recorded
order equals that sequence.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.graph import DataGraph

__all__ = ["canonical_growth_order", "is_canonical_embedding"]


def canonical_growth_order(
    graph: DataGraph, vertices: Sequence[int]
) -> tuple[int, ...]:
    """The unique canonical order in which ``vertices`` can be grown."""
    remaining = set(vertices)
    start = min(remaining)
    order = [start]
    remaining.discard(start)
    in_prefix = {start}
    while remaining:
        best = None
        for v in sorted(remaining):
            if any(graph.has_edge(v, u) for u in in_prefix):
                best = v
                break
        if best is None:
            # Disconnected embedding: fall back to smallest remaining.
            best = min(remaining)
        order.append(best)
        remaining.discard(best)
        in_prefix.add(best)
    return tuple(order)


def is_canonical_embedding(
    graph: DataGraph, embedding: Sequence[int]
) -> bool:
    """Whether ``embedding``'s recorded growth order is the canonical one."""
    return tuple(embedding) == canonical_growth_order(graph, embedding)
