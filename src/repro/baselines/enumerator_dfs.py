"""Fractal-like depth-first enumeration (§2.2, §6.3).

Same per-embedding costs as the BFS systems — every extension is
canonicality-checked, classification needs per-embedding isomorphism — but
embeddings live only on the recursion stack, so memory stays low (the
Fractal column of Figure 13).  Exploration is still pattern-*oblivious*:
extensions consider every neighbor of the embedding, and symmetry breaking
is absent, so the explored counts remain orders of magnitude above the
result size (Figure 1's Fractal rows).

``dfs_pattern_match`` models Fractal's pattern-matching fractoid: guided by
the pattern's edges during extension, but with neither matching orders nor
symmetry breaking — full matches are deduped by an explicit per-match
automorphism-minimality check.
"""

from __future__ import annotations

from typing import Callable

from ..errors import BudgetExceeded
from ..graph.graph import DataGraph
from ..mining.support import Domain
from ..pattern.canonical import automorphisms
from ..pattern.pattern import Pattern
from ..profiling.counters import ExplorationCounters
from ..profiling.memory import StoreMeter
from .canonicality import is_canonical_embedding
from .enumerator_bfs import induced_labeled_code_for_edges
from .edge_canonicality import is_canonical_edge_embedding
from .isomorphism import induced_code

__all__ = [
    "DFSEnumerator",
    "dfs_motif_count",
    "dfs_clique_count",
    "dfs_fsm",
    "dfs_pattern_match",
]


class DFSEnumerator:
    """Depth-first embedding enumerator with cost accounting."""

    def __init__(
        self,
        graph: DataGraph,
        system: str = "fractal-like",
        step_budget: int | None = None,
    ):
        self.graph = graph
        self.counters = ExplorationCounters(system=system)
        self.store = StoreMeter()
        self.step_budget = step_budget

    def _spend(self) -> None:
        self.counters.matches_explored += 1
        if (
            self.step_budget is not None
            and self.counters.matches_explored > self.step_budget
        ):
            raise BudgetExceeded(self.counters.matches_explored, self.step_budget)

    def visit_vertex_embeddings(
        self,
        size: int,
        visit: Callable[[tuple[int, ...]], None],
        keep: Callable[[tuple[int, ...], int], bool] | None = None,
    ) -> None:
        """Depth-first enumeration of canonical vertex embeddings."""
        graph = self.graph

        def recurse(emb: tuple[int, ...]) -> None:
            self.store.add_embedding(len(emb))  # stack frame only
            if len(emb) == size:
                visit(emb)
                self.store.remove_embedding(len(emb))
                return
            members = set(emb)
            candidates = set()
            for u in emb:
                candidates.update(graph.neighbors(u))
            candidates.difference_update(members)
            for v in sorted(candidates):
                new_emb = emb + (v,)
                self._spend()
                self.counters.canonicality_checks += 1
                if not is_canonical_embedding(graph, new_emb):
                    continue
                if keep is not None and not keep(new_emb, v):
                    continue
                recurse(new_emb)
            self.store.remove_embedding(len(emb))

        for v in graph.vertices():
            self._spend()
            recurse((v,))

    def visit_edge_embeddings(
        self,
        num_edges: int,
        visit: Callable[[tuple[tuple[int, int], ...]], None],
        prune: Callable[[tuple[tuple[int, int], ...]], bool] | None = None,
    ) -> None:
        """Depth-first enumeration of canonical edge-grown embeddings."""
        graph = self.graph

        def recurse(emb: tuple[tuple[int, int], ...]) -> None:
            if len(emb) == num_edges:
                visit(emb)
                return
            if prune is not None and prune(emb):
                return
            edge_set = set(emb)
            members = {x for e in emb for x in e}
            for w in sorted(members):
                for x in graph.neighbors(w):
                    edge = (w, x) if w < x else (x, w)
                    if edge in edge_set:
                        continue
                    new_emb = emb + (edge,)
                    self._spend()
                    self.counters.canonicality_checks += 1
                    if not is_canonical_edge_embedding(new_emb):
                        continue
                    recurse(new_emb)

        for u, v in graph.edges():
            self._spend()
            recurse((((u, v)),))


def dfs_motif_count(
    graph: DataGraph, size: int, step_budget: int | None = None
) -> tuple[dict[tuple, int], ExplorationCounters]:
    """Motif counting with DFS enumeration + final isomorphism checks."""
    enum = DFSEnumerator(graph, step_budget=step_budget)
    counts: dict[tuple, int] = {}

    def visit(emb: tuple[int, ...]) -> None:
        enum.counters.isomorphism_checks += 1
        code = induced_code(graph, emb)
        counts[code] = counts.get(code, 0) + 1
        enum.counters.result_size += 1

    enum.visit_vertex_embeddings(size, visit)
    enum.counters.peak_store_bytes = enum.store.peak_bytes
    return counts, enum.counters


def dfs_clique_count(
    graph: DataGraph, k: int, step_budget: int | None = None
) -> tuple[int, ExplorationCounters]:
    """k-clique counting via filtered DFS (Fractal's native clique mode)."""
    enum = DFSEnumerator(graph, step_budget=step_budget)
    state = {"count": 0}

    def keep(emb: tuple[int, ...], new_vertex: int) -> bool:
        return all(graph.has_edge(new_vertex, u) for u in emb if u != new_vertex)

    def visit(emb: tuple[int, ...]) -> None:
        state["count"] += 1

    enum.visit_vertex_embeddings(k, visit, keep=keep)
    enum.counters.result_size = state["count"]
    enum.counters.peak_store_bytes = enum.store.peak_bytes
    return state["count"], enum.counters


def dfs_fsm(
    graph: DataGraph,
    num_edges: int,
    threshold: int,
    step_budget: int | None = None,
) -> tuple[dict[tuple, int], ExplorationCounters]:
    """FSM with depth-first re-enumeration per size (low memory, more CPU).

    Each round enumerates embeddings of the next edge count from scratch,
    pruning prefixes whose pattern was infrequent in the previous round —
    Fractal's delayed-filter behavior.
    """
    enum = DFSEnumerator(graph, step_budget=step_budget)
    frequent_by_size: dict[int, set[tuple]] = {}
    tables: dict[tuple, Domain] = {}

    for size in range(1, num_edges + 1):
        tables = {}

        def classify(emb: tuple[tuple[int, int], ...]) -> tuple:
            vertices = tuple(sorted({x for e in emb for x in e}))
            enum.counters.isomorphism_checks += 1
            code, ordered, orbits = induced_labeled_code_for_edges(
                graph, emb, vertices
            )
            if code not in tables:
                tables[code] = Domain(len(vertices), orbits)
            tables[code].update(ordered)
            enum.counters.aggregation_writes += len(ordered)
            return code

        def prune(emb: tuple[tuple[int, int], ...]) -> bool:
            # Anti-monotone pruning: a prefix with k edges whose pattern was
            # infrequent at round k cannot grow into a frequent pattern.
            known = frequent_by_size.get(len(emb))
            if known is None:
                return False
            vertices = tuple(sorted({x for e in emb for x in e}))
            enum.counters.isomorphism_checks += 1
            code, _, _ = induced_labeled_code_for_edges(graph, emb, vertices)
            return code not in known

        enum.visit_edge_embeddings(size, classify, prune=prune)
        frequent_by_size[size] = {
            code
            for code, domain in tables.items()
            if domain.support() >= threshold
        }
        round_bytes = sum(d.memory_bytes() for d in tables.values())
        enum.store.add(round_bytes)
        if size < num_edges:
            enum.store.remove(round_bytes)

    frequent = {
        code: tables[code].support()
        for code in frequent_by_size.get(num_edges, set())
    }
    enum.counters.result_size = len(frequent)
    enum.counters.peak_store_bytes = enum.store.peak_bytes
    return frequent, enum.counters


def dfs_pattern_match(
    graph: DataGraph,
    pattern: Pattern,
    step_budget: int | None = None,
) -> tuple[int, ExplorationCounters]:
    """Pattern matching without plans: unguided backtracking + dedup.

    Pattern vertices are matched in id order with edge verification but no
    matching order, no degree ordering and no symmetry breaking; every full
    match pays an automorphism-minimality check to drop duplicates.
    """
    enum = DFSEnumerator(graph, step_budget=step_budget)
    autos = automorphisms(pattern)
    n = pattern.num_vertices
    labels = graph.labels()
    neighbors_before = [
        [j for j in range(i) if pattern.are_connected(i, j)] for i in range(n)
    ]
    count = 0
    mapping = [-1] * n
    used: set[int] = set()

    def is_minimal(assignment: list[int]) -> bool:
        base = tuple(assignment)
        for sigma in autos:
            image = tuple(assignment[sigma[u]] for u in range(n))
            if image < base:
                return False
        return True

    def recurse(i: int) -> None:
        nonlocal count
        if i == n:
            enum.counters.isomorphism_checks += 1
            if is_minimal(mapping):
                count += 1
            return
        want = pattern.label_of(i)
        if neighbors_before[i]:
            candidates = graph.neighbors(mapping[neighbors_before[i][0]])
        else:
            candidates = graph.vertices()
        for v in candidates:
            if v in used:
                continue
            if want is not None and (labels is None or labels[v] != want):
                continue
            ok = True
            for j in neighbors_before[i]:
                if not graph.has_edge(v, mapping[j]):
                    ok = False
                    break
            if not ok:
                continue
            enum._spend()
            mapping[i] = v
            used.add(v)
            recurse(i + 1)
            used.discard(v)
            mapping[i] = -1

    recurse(0)
    enum.counters.result_size = count
    enum.counters.peak_store_bytes = enum.store.peak_bytes
    return count, enum.counters
