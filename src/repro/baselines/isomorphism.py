"""Per-embedding isomorphism computations for the baseline systems.

Pattern-oblivious systems must *discover* each explored embedding's pattern
(motif counting, FSM) or verify it against a query pattern (pattern
matching) with an explicit isomorphism computation per embedding — the
second per-match cost Peregrine's plans eliminate.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.graph import DataGraph
from ..pattern.canonical import canonical_code, canonical_permutation
from ..pattern.pattern import Pattern

__all__ = [
    "induced_pattern",
    "induced_code",
    "induced_labeled_code",
    "edge_set_pattern",
]


def induced_pattern(graph: DataGraph, vertices: Sequence[int]) -> Pattern:
    """The pattern induced by a vertex embedding (dense renaming)."""
    index = {v: i for i, v in enumerate(vertices)}
    p = Pattern(num_vertices=len(vertices))
    ordered = sorted(vertices)
    for i, u in enumerate(ordered):
        for v in ordered[i + 1:]:
            if graph.has_edge(u, v):
                p.add_edge(index[u], index[v])
    return p


def induced_code(graph: DataGraph, vertices: Sequence[int]) -> tuple:
    """Canonical code of the induced pattern (one isomorphism computation)."""
    return canonical_code(induced_pattern(graph, vertices))


def induced_labeled_code(
    graph: DataGraph, vertices: Sequence[int]
) -> tuple[tuple, tuple[int, ...]]:
    """Canonical code + canonical order of the *labeled* induced pattern.

    Returns ``(code, data_vertices_in_canonical_order)`` so FSM baselines
    can write domains in canonical coordinates.
    """
    p = induced_pattern(graph, vertices)
    for i, v in enumerate(vertices):
        label = graph.label(v)
        if label is not None:
            p.set_label(i, label)
    code, order = canonical_permutation(p)
    return code, tuple(vertices[i] for i in order)


def edge_set_pattern(edges: Sequence[tuple[int, int]]) -> Pattern:
    """The pattern formed by an explicit edge set (edge-induced embedding)."""
    vertices = sorted({v for e in edges for v in e})
    index = {v: i for i, v in enumerate(vertices)}
    p = Pattern(num_vertices=len(vertices))
    for u, v in edges:
        p.add_edge(index[u], index[v])
    return p
