"""Dynamic task scheduling (§5.2, §5.5).

A task is the data vertex an exploration starts from.  Tasks are handed
out through a shared atomic counter over the degree-descending vertex
order — highest-degree (largest-id) vertices first, so the heaviest tasks
start early and stragglers are short.  Workers pull chunks to amortize
counter contention.
"""

from __future__ import annotations

import threading
from typing import Sequence

__all__ = ["TaskScheduler"]


class TaskScheduler:
    """Chunked atomic-counter scheduler over a fixed task order."""

    __slots__ = ("_order", "_next", "_lock", "chunk_size")

    def __init__(self, order: Sequence[int], chunk_size: int = 64):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._order = order
        self._next = 0
        self._lock = threading.Lock()
        self.chunk_size = chunk_size

    @classmethod
    def degree_descending(cls, num_vertices: int, chunk_size: int = 64) -> "TaskScheduler":
        """Scheduler over a degree-ordered graph: ids n-1 .. 0 (§5.2)."""
        return cls(range(num_vertices - 1, -1, -1), chunk_size=chunk_size)

    def next_chunk(self) -> Sequence[int]:
        """Claim the next chunk of start vertices; empty when exhausted."""
        with self._lock:
            start = self._next
            if start >= len(self._order):
                return ()
            end = min(start + self.chunk_size, len(self._order))
            self._next = end
        return self._order[start:end]

    def remaining(self) -> int:
        with self._lock:
            return max(0, len(self._order) - self._next)

    def reset(self) -> None:
        with self._lock:
            self._next = 0
