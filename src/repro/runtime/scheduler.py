"""Dynamic task scheduling (§5.2, §5.5): the shared chunking layer.

A task is the data vertex an exploration starts from.  Tasks are handed
out hub-first (highest-degree vertices lead the frontier, so the
heaviest tasks start early and stragglers are short) in *chunks*, and a
chunk's extent is **degree-weighted**: boundaries close once a chunk's
cumulative weight reaches a cap, so a chunk holding a mega-hub carries
few starts while leaf-only chunks carry many.  That one rule — the same
closing rule :func:`repro.core.accel.bounded_slices` applies to frontier
memory — keeps per-chunk work roughly even regardless of degree skew.

Both concurrent runtimes consume this layer:

* :func:`repro.runtime.parallel.parallel_match` worker *threads* pull
  chunks from a :class:`TaskScheduler` (an atomic-counter cursor guarded
  by a ``threading.Lock``);
* :func:`repro.runtime.parallel.process_count` /
  :func:`~repro.runtime.parallel.process_count_many` worker *processes*
  share a :class:`ProcessCursor` (a ``multiprocessing.Value`` counter)
  over the same :class:`ChunkLedger` — the ledger is immutable and
  reaches workers fork-inherited or pickled once, so only the cursor is
  ever contended.

``schedule="static"`` bypasses the cursor entirely:
:func:`static_slices` hands each worker a stride slice of the frontier
up front (the pre-work-stealing behaviour, kept as the ablation
baseline the scalability benchmark measures against).
"""

from __future__ import annotations

import threading
from typing import Sequence

__all__ = [
    "ChunkLedger",
    "LeaseBoard",
    "ProcessCursor",
    "TaskScheduler",
    "CHUNKS_PER_WORKER",
    "static_slices",
    "weighted_boundaries",
]

# Auto chunk sizing: target this many chunks per worker when no
# ``chunk_hint`` is given.  Enough granularity that one straggler chunk
# costs ~1/8 of a worker's share, few enough that per-chunk dispatch
# overhead (one engine call, one cursor claim) stays negligible.
CHUNKS_PER_WORKER = 8


def weighted_boundaries(weights: Sequence[float], cap: float) -> list[int]:
    """Chunk boundaries over ``weights`` whose sums stay near ``cap``.

    Returns ``[0, b1, ..., len(weights)]``: chunk ``i`` spans
    ``weights[b_i:b_{i+1}]``.  A chunk closes as soon as its cumulative
    weight reaches ``cap``; a lone over-cap element still forms a chunk
    of its own, so progress is guaranteed and the heaviest chunk is one
    element's weight, not ``cap + max_weight``.  This is the pure-Python
    mirror of :func:`repro.core.accel.bounded_slices` (the rule the
    engines use to bound frontier memory), so scheduling chunks and
    engine-internal chunks agree on what "near the cap" means.
    """
    n = len(weights)
    if hasattr(weights, "cumsum") and hasattr(weights, "searchsorted"):
        # numpy (or array-API) weights: O(chunks log n) via prefix sums,
        # same closing rule as the scalar loop below.
        cum = weights.cumsum()
        boundaries = [0]
        start = 0
        while start < n:
            base = cum[start - 1] if start else 0
            end = int(cum.searchsorted(base + cap, "left")) + 1
            end = min(max(end, start + 1), n)
            boundaries.append(end)
            start = end
        return boundaries
    boundaries = [0]
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if acc >= cap:
            boundaries.append(i + 1)
            acc = 0.0
    if boundaries[-1] != n:
        boundaries.append(n)
    return boundaries


class ChunkLedger:
    """An immutable chunk table: a task order plus chunk boundaries.

    The ledger is the *shared* half of a work queue: every worker —
    thread or process — holds the same ledger and claims chunk *indices*
    from a cursor, then reads its chunk locally.  Nothing in the ledger
    is ever mutated, so it is safe fork-inherited, pickled to spawn
    workers, or referenced from any number of threads.
    """

    __slots__ = ("order", "boundaries")

    def __init__(self, order: Sequence[int], boundaries: Sequence[int]):
        self.order = order
        self.boundaries = boundaries

    @classmethod
    def build(
        cls,
        order: Sequence[int],
        weights: Sequence[float] | None = None,
        chunk_hint: int | None = None,
        num_workers: int = 1,
    ) -> "ChunkLedger":
        """Chunk ``order`` by weight (degree) or uniformly.

        ``weights`` aligns one-to-one with ``order`` (typically
        ``degree + 1`` per start vertex); ``None`` means uniform tasks.
        ``chunk_hint`` is the target number of *tasks* per chunk on a
        uniform frontier — internally a weight cap of ``chunk_hint *
        mean_weight``, so on skewed frontiers a hub chunk carries fewer
        starts.  Without a hint the cap targets
        :data:`CHUNKS_PER_WORKER` chunks per worker.
        """
        n = len(order)
        if n == 0:
            return cls(order, [0])
        if weights is None:
            # Uniform weights: boundaries are arithmetic, skip the scan.
            if chunk_hint is not None:
                if chunk_hint < 1:
                    raise ValueError(
                        f"chunk_hint must be >= 1, got {chunk_hint}"
                    )
                step = int(chunk_hint)
            else:
                step = max(
                    1, n // (max(1, num_workers) * CHUNKS_PER_WORKER)
                )
            boundaries = list(range(0, n, step))
            boundaries.append(n)
            return cls(order, boundaries)
        total = (
            float(weights.sum()) if hasattr(weights, "sum")
            else float(sum(weights))
        )
        mean = total / n if n else 1.0
        if chunk_hint is not None:
            if chunk_hint < 1:
                raise ValueError(f"chunk_hint must be >= 1, got {chunk_hint}")
            cap = chunk_hint * max(mean, 1e-12)
        else:
            cap = max(
                max(mean, 1e-12),
                total / (max(1, num_workers) * CHUNKS_PER_WORKER),
            )
        return cls(order, weighted_boundaries(weights, cap))

    def __len__(self) -> int:
        return len(self.boundaries) - 1

    @property
    def num_tasks(self) -> int:
        return self.boundaries[-1]

    def chunk(self, index: int) -> Sequence[int]:
        """The ``index``-th chunk of the task order."""
        return self.order[self.boundaries[index]: self.boundaries[index + 1]]


class ProcessCursor:
    """A chunk-index cursor shared across a process pool.

    Wraps a ``multiprocessing.Value`` counter (with its built-in lock)
    created from the pool's own context, so it reaches workers through
    fork inheritance or spawn initargs alike.  Workers call
    :meth:`claim` until it runs past the ledger — the entire dynamic
    scheduling protocol is this one fetch-and-increment.
    """

    __slots__ = ("_value",)

    def __init__(self, ctx):
        self._value = ctx.Value("l", 0)

    def claim(self) -> int:
        """Atomically claim and return the next chunk index."""
        with self._value.get_lock():
            index = self._value.value
            self._value.value = index + 1
        return index


class LeaseBoard:
    """Shared per-chunk lease and result state for crash-tolerant drains.

    The ledger says *what* the chunks are; the board says *how far* each
    chunk got.  Every chunk has one status slot (``0`` pending,
    ``worker_id + 1`` leased, ``-1`` done) and one or more count slots
    (one per fused-group member for multi-pattern runs, selected by
    ``slot_offsets``).  Workers lease a chunk *before* running it and
    write its counts *before* marking it done — both under the board's
    lock — so a worker that dies at any point leaves the chunk either
    untouched or leased-but-not-done, and the parent can requeue exactly
    the chunks whose results never landed.  A chunk's counts are written
    at most once (write-then-mark-done is atomic under the lock), so a
    requeued chunk can never be double-counted.

    Both arrays are ``multiprocessing`` shared ctypes from the pool's own
    context, so the board reaches workers fork-inherited or pickled into
    spawn args alike.
    """

    DONE = -1
    PENDING = 0

    __slots__ = ("_status", "_counts", "_offsets")

    def __init__(self, ctx, num_chunks: int, slot_offsets: Sequence[int] | None = None):
        if slot_offsets is None:
            slot_offsets = list(range(num_chunks + 1))
        if len(slot_offsets) != num_chunks + 1:
            raise ValueError(
                f"slot_offsets must have {num_chunks + 1} entries, "
                f"got {len(slot_offsets)}"
            )
        self._offsets = list(slot_offsets)
        self._status = ctx.Array("l", max(1, num_chunks))
        self._counts = ctx.Array("l", max(1, self._offsets[-1]))

    def lease(self, index: int, worker_id: int) -> None:
        """Record that ``worker_id`` is about to run chunk ``index``."""
        with self._status.get_lock():
            self._status[index] = worker_id + 1

    def complete(self, index: int, values: Sequence[int]) -> None:
        """Land chunk ``index``'s counts and mark it done (atomically)."""
        lo = self._offsets[index]
        hi = self._offsets[index + 1]
        if len(values) != hi - lo:
            raise ValueError(
                f"chunk {index} has {hi - lo} count slots, "
                f"got {len(values)} values"
            )
        with self._status.get_lock():
            for k, value in enumerate(values):
                self._counts[lo + k] = int(value)
            self._status[index] = self.DONE

    def is_done(self, index: int) -> bool:
        return self._status[index] == self.DONE

    def pending(self, indices: Sequence[int]) -> list[int]:
        """The subset of ``indices`` whose results never landed."""
        with self._status.get_lock():
            return [i for i in indices if self._status[i] != self.DONE]

    def done_indices(self, num_chunks: int) -> list[int]:
        with self._status.get_lock():
            return [i for i in range(num_chunks) if self._status[i] == self.DONE]

    def values(self, index: int) -> list[int]:
        """The landed counts for a done chunk."""
        return list(self._counts[self._offsets[index]: self._offsets[index + 1]])


class TaskScheduler:
    """Chunked atomic-counter scheduler over a fixed task order (threads).

    The thread-side face of the shared layer: a :class:`ChunkLedger`
    plus a lock-guarded cursor.  ``chunk_size`` is the chunk hint —
    tasks per chunk on a uniform frontier (``None`` sizes chunks
    automatically for ``num_workers``, targeting
    :data:`CHUNKS_PER_WORKER` each); pass ``weights`` (typically
    ``degree + 1`` per task) to get degree-weighted chunks, where a hub
    chunk carries fewer starts than a leaf chunk.
    """

    __slots__ = ("_ledger", "_next", "_lock", "chunk_size")

    def __init__(
        self,
        order: Sequence[int],
        chunk_size: int | None = 64,
        weights: Sequence[float] | None = None,
        num_workers: int = 1,
    ):
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._ledger = ChunkLedger.build(
            order,
            weights=weights,
            chunk_hint=chunk_size,
            num_workers=num_workers,
        )
        self._next = 0
        self._lock = threading.Lock()
        self.chunk_size = chunk_size

    @classmethod
    def degree_descending(cls, num_vertices: int, chunk_size: int = 64) -> "TaskScheduler":
        """Scheduler over a degree-ordered graph: ids n-1 .. 0 (§5.2)."""
        return cls(range(num_vertices - 1, -1, -1), chunk_size=chunk_size)

    @property
    def ledger(self) -> ChunkLedger:
        return self._ledger

    def next_chunk(self) -> Sequence[int]:
        """Claim the next chunk of start vertices; empty when exhausted."""
        with self._lock:
            index = self._next
            if index >= len(self._ledger):
                return ()
            self._next = index + 1
        return self._ledger.chunk(index)

    def remaining(self) -> int:
        """Number of tasks not yet claimed (chunk-granular)."""
        with self._lock:
            index = min(self._next, len(self._ledger))
        return self._ledger.num_tasks - self._ledger.boundaries[index]

    def reset(self) -> None:
        with self._lock:
            self._next = 0


def static_slices(order: Sequence[int], num_workers: int) -> list[Sequence[int]]:
    """Stride-partition ``order`` into one up-front slice per worker.

    The pre-work-stealing decomposition (and the benchmark baseline):
    worker ``i`` gets ``order[i::num_workers]``, fixed before any work
    runs.  On a hub-first frontier this interleaves hubs and leaves, but
    per-task cost skew still lands unevenly — whichever worker draws the
    heaviest hub keeps its full 1/P share of everything else too, which
    is exactly the straggler dynamic chunks absorb.
    """
    return [order[i::num_workers] for i in range(num_workers)]
