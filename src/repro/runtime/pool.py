"""Worker-pool handoff for the async service tier.

The asyncio event loop must never run a mining walk inline — one heavy
query would freeze admission, batching timers and every other
connection.  :class:`QueryPool` is the thin bridge the service uses to
push session verbs onto worker threads: a named
:class:`~concurrent.futures.ThreadPoolExecutor` plus an awaitable
``run`` that suspends the calling coroutine until the verb finishes.

Threads (not processes) are the right default here: the batched engines
spend their time inside numpy kernels that release the GIL, the session
caches (plans, CSR view, start lists) are shared by reference instead of
being re-derived per worker, and queries that *do* need real
process-level parallelism go through the PR-5 runtimes from inside the
job (``session.count_many(..., num_processes=N)`` hands off to
:func:`~repro.runtime.parallel.process_count_many` unchanged).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

__all__ = ["QueryPool", "DEFAULT_POOL_WORKERS"]

# Service default: enough to overlap a fused batch with solo/guarded
# stragglers without oversubscribing small hosts.  Deployments size this
# to the machine via ServiceConfig.workers.
DEFAULT_POOL_WORKERS = 2


class QueryPool:
    """A bounded thread pool that mining jobs are handed off to.

    One pool serves a whole :class:`~repro.service.MiningService`:
    batched fused walks, solo guarded/budgeted queries and census verbs
    all share its workers, so total mining concurrency is bounded by
    ``workers`` no matter how many requests are in flight.
    """

    __slots__ = ("workers", "_executor")

    def __init__(self, workers: int = DEFAULT_POOL_WORKERS):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)`` on a worker; return its future."""
        return self._executor.submit(fn, *args)

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Await ``fn(*args)`` on a worker without blocking the loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, lambda: fn(*args))

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; with ``wait``, join running ones."""
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "QueryPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryPool(workers={self.workers})"
