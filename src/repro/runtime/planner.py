"""Cost-model-driven query planning: one probe chooses the whole run.

This is the second half of the virt-graph ``estimator``/``guards`` idiom
(ROADMAP item 2).  PR 7 built the bounded probe walk
(:func:`repro.runtime.guards.estimate_cost`) for *admission* — refuse or
downgrade predicted-explosive queries.  This module spends the same
probe on *planning*: the measurements the probe already takes (predicted
level-1 volume, second-level growth trend, hub skew, frontier size) are
exactly the signals the fixed dispatch thresholds
(:data:`~repro.core.session.ACCEL_BATCH_MIN_AVG_DEGREE`,
:data:`~repro.core.session.ACCEL_MIN_AVG_DEGREE`,
:data:`~repro.runtime.scheduler.CHUNKS_PER_WORKER`) approximate with
*graph-global* statistics — so a per-query :class:`QueryPlan` can beat
them precisely where the pattern and the graph disagree:

* a labeled pattern whose frontier sits on a dense core of an otherwise
  near-forest graph (global average degree says "interpreter", the
  measured per-start expansion says "batched engine");
* a labeled pattern whose frontier is a sparse sliver of a dense graph
  (global degree says "numpy", the measured level-1 volume says the
  interpreter finishes before numpy dispatch warms up);
* a uniform frontier that does not need work-stealing (static slices
  skip the shared-cursor protocol) vs. a hub-skewed one that does;
* a worker budget larger than the work (the plan caps the pool instead
  of paying fork start-up for idle processes).

``ExecOptions.plan="auto"`` turns the planner on; the default
``"fixed"`` keeps the historical thresholds as the ablation baseline.
The probe is cached per ``(pattern signature, matching flags)`` on the
session, and admission (:func:`~repro.runtime.guards.admit`) and
planning share one cached estimate — a guarded planned query probes
exactly once.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from . import guards
from .scheduler import CHUNKS_PER_WORKER

__all__ = [
    "QueryPlan",
    "plan_query",
    "plan_workload",
    "apply_plan",
    "explain",
    "batch_worthwhile",
    "PLANNER_CHOICES",
    "MIN_BATCH_EXPANSION",
    "TINY_LEVEL1_VOLUME",
    "SKEW_DYNAMIC_THRESHOLD",
    "TIGHTEN_PARTIALS",
    "PLANNED_FRONTIER_CHUNK",
    "WORK_PER_WORKER",
    "STEAL_CHUNKS_PER_WORKER",
    "APPROX_PARTIALS_PER_SECOND",
    "AUTO_APPROX_REL_ERR",
]

PLANNER_CHOICES = ("fixed", "auto")

# The batched engine's crossover in probe units.  The probe measures
# level-1 candidates per start (neighbors *below* the start under
# symmetry breaking — about half the degree), so the measured analogue
# of ACCEL_BATCH_MIN_AVG_DEGREE (average degree 2.0) is one candidate
# per start.  Unlike the global threshold, this is evaluated on the
# pattern's own (label-filtered) frontier.
MIN_BATCH_EXPANSION = 1.0

# Below this much total level-1 work, interpreter bisect/slice loops
# finish before numpy per-dispatch overhead amortizes — keep such
# queries on the reference engine regardless of density.
TINY_LEVEL1_VOLUME = 64.0

# Work-stealing pays when stragglers exist.  A frontier with hub starts
# (probe hub prefix non-empty) or with max/avg expansion skew at or
# above this ratio gets the dynamic schedule; uniform frontiers take
# static stride slices and skip the shared-cursor protocol.
SKEW_DYNAMIC_THRESHOLD = 4.0

# Above this predicted (unclamped) partial volume, bound per-dispatch
# frontier memory even for admitted queries.  Looser than the guard's
# DOWNGRADE_FRONTIER_CHUNK — this is pacing, not punishment.
TIGHTEN_PARTIALS = 1e6
PLANNED_FRONTIER_CHUNK = 8192

# Minimum level-1 rows per worker before another process is worth its
# fork/spawn start-up; the plan caps the pool at work/WORK_PER_WORKER.
WORK_PER_WORKER = 2048.0

# Chunks per worker on a skewed frontier: twice the default granularity
# (CHUNKS_PER_WORKER) so hub chunks steal in smaller units.
STEAL_CHUNKS_PER_WORKER = CHUNKS_PER_WORKER * 2

# Latency-budget routing (ROADMAP item 4 hooking into item 2's planner):
# the probe's raw partial prediction divided by this throughput is the
# planner's seconds-of-exact-work estimate; when it exceeds
# ``ExecOptions.latency_budget`` the query routes to the approximate
# tier at AUTO_APPROX_REL_ERR.  The throughput is a calibration
# constant in batched-engine partials per second — the order of
# magnitude measured across BENCH_engine/BENCH_planner hosts; it only
# needs to be right within a small factor, since latency budgets guard
# against queries predicted *orders* past them.
APPROX_PARTIALS_PER_SECOND = 2e6
AUTO_APPROX_REL_ERR = 0.05


@dataclass(frozen=True)
class QueryPlan:
    """One query's frozen execution choices, derived from one probe.

    ``engine`` is a concrete engine (``"reference"``/``"accel"``/
    ``"accel-batch"``, or ``"fused"`` for multi-pattern workloads) —
    never ``"auto"``.  ``num_workers`` never exceeds the caller's worker
    budget (the planner caps, it does not conscript).  ``reasons``
    records one line per choice for ``explain`` and the service echo.
    """

    engine: str
    schedule: str
    frontier_chunk: int | None
    chunk_hint: int | None
    num_workers: int
    reasons: tuple[str, ...] = ()
    estimate: guards.CostEstimate | None = None
    # Latency-budget routing: when True, a count-only run of this query
    # should answer from the approximate tier at ``approx_rel_err``
    # instead of running exact (see apply_plan's allow_approx).
    use_approx: bool = False
    approx_rel_err: float | None = None

    def as_dict(self) -> dict:
        """JSON-friendly form (service envelopes, bench artifacts)."""
        payload = {
            "engine": self.engine,
            "schedule": self.schedule,
            "frontier_chunk": self.frontier_chunk,
            "chunk_hint": self.chunk_hint,
            "num_workers": self.num_workers,
            "use_approx": self.use_approx,
            "approx_rel_err": self.approx_rel_err,
            "reasons": list(self.reasons),
        }
        if self.estimate is not None:
            payload["estimate"] = self.estimate.as_dict()
        return payload

    def describe(self) -> str:
        """One line for CLI output and logs."""
        chunk = "-" if self.frontier_chunk is None else self.frontier_chunk
        hint = "-" if self.chunk_hint is None else self.chunk_hint
        line = (
            f"engine={self.engine} schedule={self.schedule} "
            f"frontier_chunk={chunk} chunk_hint={hint} "
            f"workers={self.num_workers}"
        )
        if self.use_approx:
            line += f" approx={self.approx_rel_err:g}"
        return line


def _accel_module():
    """The accel module, or ``None`` when numpy is unavailable."""
    try:
        from ..core import accel
    except ImportError:  # pragma: no cover - exercised only without numpy
        return None
    return accel


def _batch_worthy(estimate: guards.CostEstimate) -> bool:
    """Whether the frontier-batched engine wins on *this* frontier."""
    return (
        estimate.avg_expansion >= MIN_BATCH_EXPANSION
        and estimate.level1_volume >= TINY_LEVEL1_VOLUME
    )


def batch_worthwhile(estimates) -> bool:
    """Workload-level batch decision: any member's frontier qualifies.

    The fused runner walks one shared frontier per group; if any
    member's measured expansion clears the batched crossover, the
    shared gathers amortize for the whole group.
    """
    return any(_batch_worthy(est) for est in estimates)


def _choose_engine(estimate, opts, hooks_free: bool, reasons: list) -> str:
    if opts.engine != "auto":
        reasons.append(f"engine {opts.engine!r} pinned by caller")
        return opts.engine
    if not hooks_free:
        reasons.append("reference: stats/timer hooks or numpy unavailable")
        return "reference"
    if estimate.level1_volume < TINY_LEVEL1_VOLUME:
        reasons.append(
            "reference: tiny level-1 volume "
            f"({estimate.level1_volume:.0f} rows < {TINY_LEVEL1_VOLUME:.0f})"
        )
        return "reference"
    if estimate.avg_expansion >= MIN_BATCH_EXPANSION:
        reasons.append(
            "accel-batch: measured level-1 expansion "
            f"{estimate.avg_expansion:.2f} >= {MIN_BATCH_EXPANSION:.2f} "
            f"over {estimate.frontier_size} starts"
        )
        return "accel-batch"
    reasons.append(
        "reference: measured level-1 expansion "
        f"{estimate.avg_expansion:.2f} below the batched crossover"
    )
    return "reference"


def _choose_workers(estimate, requested: int, reasons: list) -> int:
    if requested <= 1:
        return max(1, requested)
    if estimate.explosive:
        capped = min(requested, guards.DOWNGRADE_MAX_WORKERS)
        if capped < requested:
            reasons.append(
                f"workers {requested}->{capped}: predicted-explosive "
                "expansion caps the pool"
            )
        return capped
    work = max(estimate.level1_volume, float(estimate.frontier_size))
    by_work = max(1, int(work / WORK_PER_WORKER) + 1)
    capped = min(requested, estimate.frontier_size or 1, by_work)
    if capped < requested:
        reasons.append(
            f"workers {requested}->{capped}: ~{work:.0f} level-1 rows "
            f"do not feed {requested} workers"
        )
    return max(1, capped)


def _choose_schedule(
    estimate, workers: int, reasons: list
) -> tuple[str, int | None]:
    skewed = (
        estimate.hub_count > 0
        or estimate.hub_skew >= SKEW_DYNAMIC_THRESHOLD
    )
    if not skewed:
        reasons.append("static: uniform frontier, stealing cursor not needed")
        return "static", None
    chunk_hint = None
    if workers > 1 and estimate.frontier_size > workers:
        chunk_hint = max(
            1, estimate.frontier_size // (workers * STEAL_CHUNKS_PER_WORKER)
        )
    reasons.append(
        f"dynamic: {estimate.hub_count} hub starts, "
        f"expansion skew {estimate.hub_skew:.1f}"
    )
    return "dynamic", chunk_hint


def _choose_approx(estimate, opts, reasons: list) -> tuple[bool, float | None]:
    """Latency-budget routing: approximate when exact cannot fit.

    The caller already asking for ``approx`` passes through (the tier
    is engaged regardless of budgets); otherwise the probe's raw
    partial prediction, at :data:`APPROX_PARTIALS_PER_SECOND`, is the
    planner's predicted exact latency — past ``opts.latency_budget``
    the query routes to the sampling estimator at
    :data:`AUTO_APPROX_REL_ERR`.
    """
    if opts.approx is not None:
        reasons.append(f"approximate: rel_err={opts.approx:g} pinned by caller")
        return True, opts.approx
    if opts.latency_budget is None:
        return False, None
    predicted_seconds = (
        estimate.predicted_partials_raw / APPROX_PARTIALS_PER_SECOND
    )
    if predicted_seconds > opts.latency_budget:
        reasons.append(
            f"approximate: ~{estimate.predicted_partials_raw:.3g} "
            f"predicted partials (~{predicted_seconds:.3g}s exact) "
            f"exceed the {opts.latency_budget:g}s latency budget; "
            f"sampling at rel_err={AUTO_APPROX_REL_ERR:g}"
        )
        return True, AUTO_APPROX_REL_ERR
    reasons.append(
        f"exact: ~{predicted_seconds:.3g}s predicted fits the "
        f"{opts.latency_budget:g}s latency budget"
    )
    return False, None


def _choose_frontier_chunk(estimate, opts, reasons: list) -> int | None:
    chunk = opts.frontier_chunk
    if estimate.predicted_partials_raw > TIGHTEN_PARTIALS:
        planned = PLANNED_FRONTIER_CHUNK
        tightened = planned if chunk is None else min(chunk, planned)
        if tightened != chunk:
            reasons.append(
                f"frontier_chunk {chunk}->{tightened}: "
                f"~{estimate.predicted_partials_raw:.3g} predicted partials"
            )
        return tightened
    return chunk


def plan_query(
    graph_or_session,
    pattern,
    opts=None,
    *,
    estimate: guards.CostEstimate | None = None,
    num_workers: int = 1,
    **options,
) -> QueryPlan:
    """Plan one query from its (cached) probe estimate.

    ``opts`` is a resolved :class:`~repro.core.session.ExecOptions`;
    keyword ``options`` are the usual per-call overrides when ``opts``
    is not given.  ``estimate`` lets callers that already probed (the
    admission pass) share the walk — this is the no-double-probe path.
    ``num_workers`` is the caller's worker budget (process/thread
    count); the plan may cap it, never exceed it.
    """
    from ..core.session import as_session

    session = as_session(graph_or_session)
    if opts is None:
        opts = session.options(**options)
    elif options:
        raise TypeError("pass opts= or keyword options, not both")
    if estimate is None:
        estimate = session._guard_estimate(pattern, opts)
    accel = _accel_module()
    hooks_free = (
        accel is not None and opts.stats is None and opts.timer is None
    )
    reasons: list[str] = []
    engine = _choose_engine(estimate, opts, hooks_free, reasons)
    workers = _choose_workers(estimate, num_workers, reasons)
    schedule, chunk_hint = _choose_schedule(estimate, workers, reasons)
    frontier_chunk = _choose_frontier_chunk(estimate, opts, reasons)
    use_approx, approx_rel_err = _choose_approx(estimate, opts, reasons)
    if opts.chunk_hint is not None:
        chunk_hint = opts.chunk_hint
    return QueryPlan(
        engine=engine,
        schedule=schedule,
        frontier_chunk=frontier_chunk,
        chunk_hint=chunk_hint,
        num_workers=workers,
        reasons=tuple(reasons),
        estimate=estimate,
        use_approx=use_approx,
        approx_rel_err=approx_rel_err,
    )


def plan_workload(
    graph_or_session,
    patterns,
    opts=None,
    *,
    estimates=None,
    num_workers: int = 1,
    **options,
) -> QueryPlan:
    """Plan a multi-pattern workload from its members' probes.

    The fused runner walks one shared frontier per compatible group, so
    the workload-level choices aggregate: the engine is ``"fused"`` when
    any member's frontier clears the batched crossover (shared gathers
    amortize for the whole group), the schedule is dynamic when any
    member sees hub skew, the worker budget is fed by the *summed*
    level-1 volume, and the frontier chunk is the tightest any member
    needs.
    """
    from ..core.session import as_session

    session = as_session(graph_or_session)
    if opts is None:
        opts = session.options(**options)
    elif options:
        raise TypeError("pass opts= or keyword options, not both")
    if estimates is None:
        seen: dict = {}
        for pattern in patterns:
            sig = pattern.signature()
            if sig not in seen:
                seen[sig] = session._guard_estimate(pattern, opts)
        estimates = list(seen.values())
    if not estimates:
        return QueryPlan(
            engine="reference",
            schedule=opts.schedule,
            frontier_chunk=opts.frontier_chunk,
            chunk_hint=opts.chunk_hint,
            num_workers=max(1, num_workers),
            reasons=("empty workload",),
        )
    accel = _accel_module()
    hooks_free = (
        accel is not None and opts.stats is None and opts.timer is None
    )
    reasons: list[str] = []
    if opts.engine != "auto":
        engine = opts.engine
        reasons.append(f"engine {opts.engine!r} pinned by caller")
    elif hooks_free and batch_worthwhile(estimates):
        engine = "fused"
        reasons.append(
            "fused: at least one member frontier clears the batched "
            "crossover, shared gathers amortize for the group"
        )
    else:
        engine = "reference"
        reasons.append(
            "reference: no member frontier justifies the batched engine"
            if hooks_free
            else "reference: stats/timer hooks or numpy unavailable"
        )
    combined = dataclasses.replace(
        max(estimates, key=lambda e: e.level1_volume),
        level1_volume=sum(e.level1_volume for e in estimates),
        frontier_size=max(e.frontier_size for e in estimates),
        hub_count=max(e.hub_count for e in estimates),
        hub_skew=max(e.hub_skew for e in estimates),
        predicted_partials=max(e.predicted_partials for e in estimates),
        predicted_partials_raw=max(
            e.predicted_partials_raw for e in estimates
        ),
    )
    workers = _choose_workers(combined, num_workers, reasons)
    schedule, chunk_hint = _choose_schedule(combined, workers, reasons)
    frontier_chunk = opts.frontier_chunk
    for est in estimates:
        frontier_chunk = _choose_frontier_chunk(
            est, dataclasses.replace(opts, frontier_chunk=frontier_chunk),
            reasons,
        )
    if opts.chunk_hint is not None:
        chunk_hint = opts.chunk_hint
    return QueryPlan(
        engine=engine,
        schedule=schedule,
        frontier_chunk=frontier_chunk,
        chunk_hint=chunk_hint,
        num_workers=workers,
        reasons=tuple(reasons),
        estimate=combined,
    )


def apply_plan(plan: QueryPlan, opts, allow_approx: bool = True):
    """Fold a plan's choices back into execution options.

    ``engine`` is always concrete after planning (``_choose_engine``
    echoes a caller-pinned engine through), and ``schedule``/
    ``frontier_chunk``/``chunk_hint`` carry the planned values — for
    knobs the caller pinned explicitly, the planner already kept them.
    A latency-budget routing decision (``plan.use_approx``) engages the
    sampling tier only when the caller's run can honor it
    (``allow_approx`` — count-only runs without hooks); enumeration
    verbs keep exact semantics and simply ignore the routing.
    """
    opts = dataclasses.replace(
        opts,
        engine=plan.engine,
        schedule=plan.schedule,
        frontier_chunk=plan.frontier_chunk,
        chunk_hint=plan.chunk_hint,
    )
    if (
        allow_approx
        and plan.use_approx
        and opts.approx is None
        and plan.approx_rel_err is not None
    ):
        opts = dataclasses.replace(opts, approx=plan.approx_rel_err)
    return opts


def explain(
    graph_or_session, pattern, num_workers: int = 1, **options
) -> QueryPlan:
    """The plan a query *would* run with, without running it.

    Powers the CLI ``explain`` verb and the service's plan echo: probe
    (or reuse the session-cached probe), admit nothing, run nothing —
    just return the frozen :class:`QueryPlan` with its estimate and
    reasons attached.
    """
    from ..core.session import as_session

    session = as_session(graph_or_session)
    opts = session.options(**options)
    return plan_query(session, pattern, opts, num_workers=num_workers)
