"""Concurrent runtime: scheduling, thread/process pools, aggregation."""

from .scheduler import (
    ChunkLedger,
    LeaseBoard,
    ProcessCursor,
    TaskScheduler,
    static_slices,
    weighted_boundaries,
)
from .aggregation import AggregatorThread
from .guards import (
    CostEstimate,
    admit,
    cap_workers,
    estimate_cost,
    resolve_threshold,
)
from .planner import QueryPlan, apply_plan, explain, plan_query, plan_workload
from .parallel import (
    FAULT_ENV,
    MAX_CHUNK_RETRIES,
    ParallelResult,
    parallel_match,
    process_count,
    process_count_many,
)
from .pool import DEFAULT_POOL_WORKERS, QueryPool
from .termination import (
    stop_after_n_matches,
    stop_when_aggregate,
    DeadlineControl,
)

__all__ = [
    "ChunkLedger",
    "LeaseBoard",
    "ProcessCursor",
    "TaskScheduler",
    "static_slices",
    "weighted_boundaries",
    "AggregatorThread",
    "CostEstimate",
    "admit",
    "cap_workers",
    "estimate_cost",
    "resolve_threshold",
    "QueryPlan",
    "apply_plan",
    "explain",
    "plan_query",
    "plan_workload",
    "FAULT_ENV",
    "MAX_CHUNK_RETRIES",
    "ParallelResult",
    "parallel_match",
    "process_count",
    "process_count_many",
    "stop_after_n_matches",
    "stop_when_aggregate",
    "DeadlineControl",
    "DEFAULT_POOL_WORKERS",
    "QueryPool",
]
