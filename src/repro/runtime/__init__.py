"""Concurrent runtime: scheduling, thread/process pools, aggregation."""

from .scheduler import (
    ChunkLedger,
    ProcessCursor,
    TaskScheduler,
    static_slices,
    weighted_boundaries,
)
from .aggregation import AggregatorThread
from .parallel import (
    ParallelResult,
    parallel_match,
    process_count,
    process_count_many,
)
from .termination import (
    stop_after_n_matches,
    stop_when_aggregate,
    DeadlineControl,
)

__all__ = [
    "ChunkLedger",
    "ProcessCursor",
    "TaskScheduler",
    "static_slices",
    "weighted_boundaries",
    "AggregatorThread",
    "ParallelResult",
    "parallel_match",
    "process_count",
    "process_count_many",
    "stop_after_n_matches",
    "stop_when_aggregate",
    "DeadlineControl",
]
