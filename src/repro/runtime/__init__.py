"""Concurrent runtime: scheduling, thread/process pools, aggregation."""

from .scheduler import TaskScheduler
from .aggregation import AggregatorThread
from .parallel import ParallelResult, parallel_match, process_count
from .termination import (
    stop_after_n_matches,
    stop_when_aggregate,
    DeadlineControl,
)

__all__ = [
    "TaskScheduler",
    "AggregatorThread",
    "ParallelResult",
    "parallel_match",
    "process_count",
    "stop_after_n_matches",
    "stop_when_aggregate",
    "DeadlineControl",
]
