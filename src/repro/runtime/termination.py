"""Early-termination helpers (§5.3) layered on ExplorationControl.

The core :class:`~repro.core.callbacks.ExplorationControl` is a bare stop
token; this module adds the common monitoring patterns: stop after N
matches, stop when an aggregate crosses a threshold, stop on a deadline.

:class:`~repro.core.callbacks.Budget` (re-exported here) is the
declarative face of the same family: instead of wiring a control +
callback by hand, a budget on
:class:`~repro.core.session.ExecOptions` has the engines themselves
poll deadlines and work caps between frontier chunks, raising
:class:`~repro.errors.BudgetExceededError` with a structured partial.
Use a control for *exact* thresholds observed per match; use a budget
for cooperative chunk-granular limits that work on every engine tier.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..core.callbacks import Aggregator, Budget, BudgetMeter, ExplorationControl, Match

__all__ = [
    "stop_after_n_matches",
    "stop_when_aggregate",
    "DeadlineControl",
    "Budget",
    "BudgetMeter",
]


def stop_after_n_matches(
    control: ExplorationControl, n: int, inner: Callable[[Match], None] | None = None
) -> Callable[[Match], None]:
    """Wrap a callback so exploration stops after ``n`` matches."""
    state = {"count": 0}

    def wrapped(m: Match) -> None:
        if inner is not None:
            inner(m)
        state["count"] += 1
        if state["count"] >= n:
            control.stop()

    return wrapped


def stop_when_aggregate(
    control: ExplorationControl,
    key: Any,
    predicate: Callable[[Any], bool],
) -> Callable[[Aggregator], None]:
    """Build an ``on_update`` hook stopping when an aggregate satisfies a
    predicate — the monitoring half of Fig 4b's countAndCheck."""

    def on_update(aggregator: Aggregator) -> None:
        value = aggregator.get(key)
        if value is not None and predicate(value):
            control.stop()

    return on_update


class DeadlineControl(ExplorationControl):
    """Control that also reports stopped once a wall-clock deadline passes.

    Models the paper's five-hour execution cap for long-running baseline
    comparisons without needing signal handling.
    """

    __slots__ = ("_deadline",)

    def __init__(self, seconds: float):
        super().__init__()
        self._deadline = time.perf_counter() + seconds

    @property
    def stopped(self) -> bool:  # type: ignore[override]
        if time.perf_counter() >= self._deadline:
            return True
        return super().stopped
