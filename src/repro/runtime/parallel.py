"""Concurrent matching runtime: thread pool + process pool (§5, Fig 12).

``parallel_match`` reproduces Peregrine's architecture faithfully: worker
threads pull frontier chunks from a shared atomic-counter scheduler, run
the engine with thread-local aggregators, and honor a shared
early-termination control.  When a run qualifies (numpy present) the
workers drive the frontier-batched engine over partitions of the level-0
frontier — numpy kernels release the GIL, so the thread pool gets real
parallelism on the hot loop, and each worker's engine polls the shared
control between frontier blocks and per emitted match; runs that need
stats or stage timers stay on the reference interpreter, where CPython's
GIL serializes the list operations.
Process-level scaling is ``process_count`` — a process pool that slices
the level-0 frontier across workers, shares the CSR adjacency arrays of
the accelerated view with every worker (fork-inherited copy-on-write
pages or ``multiprocessing.shared_memory`` segments — never per-worker
graph pickling), and sums counts — which the Figure 12 scalability
benchmark uses.

Both entry points accept a :class:`~repro.core.session.MiningSession` in
place of the graph: the runtime then reuses the session's degree
ordering, id translation, CSR view and plan cache instead of re-deriving
them per call (plain graphs resolve to their shared default session).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import MatchingError
from ..core.callbacks import Aggregator, ExplorationControl, Match
from ..core.engine import EngineStats, run_tasks
from ..core.plan import ExplorationPlan, generate_plan
from ..core.session import (
    MiningSession,
    accel_preferred,
    as_session,
    batch_preferred,
)
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .aggregation import AggregatorThread
from .scheduler import TaskScheduler

__all__ = ["ParallelResult", "parallel_match", "process_count"]


@dataclass
class ParallelResult:
    """Outcome of a ``parallel_match`` run.

    ``engine`` records which engine the workers drove
    (``"reference"`` or ``"accel-batch"``); engine stats are a
    reference-engine feature, so ``stats`` counters are zero for
    vectorized runs.
    """

    matches: int
    num_threads: int
    stats: EngineStats
    aggregates: dict = field(default_factory=dict)
    per_thread_matches: list[int] = field(default_factory=list)
    per_thread_cpu: list[float] = field(default_factory=list)
    engine: str = "reference"

    def load_imbalance(self) -> float:
        """Max-minus-min share of matches across threads (0 = perfect).

        Match counts are a *work placement* metric: hub tasks carry most
        matches, so skew here is expected.  The paper's §6.7 balance claim
        is about finish times — see :meth:`time_imbalance`.
        """
        if not self.per_thread_matches or self.matches == 0:
            return 0.0
        hi = max(self.per_thread_matches)
        lo = min(self.per_thread_matches)
        return (hi - lo) / self.matches

    def time_imbalance(self) -> float:
        """Relative gap between the busiest and idlest thread's CPU time.

        The paper reports a <=71 ms finish-time gap across threads; this
        is the analogous measure for our runtime (per-thread CPU seconds
        via ``time.thread_time``, so GIL wait time is excluded).
        """
        if not self.per_thread_cpu:
            return 0.0
        hi = max(self.per_thread_cpu)
        lo = min(self.per_thread_cpu)
        return 0.0 if hi == 0 else (hi - lo) / hi


def _thread_engine_mode(
    engine: str,
    accel,
    ordered: DataGraph,
    plan,
) -> str:
    """Resolve the thread-pool engine: ``reference`` or ``accel-batch``.

    Mirrors the :mod:`repro.core.session` auto-dispatch, restricted to
    the two engines that make sense under threads: the reference
    interpreter (owns stats) and the frontier-batched engine (numpy
    kernels drop the GIL, so workers overlap).  Both honor a shared
    early-termination control — the batched engine polls it between
    frontier blocks and per emitted match.
    """
    choices = ("auto", "accel-batch", "reference")
    if engine not in choices:
        raise ValueError(f"engine must be one of {choices}, got {engine!r}")
    if engine == "reference":
        return "reference"
    if engine == "accel-batch":
        if accel is None:
            raise MatchingError(
                "engine='accel-batch' under threads requires numpy; "
                "use engine='auto' to fall back"
            )
        return "accel-batch"
    if accel is not None and batch_preferred(ordered, plan):
        return "accel-batch"
    return "reference"


def parallel_match(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    num_threads: int = 4,
    callback: Callable[[Match, Aggregator], None] | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    control: ExplorationControl | None = None,
    chunk_size: int = 64,
    aggregate_interval: float = 0.005,
    on_update: Callable[[Aggregator], None] | None = None,
    engine: str = "auto",
    combine: Callable | None = None,
    global_aggregator: Aggregator | None = None,
) -> ParallelResult:
    """Match a pattern with ``num_threads`` worker threads.

    ``callback(match, local_aggregator)`` runs on the worker thread that
    found the match; values it maps into the local aggregator surface in
    the global aggregate via the asynchronous aggregator thread.
    ``combine`` is the aggregators' reduction function (default:
    addition); because workers fold values in a nondeterministic
    interleaving, it must be order-insensitive (associative and
    commutative) for the aggregates to be deterministic —
    :meth:`repro.core.session.MiningSession.aggregate` routes its
    ``reduce`` through here when threaded.  ``global_aggregator``
    optionally supplies the destination aggregator (it must share
    ``combine``); callers spanning several runs — multi-pattern
    aggregates — pass one so ``on_update`` observes the *cumulative*
    totals rather than each run's private map.

    With ``engine="auto"`` the workers drive the frontier-batched engine
    over partitions of the level-0 frontier whenever the run qualifies
    (numpy importable, graph above the batched crossover): each chunk's
    numpy kernels run with the GIL released, so worker threads overlap on
    the hot loop instead of serializing, and a user ``control`` is polled
    between frontier blocks and per emitted match.  Reference-engine runs
    keep per-thread :class:`EngineStats`; vectorized runs report zero
    stats (see :class:`ParallelResult`).

    ``graph`` may be a :class:`~repro.core.session.MiningSession`, in
    which case its cached ordering, translation and plans are reused.
    """
    session = as_session(graph)
    plan = session.plan_for(
        pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
    )
    ordered = session.ordered
    old_of_new = session.translation
    accel = _accel()
    mode = _thread_engine_mode(engine, accel, ordered, plan)
    if mode == "accel-batch":
        view = session.view
        frontier = accel.frontier_start_order(
            view.labels, view.num_vertices, plan
        )
        scheduler = TaskScheduler(frontier, chunk_size=chunk_size)
    else:
        view = None
        scheduler = TaskScheduler.degree_descending(
            ordered.num_vertices, chunk_size=chunk_size
        )
    shared_control = control if control is not None else ExplorationControl()
    global_agg = (
        global_aggregator
        if global_aggregator is not None
        else Aggregator(combine=combine)
    )
    local_aggs = [Aggregator(combine=combine) for _ in range(num_threads)]
    local_stats = [EngineStats() for _ in range(num_threads)]
    thread_matches = [0] * num_threads
    thread_cpu = [0.0] * num_threads

    def worker(tid: int) -> None:
        local = local_aggs[tid]
        on_match = None
        if callback is not None:
            def on_match(m: Match) -> None:
                translated = tuple(
                    old_of_new[v] if v >= 0 else -1 for v in m.mapping
                )
                callback(Match(m.pattern, translated), local)

        batched = (
            accel.FrontierBatchedEngine(view) if mode == "accel-batch" else None
        )
        total = 0
        cpu_begin = time.thread_time()
        while not shared_control.stopped:
            chunk = scheduler.next_chunk()
            if len(chunk) == 0:
                break
            if batched is not None:
                total += batched.run(
                    plan,
                    start_vertices=chunk,
                    on_match=on_match,
                    count_only=callback is None,
                    control=shared_control,
                )
            else:
                total += run_tasks(
                    ordered,
                    plan,
                    start_vertices=chunk,
                    on_match=on_match,
                    control=shared_control,
                    stats=local_stats[tid],
                    count_only=callback is None,
                )
        thread_matches[tid] = total
        thread_cpu[tid] = time.thread_time() - cpu_begin

    threads = [
        threading.Thread(target=worker, args=(tid,), name=f"matcher-{tid}")
        for tid in range(num_threads)
    ]
    agg_thread = AggregatorThread(
        global_agg, local_aggs, interval=aggregate_interval, on_update=on_update
    )
    agg_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    agg_thread.stop()

    merged = EngineStats()
    for s in local_stats:
        merged.merge(s)
    return ParallelResult(
        matches=sum(thread_matches),
        num_threads=num_threads,
        stats=merged,
        aggregates=global_agg.result(),
        per_thread_matches=thread_matches,
        per_thread_cpu=thread_cpu,
        engine=mode,
    )


# ----------------------------------------------------------------------
# Process-based scaling (Figure 12): real parallelism for the speedup
# curve.  The CSR adjacency arrays of the accelerated view are shared
# with workers instead of pickling per-worker graph copies:
#
# * ``share_mode="fork"`` (default where fork exists) publishes the view
#   and plan in a module global before the pool forks — children inherit
#   the numpy buffers copy-on-write, so worker startup moves zero graph
#   bytes no matter how many processes run;
# * ``share_mode="shm"`` copies the CSR buffers into
#   ``multiprocessing.shared_memory`` segments once and has each worker
#   re-wrap them as arrays — one graph copy total, works under any start
#   method;
# * ``share_mode="pickle"`` is the legacy per-worker adjacency pickling
#   (kept as the numpy-free fallback; it drives the reference engine).
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _accel():
    """The accel module, or ``None`` when numpy is unavailable."""
    try:
        from ..core import accel
    except ImportError:  # pragma: no cover - exercised only without numpy
        return None
    return accel


def _pattern_from_signature(signature) -> Pattern:
    num_vertices, edges, anti_edges, label_items = signature
    return Pattern(
        num_vertices=num_vertices,
        edges=edges,
        anti_edges=anti_edges,
        labels=dict(label_items),
    )


def _init_worker(adjacency, labels, signature, edge_induced, symmetry_breaking):
    """Legacy pickling initializer (numpy-free fallback)."""
    _WORKER_STATE["graph"] = DataGraph(adjacency, labels, validate=False)
    _WORKER_STATE["plan"] = generate_plan(
        _pattern_from_signature(signature),
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
    )


def _count_slice(args: tuple[int, int]) -> int:
    offset, stride = args
    graph = _WORKER_STATE["graph"]
    plan = _WORKER_STATE["plan"]
    starts = range(graph.num_vertices - 1 - offset, -1, -stride)
    return run_tasks(graph, plan, start_vertices=starts, count_only=True)


def _fork_init(view, graph, plan):
    """Fork-pool initializer: state arrives fork-inherited, not pickled.

    Under the fork start method ``initargs`` are plain references the
    child inherits copy-on-write — nothing is serialized — and binding
    them in the *child's* ``_WORKER_STATE`` keeps concurrent
    ``process_count`` calls in the parent from clobbering each other
    through a shared module global.
    """
    _WORKER_STATE["view"] = view
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["plan"] = plan


def _accel_count_slice(args: tuple[int, int]) -> int:
    """Strided accelerated count over the shared CSR view."""
    offset, stride = args
    view = _WORKER_STATE["view"]
    plan = _WORKER_STATE["plan"]
    engine = _accel().AcceleratedEngine(view)
    starts = range(view.num_vertices - 1 - offset, -1, -stride)
    return engine.run(plan, start_vertices=starts, count_only=True)


def _batch_count_slice(args: tuple[int, int]) -> int:
    """Frontier-batched count over a strided slice of the level-0 frontier.

    Workers slice the *frontier* (hub-first, label-filtered live tasks)
    rather than raw vertex-id ranges: every worker gets an interleaved
    mix of hub and leaf tasks, and label-pruned vertices never skew the
    partition — better load balance than start-vertex ranges when labels
    (or degree skew) concentrate the work.
    """
    offset, stride = args
    view = _WORKER_STATE["view"]
    plan = _WORKER_STATE["plan"]
    accel = _accel()
    frontier = accel.frontier_start_order(view.labels, view.num_vertices, plan)
    return accel.FrontierBatchedEngine(view).run(
        plan, start_vertices=frontier[offset::stride], count_only=True
    )


def _shm_init(segment_meta, signature, edge_induced, symmetry_breaking, vectorized):
    """Re-wrap shared-memory CSR segments as a view (no graph pickling)."""
    import numpy as np
    from multiprocessing import shared_memory

    arrays = {}
    segments = []
    for key, (name, length) in segment_meta.items():
        if name is None:
            arrays[key] = None
            continue
        # Pool children share the parent's resource-tracker process, so
        # attaching re-registers the same name as a no-op; the parent
        # owns the segment lifetime and unlinks it once.
        seg = shared_memory.SharedMemory(name=name)
        segments.append(seg)
        arrays[key] = np.ndarray((length,), dtype=np.int64, buffer=seg.buf)
    view = _accel().AcceleratedGraphView.from_csr(
        arrays["flat"], arrays["offsets"], arrays["labels"]
    )
    _WORKER_STATE["view"] = view
    _WORKER_STATE["segments"] = segments  # keep buffers alive
    _WORKER_STATE["plan"] = generate_plan(
        _pattern_from_signature(signature),
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
    )
    if not vectorized:
        # Reference engine in this worker: materialize adjacency lists
        # from the shared CSR buffers (still no pickling).
        flat, offsets = arrays["flat"], arrays["offsets"]
        adjacency = [
            flat[offsets[v]: offsets[v + 1]].tolist()
            for v in range(view.num_vertices)
        ]
        labels = None if arrays["labels"] is None else arrays["labels"].tolist()
        _WORKER_STATE["graph"] = DataGraph(adjacency, labels, validate=False)


def _shm_segments(view):
    """Copy a view's CSR buffers into named shared-memory segments."""
    import numpy as np
    from multiprocessing import shared_memory

    flat, offsets, labels = view.csr()
    segments = []
    meta = {}
    for key, arr in (("flat", flat), ("offsets", offsets), ("labels", labels)):
        if arr is None:
            meta[key] = (None, 0)
            continue
        seg = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        seg_arr = np.ndarray((arr.size,), dtype=arr.dtype, buffer=seg.buf)
        seg_arr[:] = arr
        segments.append(seg)
        meta[key] = (seg.name, int(arr.size))
    return segments, meta


def process_count(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    num_processes: int = 2,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    share_mode: str | None = None,
) -> int:
    """Count matches with a process pool (true parallel speedup).

    Vectorized workers slice the level-0 *frontier* (hub-first,
    label-filtered start tasks) stride-wise, so every process gets an
    interleaved mix of hub and leaf tasks and label-pruned vertices never
    skew the partition — the same load-balancing intuition as §5.2,
    applied to live tasks instead of raw id ranges.  The graph reaches
    workers via shared CSR arrays (see the ``share_mode`` modes above),
    so scaling ``num_processes`` does not multiply graph copies or
    pickling time.  A :class:`~repro.core.session.MiningSession` may be
    passed in place of the graph to reuse its cached ordering and plans.
    """
    session = as_session(graph)
    ordered = session.ordered
    accel = _accel()
    has_fork = "fork" in multiprocessing.get_all_start_methods()
    if share_mode is None:
        if accel is None:
            share_mode = "pickle"
        elif has_fork:
            share_mode = "fork"
        else:  # pragma: no cover - non-posix platforms
            share_mode = "shm"
    if share_mode not in ("fork", "shm", "pickle"):
        raise ValueError(f"unknown share_mode {share_mode!r}")
    if share_mode in ("fork", "shm") and accel is None:
        raise RuntimeError(f"share_mode={share_mode!r} requires numpy")

    plan = session.plan_for(
        pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
    )
    # Per-worker engine choice mirrors the session auto-dispatch tiers:
    # frontier-batched in its (wide) winning regime, per-match vectorized
    # in the dense multi-core regime, reference interpreter otherwise.
    # The pickle share mode has no CSR view to hand workers, so it always
    # drives the reference engine.
    use_batch = (
        accel is not None
        and share_mode != "pickle"
        and batch_preferred(ordered, plan)
    )
    use_accel = (
        not use_batch
        and accel is not None
        and share_mode != "pickle"
        and accel_preferred(ordered, plan)
    )
    if num_processes <= 1:
        if use_batch:
            return accel.FrontierBatchedEngine(session.view).run(
                plan, count_only=True
            )
        if use_accel:
            return accel.AcceleratedEngine(session.view).run(
                plan, count_only=True
            )
        return run_tasks(ordered, plan, count_only=True)

    slices = [(i, num_processes) for i in range(num_processes)]
    if use_batch:
        slice_fn = _batch_count_slice
    elif use_accel:
        slice_fn = _accel_count_slice
    else:
        slice_fn = _count_slice

    if share_mode == "fork":
        ctx = multiprocessing.get_context("fork")
        # The CSR view is only worth building (and caching on the graph)
        # when the workers will actually run a vectorized engine.
        view = session.view if (use_batch or use_accel) else None
        with ctx.Pool(
            processes=num_processes,
            initializer=_fork_init,
            initargs=(view, ordered, plan),
        ) as pool:
            counts = pool.map(slice_fn, slices)
        return sum(counts)

    ctx = multiprocessing.get_context("fork" if has_fork else "spawn")

    if share_mode == "shm":
        view = session.view
        segments, meta = _shm_segments(view)
        try:
            init_args = (
                meta,
                pattern.signature(),
                edge_induced,
                symmetry_breaking,
                use_batch or use_accel,
            )
            with ctx.Pool(
                processes=num_processes, initializer=_shm_init, initargs=init_args
            ) as pool:
                counts = pool.map(slice_fn, slices)
        finally:
            for seg in segments:
                seg.close()
                seg.unlink()
        return sum(counts)

    adjacency = [ordered.neighbors(v) for v in ordered.vertices()]
    init_args = (
        adjacency,
        ordered.labels(),
        pattern.signature(),
        edge_induced,
        symmetry_breaking,
    )
    with ctx.Pool(
        processes=num_processes, initializer=_init_worker, initargs=init_args
    ) as pool:
        counts = pool.map(_count_slice, slices)
    return sum(counts)
