"""Concurrent matching runtime: thread pool + process pool (§5, Fig 12).

``parallel_match`` reproduces Peregrine's architecture faithfully: worker
threads pull degree-weighted frontier chunks from a shared atomic-counter
scheduler, run the engine with thread-local aggregators, and honor a
shared early-termination control.  When a run qualifies (numpy present)
the workers drive the frontier-batched engine over chunks of the level-0
frontier — numpy kernels release the GIL, so the thread pool gets real
parallelism on the hot loop, and each worker's engine polls the shared
control between frontier blocks and per emitted match; runs that need
stats or stage timers stay on the reference interpreter, where CPython's
GIL serializes the list operations.

Process-level scaling is ``process_count`` — a process pool that shares
the CSR adjacency arrays of the accelerated view with every worker
(fork-inherited copy-on-write pages or ``multiprocessing.shared_memory``
segments — never per-worker graph pickling) and sums counts — which the
Figure 12 scalability benchmark uses.  ``process_count_many`` is its
multi-pattern overload: whole fused groups (motif censuses, FSM rounds)
run their shared frontier walk chunk-by-chunk across processes.

**Work placement** is one layer, :mod:`repro.runtime.scheduler`, shared
by threads and processes: the frontier is cut into degree-weighted
chunks (:class:`~repro.runtime.scheduler.ChunkLedger`, same closing rule
as the engines' :func:`~repro.core.accel.bounded_slices`) and workers
*pull* chunk indices from a shared cursor until the queue drains —
``threading.Lock`` under threads, a ``multiprocessing.Value`` under
processes.  This dynamic schedule (``schedule="dynamic"``, the default)
absorbs stragglers on skewed graphs: whoever finishes early keeps
pulling, so one mega-hub task never holds the whole run the way a fixed
partition does.  ``schedule="static"`` keeps the historical up-front
stride slicing as the ablation baseline (``benchmarks/bench_parallel.py``
measures the gap; ``chunk_hint`` tunes chunk granularity).

Both entry points accept a :class:`~repro.core.session.MiningSession` in
place of the graph: the runtime then reuses the session's degree
ordering, id translation, CSR view and plan cache instead of re-deriving
them per call (plain graphs resolve to their shared default session).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import (
    MatchingError,
    PartialResult,
    QueryCancelledError,
    WorkerCrashError,
)
from ..core.callbacks import Aggregator, ExplorationControl, Match
from ..core.engine import EngineStats, run_tasks
from ..core.plan import generate_plan
from ..core.session import (
    MiningSession,
    MultiPatternPlan,
    accel_preferred,
    as_session,
    batch_preferred,
    group_start_vertices,
)
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .aggregation import AggregatorThread
from .scheduler import (
    ChunkLedger,
    LeaseBoard,
    ProcessCursor,
    TaskScheduler,
    static_slices,
)

__all__ = [
    "ParallelResult",
    "parallel_match",
    "process_count",
    "process_count_many",
    "FAULT_ENV",
    "MAX_CHUNK_RETRIES",
    "DEFAULT_NUM_THREADS",
    "DEFAULT_NUM_PROCESSES",
]

_SCHEDULE_CHOICES = ("dynamic", "static")

# Crash-tolerance knobs.  A chunk whose worker dies is requeued up to
# MAX_CHUNK_RETRIES times before the run gives up with WorkerCrashError
# (a chunk that kills every worker that touches it is a poison pill, not
# a transient crash).  FAULT_ENV is the deterministic fault-injection
# knob: "worker:chunk" (either side may be "*") makes the matching
# worker exit hard — os._exit, no cleanup, exactly like an OOM kill —
# immediately after leasing the matching chunk.
FAULT_ENV = "REPRO_FAULT_WORKER_DIE"
MAX_CHUNK_RETRIES = 2

# Legacy fixed pool sizes, used when the caller passes ``None`` without
# auto planning.  Under ``plan="auto"`` a ``None`` pool size instead
# hands sizing to the planner: the probe's work-volume estimate picks
# the worker count out of a machine-sized budget (``os.cpu_count()``).
DEFAULT_NUM_THREADS = 4
DEFAULT_NUM_PROCESSES = 2


def _resolve_pool_size(requested, plan_mode, default):
    """Planner-sized pools: ``None`` defers to the plan (PR 10).

    An explicit integer always wins.  ``None`` under ``plan="auto"``
    offers the machine's core count as the budget — the planner then
    *sizes* the pool from measured work volume instead of merely capping
    the caller's guess.  ``None`` under ``plan="fixed"`` keeps the
    legacy default.
    """
    if requested is not None:
        return requested
    if plan_mode == "auto":
        return os.cpu_count() or default
    return default


def _resolve_plan_mode(session, plan):
    """Fill the dispatch-policy knob from session defaults; validate.

    ``None`` inherits the session's ``ExecOptions.planner`` default;
    ``"fixed"`` keeps the global thresholds, ``"auto"`` plans the run
    from the probe walk (:mod:`repro.runtime.planner`).
    """
    from .planner import PLANNER_CHOICES

    if plan is None:
        plan = session.defaults.planner
    if plan not in PLANNER_CHOICES:
        raise ValueError(
            f"plan must be one of {PLANNER_CHOICES}, got {plan!r}"
        )
    return plan


def _resolve_scheduling(session, schedule, chunk_hint):
    """Fill ``schedule``/``chunk_hint`` from session defaults; validate."""
    defaults = session.defaults
    if schedule is None:
        schedule = defaults.schedule
    if chunk_hint is None:
        chunk_hint = defaults.chunk_hint
    if schedule not in _SCHEDULE_CHOICES:
        raise ValueError(
            f"schedule must be one of {_SCHEDULE_CHOICES}, got {schedule!r}"
        )
    if chunk_hint is not None and chunk_hint < 1:
        raise ValueError(f"chunk_hint must be >= 1, got {chunk_hint}")
    return schedule, chunk_hint


@dataclass
class ParallelResult:
    """Outcome of a ``parallel_match`` run.

    ``engine`` records which engine the workers drove
    (``"reference"`` or ``"accel-batch"``); engine stats are a
    reference-engine feature, so ``stats`` counters are zero for
    vectorized runs.  ``schedule`` records the work placement used
    (``"dynamic"`` chunk pulling vs. ``"static"`` stride slices).
    """

    matches: int
    num_threads: int
    stats: EngineStats
    aggregates: dict = field(default_factory=dict)
    per_thread_matches: list[int] = field(default_factory=list)
    per_thread_cpu: list[float] = field(default_factory=list)
    engine: str = "reference"
    schedule: str = "dynamic"

    def load_imbalance(self) -> float:
        """Max-minus-min share of matches across threads (0 = perfect).

        Match counts are a *work placement* metric: hub tasks carry most
        matches, so skew here is expected.  The paper's §6.7 balance claim
        is about finish times — see :meth:`time_imbalance`.
        """
        if not self.per_thread_matches or self.matches == 0:
            return 0.0
        hi = max(self.per_thread_matches)
        lo = min(self.per_thread_matches)
        return (hi - lo) / self.matches

    def time_imbalance(self) -> float:
        """Relative gap between the busiest and idlest thread's CPU time.

        The paper reports a <=71 ms finish-time gap across threads; this
        is the analogous measure for our runtime (per-thread CPU seconds
        via ``time.thread_time``, so GIL wait time is excluded).
        """
        if not self.per_thread_cpu:
            return 0.0
        hi = max(self.per_thread_cpu)
        lo = min(self.per_thread_cpu)
        return 0.0 if hi == 0 else (hi - lo) / hi


def _thread_engine_mode(
    engine: str,
    accel,
    ordered: DataGraph,
    plan,
) -> str:
    """Resolve the thread-pool engine: ``reference`` or ``accel-batch``.

    Mirrors the :mod:`repro.core.session` auto-dispatch, restricted to
    the two engines that make sense under threads: the reference
    interpreter (owns stats) and the frontier-batched engine (numpy
    kernels drop the GIL, so workers overlap).  Both honor a shared
    early-termination control — the batched engine polls it between
    frontier blocks and per emitted match.
    """
    choices = ("auto", "accel-batch", "reference")
    if engine not in choices:
        raise ValueError(f"engine must be one of {choices}, got {engine!r}")
    if engine == "reference":
        return "reference"
    if engine == "accel-batch":
        if accel is None:
            raise MatchingError(
                "engine='accel-batch' under threads requires numpy; "
                "use engine='auto' to fall back"
            )
        return "accel-batch"
    if accel is not None and batch_preferred(ordered, plan):
        return "accel-batch"
    return "reference"


def parallel_match(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    num_threads: int | None = 4,
    callback: Callable[[Match, Aggregator], None] | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    control: ExplorationControl | None = None,
    chunk_size: int | None = None,
    aggregate_interval: float = 0.005,
    on_update: Callable[[Aggregator], None] | None = None,
    engine: str = "auto",
    combine: Callable | None = None,
    global_aggregator: Aggregator | None = None,
    schedule: str | None = None,
    chunk_hint: int | None = None,
    plan: str | None = None,
) -> ParallelResult:
    """Match a pattern with ``num_threads`` worker threads.

    ``num_threads=None`` defers pool sizing: under ``plan="auto"`` the
    planner sizes the pool from the probe's measured work volume (with
    the machine's core count as the budget); under ``plan="fixed"`` the
    legacy default of :data:`DEFAULT_NUM_THREADS` applies.

    ``callback(match, local_aggregator)`` runs on the worker thread that
    found the match; values it maps into the local aggregator surface in
    the global aggregate via the asynchronous aggregator thread.
    ``combine`` is the aggregators' reduction function (default:
    addition); because workers fold values in a nondeterministic
    interleaving, it must be order-insensitive (associative and
    commutative) for the aggregates to be deterministic —
    :meth:`repro.core.session.MiningSession.aggregate` routes its
    ``reduce`` through here when threaded.  ``global_aggregator``
    optionally supplies the destination aggregator (it must share
    ``combine``); callers spanning several runs — multi-pattern
    aggregates — pass one so ``on_update`` observes the *cumulative*
    totals rather than each run's private map.

    With ``engine="auto"`` the workers drive the frontier-batched engine
    over chunks of the level-0 frontier whenever the run qualifies
    (numpy importable, graph above the batched crossover): each chunk's
    numpy kernels run with the GIL released, so worker threads overlap on
    the hot loop instead of serializing, and a user ``control`` is polled
    between frontier blocks and per emitted match.  Reference-engine runs
    keep per-thread :class:`EngineStats`; vectorized runs report zero
    stats (see :class:`ParallelResult`).

    ``schedule``/``chunk_hint`` pick the work placement (see the module
    docstring): ``"dynamic"`` (default) pulls degree-weighted chunks
    from the shared scheduler, ``"static"`` hands each thread one stride
    slice up front.  With no hint, chunks are sized automatically for
    ``num_threads`` (:data:`~repro.runtime.scheduler.CHUNKS_PER_WORKER`
    per thread); ``chunk_size`` is the legacy spelling of the same hint
    (an explicit ``chunk_hint`` beats it, and either explicit value
    beats the session default).  ``None`` values inherit the session's
    :class:`~repro.core.session.ExecOptions` defaults.

    ``graph`` may be a :class:`~repro.core.session.MiningSession`, in
    which case its cached ordering, translation and plans are reused.
    """
    session = as_session(graph)
    # Per-call knobs win over session defaults: an explicit chunk_hint
    # beats the legacy chunk_size spelling, which in turn beats the
    # session's ExecOptions default; only then does auto sizing apply.
    if chunk_hint is None and chunk_size is not None:
        chunk_hint = chunk_size
    plan_mode = _resolve_plan_mode(session, plan)
    num_threads = _resolve_pool_size(num_threads, plan_mode, DEFAULT_NUM_THREADS)
    if plan_mode == "auto":
        # One probe plans the thread run: engine by measured expansion,
        # schedule/chunk by skew, thread count by work volume.  Knobs
        # the caller pinned explicitly stay pinned.
        from . import planner as _planner

        query_plan = _planner.plan_query(
            session,
            pattern,
            session.options(
                edge_induced=edge_induced,
                symmetry_breaking=symmetry_breaking,
                engine=engine,
            ),
            num_workers=num_threads,
        )
        num_threads = query_plan.num_workers
        if schedule is None:
            schedule = query_plan.schedule
        if chunk_hint is None:
            chunk_hint = query_plan.chunk_hint
        if engine == "auto":
            engine = (
                "accel-batch"
                if query_plan.engine == "accel-batch"
                else "reference"
            )
    schedule, chunk_hint = _resolve_scheduling(session, schedule, chunk_hint)
    plan = session.plan_for(
        pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
    )
    ordered = session.ordered
    old_of_new = session.translation
    accel = _accel()
    mode = _thread_engine_mode(engine, accel, ordered, plan)
    view = session.view if mode == "accel-batch" else None
    frontier, weights = _count_frontier(
        session,
        plan,
        "batch" if mode == "accel-batch" else "reference",
        accel,
        need_weights=schedule == "dynamic",
    )
    if schedule == "dynamic":
        scheduler = TaskScheduler(
            frontier,
            chunk_size=chunk_hint,
            weights=weights,
            num_workers=num_threads,
        )
        slices = None
    else:
        scheduler = None
        slices = static_slices(frontier, num_threads)
    shared_control = control if control is not None else ExplorationControl()
    global_agg = (
        global_aggregator
        if global_aggregator is not None
        else Aggregator(combine=combine)
    )
    local_aggs = [Aggregator(combine=combine) for _ in range(num_threads)]
    local_stats = [EngineStats() for _ in range(num_threads)]
    thread_matches = [0] * num_threads
    thread_cpu = [0.0] * num_threads

    def chunks_for(tid: int):
        """This worker's chunk stream under the selected schedule."""
        if slices is not None:
            yield slices[tid]
            return
        while True:
            chunk = scheduler.next_chunk()
            if len(chunk) == 0:
                return
            yield chunk

    def worker(tid: int) -> None:
        local = local_aggs[tid]
        on_match = None
        if callback is not None:
            def on_match(m: Match) -> None:
                translated = tuple(
                    old_of_new[v] if v >= 0 else -1 for v in m.mapping
                )
                callback(Match(m.pattern, translated), local)

        batched = (
            accel.FrontierBatchedEngine(view) if mode == "accel-batch" else None
        )
        total = 0
        cpu_begin = time.thread_time()
        for chunk in chunks_for(tid):
            if shared_control.stopped:
                break
            if batched is not None:
                total += batched.run(
                    plan,
                    start_vertices=chunk,
                    on_match=on_match,
                    count_only=callback is None,
                    control=shared_control,
                )
            else:
                total += run_tasks(
                    ordered,
                    plan,
                    start_vertices=chunk,
                    on_match=on_match,
                    control=shared_control,
                    stats=local_stats[tid],
                    count_only=callback is None,
                )
        thread_matches[tid] = total
        thread_cpu[tid] = time.thread_time() - cpu_begin

    threads = [
        threading.Thread(target=worker, args=(tid,), name=f"matcher-{tid}")
        for tid in range(num_threads)
    ]
    agg_thread = AggregatorThread(
        global_agg, local_aggs, interval=aggregate_interval, on_update=on_update
    )
    agg_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    agg_thread.stop()

    merged = EngineStats()
    for s in local_stats:
        merged.merge(s)
    return ParallelResult(
        matches=sum(thread_matches),
        num_threads=num_threads,
        stats=merged,
        aggregates=global_agg.result(),
        per_thread_matches=thread_matches,
        per_thread_cpu=thread_cpu,
        engine=mode,
        schedule=schedule,
    )


# ----------------------------------------------------------------------
# Process-based scaling (Figure 12): real parallelism for the speedup
# curve.  The CSR adjacency arrays of the accelerated view are shared
# with workers instead of pickling per-worker graph copies:
#
# * ``share_mode="fork"`` (default where fork exists) publishes the view
#   and plan in a module global before the pool forks — children inherit
#   the numpy buffers copy-on-write, so worker startup moves zero graph
#   bytes no matter how many processes run;
# * ``share_mode="shm"`` copies the CSR buffers into
#   ``multiprocessing.shared_memory`` segments once and has each worker
#   re-wrap them as arrays — one graph copy total, works under any start
#   method;
# * ``share_mode="mmap"`` points every worker at an on-disk ``.rgx``
#   store (the graph's own backing file when it is already
#   degree-sorted on disk, otherwise a temporary spill): workers re-open
#   and map the file, so all processes share one set of physical pages
#   through the OS page cache — zero copies, zero shm segments, works
#   under any start method.  shm stays as the ablation and the fallback
#   for graphs that only exist in memory;
# * ``share_mode="pickle"`` is the legacy per-worker adjacency pickling
#   (kept as the numpy-free fallback; it drives the reference engine).
#
# Work placement is orthogonal: ``schedule="dynamic"`` (default) has
# workers pull degree-weighted frontier chunks from a shared
# ``ProcessCursor`` until drained; ``schedule="static"`` keeps the
# legacy up-front stride slices.
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _accel():
    """The accel module, or ``None`` when numpy is unavailable."""
    try:
        from ..core import accel
    except ImportError:  # pragma: no cover - exercised only without numpy
        return None
    return accel


def _pattern_from_signature(signature) -> Pattern:
    num_vertices, edges, anti_edges, label_items = signature
    return Pattern(
        num_vertices=num_vertices,
        edges=edges,
        anti_edges=anti_edges,
        labels=dict(label_items),
    )


def _init_worker(
    adjacency,
    labels,
    signature,
    edge_induced,
    symmetry_breaking,
    ledger=None,
    cursor=None,
):
    """Legacy pickling initializer (numpy-free fallback)."""
    _WORKER_STATE["graph"] = DataGraph(adjacency, labels, validate=False)
    _WORKER_STATE["plan"] = generate_plan(
        _pattern_from_signature(signature),
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
    )
    _WORKER_STATE["mode"] = "reference"
    _WORKER_STATE["ledger"] = ledger
    _WORKER_STATE["cursor"] = cursor


def _count_slice(args: tuple[int, int]) -> int:
    offset, stride = args
    graph = _WORKER_STATE["graph"]
    plan = _WORKER_STATE["plan"]
    starts = range(graph.num_vertices - 1 - offset, -1, -stride)
    return run_tasks(graph, plan, start_vertices=starts, count_only=True)


def _fork_init(view, graph, plan, mode="batch", ledger=None, cursor=None):
    """Fork-pool initializer: state arrives fork-inherited, not pickled.

    Under the fork start method ``initargs`` are plain references the
    child inherits copy-on-write — nothing is serialized — and binding
    them in the *child's* ``_WORKER_STATE`` keeps concurrent
    ``process_count`` calls in the parent from clobbering each other
    through a shared module global.
    """
    _WORKER_STATE["view"] = view
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["plan"] = plan
    _WORKER_STATE["mode"] = mode
    _WORKER_STATE["ledger"] = ledger
    _WORKER_STATE["cursor"] = cursor


def _accel_count_slice(args: tuple[int, int]) -> int:
    """Strided accelerated count over the shared CSR view."""
    offset, stride = args
    view = _WORKER_STATE["view"]
    plan = _WORKER_STATE["plan"]
    engine = _accel().AcceleratedEngine(view)
    starts = range(view.num_vertices - 1 - offset, -1, -stride)
    return engine.run(plan, start_vertices=starts, count_only=True)


def _batch_count_slice(args: tuple[int, int]) -> int:
    """Frontier-batched count over a strided slice of the level-0 frontier.

    Workers slice the *frontier* (hub-first, label-filtered live tasks)
    rather than raw vertex-id ranges: every worker gets an interleaved
    mix of hub and leaf tasks, and label-pruned vertices never skew the
    partition — better load balance than start-vertex ranges when labels
    (or degree skew) concentrate the work.
    """
    offset, stride = args
    view = _WORKER_STATE["view"]
    plan = _WORKER_STATE["plan"]
    accel = _accel()
    frontier = accel.frontier_start_order(view.labels, view.num_vertices, plan)
    return accel.FrontierBatchedEngine(view).run(
        plan, start_vertices=frontier[offset::stride], count_only=True
    )


def _chunk_runner(control=None):
    """One engine instance + chunk-count closure for this worker's mode.

    ``control`` (when given) reaches the engine of every chunk run, so a
    shared cancellation token stops workers *inside* a chunk — between
    frontier blocks or start tasks — not just between chunks.
    """
    mode = _WORKER_STATE["mode"]
    plan = _WORKER_STATE["plan"]
    if mode == "batch":
        engine = _accel().FrontierBatchedEngine(_WORKER_STATE["view"])
        return lambda chunk: engine.run(
            plan, start_vertices=chunk, count_only=True, control=control
        )
    if mode == "accel":
        engine = _accel().AcceleratedEngine(_WORKER_STATE["view"])
        return lambda chunk: engine.run(
            plan, start_vertices=chunk, count_only=True, control=control
        )
    graph = _WORKER_STATE["graph"]
    return lambda chunk: run_tasks(
        graph, plan, start_vertices=chunk, count_only=True, control=control
    )


# ----------------------------------------------------------------------
# Crash-tolerant dynamic draining: chunk leases + requeue rounds.
#
# ``multiprocessing.Pool`` is the wrong substrate for fault tolerance —
# a worker that dies abruptly mid-task leaves ``pool.map`` hung (or, on
# newer CPythons, kills the whole map with no record of which inputs
# finished).  The dynamic schedules therefore run raw ``ctx.Process``
# workers over a :class:`~repro.runtime.scheduler.LeaseBoard`: a worker
# *leases* a chunk before running it and lands the chunk's counts
# atomically with its done-mark, so after every worker exits the parent
# knows exactly which chunks never completed.  Those are requeued into a
# fresh round of workers (bounded by :data:`MAX_CHUNK_RETRIES` per
# chunk); when even respawning fails (fork/spawn returning ``OSError``
# under resource exhaustion) the parent degrades to running the
# remaining chunks in-process.  Exact counts survive any single- or
# multi-worker crash because a chunk's count lands exactly once.
#
# Cancellation rides the same machinery: a shared one-way flag that
# workers poll between chunks and engines poll inside a chunk (via
# :class:`_SharedCancel`), bridged from the caller's
# ``ExplorationControl`` by a parent-side thread.
# ----------------------------------------------------------------------


def _parse_fault(spec: str | None):
    """Parse a ``"worker:chunk"`` fault spec (either side ``"*"``)."""
    if not spec:
        return None
    worker, sep, chunk = spec.partition(":")
    if not sep:
        raise ValueError(
            f"{FAULT_ENV} must be 'worker:chunk' (either side '*'), "
            f"got {spec!r}"
        )
    return (worker.strip(), chunk.strip())


def _fault(worker_id: int, chunk_index: int, spec) -> None:
    """Deterministic fault-injection seam: die hard when the spec matches.

    ``os._exit`` skips every handler and ``finally`` — the closest
    user-space stand-in for an OOM kill or segfault.  Runs right after a
    chunk lease so the death window the requeue protocol must cover
    (leased, not done) is always exercised.
    """
    if spec is None:
        return
    worker, chunk = spec
    if (worker == "*" or worker == str(worker_id)) and (
        chunk == "*" or chunk == str(chunk_index)
    ):
        os._exit(1)


class _SharedCancel:
    """ExplorationControl facade over a shared one-way cancel flag.

    Engines only read ``.stopped``; backing it with a
    ``multiprocessing.Value`` makes one parent-side ``stop()`` visible
    inside every worker's engine loop, so cancellation lands mid-chunk.
    """

    __slots__ = ("_flag",)

    def __init__(self, flag):
        self._flag = flag

    @property
    def stopped(self) -> bool:
        return bool(self._flag.value)

    def stop(self) -> None:
        self._flag.value = 1


def _tolerant_worker(
    worker_id, board, cursor, active, cancel_flag, fault_spec, init, init_args
):
    """One crash-tolerant worker: claim, lease, run, land — repeat.

    ``active`` is this round's list of still-pending chunk indices; the
    cursor claims positions into it, so requeued rounds reuse the same
    protocol over a shrinking list.  A chunk interrupted by cancellation
    is deliberately *not* completed — its count is partial — so the
    parent's partial total only ever sums fully-counted chunks.
    """
    init(*init_args)
    ledger: ChunkLedger = _WORKER_STATE["ledger"]
    run_chunk = _chunk_runner(control=_SharedCancel(cancel_flag))
    while True:
        if cancel_flag.value:
            return
        pos = cursor.claim()
        if pos >= len(active):
            return
        index = active[pos]
        board.lease(index, worker_id)
        _fault(worker_id, index, fault_spec)
        count = run_chunk(ledger.chunk(index))
        if cancel_flag.value:
            return
        board.complete(index, (count,))


def _tolerant_worker_many(
    worker_id, board, cursor, active, cancel_flag, fault_spec, init, init_args
):
    """Multi-pattern tolerant worker: each chunk runs its whole fused group."""
    init(*init_args)
    accel = _accel()
    view = _WORKER_STATE["view"]
    plans = _WORKER_STATE["many_plans"]
    groups = _WORKER_STATE["many_groups"]
    ledgers = _WORKER_STATE["many_ledgers"]
    offsets = _WORKER_STATE["many_offsets"]
    frontier_chunk = _WORKER_STATE["many_frontier_chunk"]
    members_of = [
        [(plans[idx], None, None) for idx in group] for group in groups
    ]
    control = _SharedCancel(cancel_flag)
    while True:
        if cancel_flag.value:
            return
        pos = cursor.claim()
        if pos >= len(active):
            return
        index = active[pos]
        board.lease(index, worker_id)
        _fault(worker_id, index, fault_spec)
        gi = bisect_right(offsets, index) - 1
        chunk = ledgers[gi].chunk(index - offsets[gi])
        counts = accel.fused_run(
            view,
            members_of[gi],
            start_vertices=chunk,
            chunk=frontier_chunk,
            control=control,
        )
        if cancel_flag.value:
            return
        board.complete(index, counts)


def _tolerant_rounds(
    ctx,
    num_workers,
    worker_fn,
    board,
    num_chunks,
    cancel,
    fault_spec,
    partial_fn,
    init,
    init_args,
):
    """Drive lease/requeue rounds until every chunk's count has landed.

    Raises :class:`~repro.errors.WorkerCrashError` when a chunk exhausts
    its retries and :class:`~repro.errors.QueryCancelledError` when
    ``cancel`` fires with chunks outstanding — both carrying
    ``partial_fn(reason, detail)`` as the structured partial.
    """
    cancel_flag = ctx.Value("b", 0)
    pending = list(range(num_chunks))
    retries = [0] * num_chunks
    next_worker = 0
    bridge_stop = threading.Event()
    bridge = None
    if cancel is not None:
        # Callers hand in plain ExplorationControl/DeadlineControl
        # objects, which workers cannot see — this thread bridges the
        # caller-side token into the shared flag the workers poll.
        def poll_cancel():
            while not bridge_stop.is_set():
                if cancel.stopped:
                    cancel_flag.value = 1
                    return
                bridge_stop.wait(0.002)

        bridge = threading.Thread(
            target=poll_cancel, name="cancel-bridge", daemon=True
        )
        bridge.start()
    try:
        while pending:
            if cancel is not None and cancel.stopped:
                cancel_flag.value = 1
            if cancel_flag.value:
                break
            active = pending
            cursor = ProcessCursor(ctx)
            procs = []
            for _ in range(min(num_workers, len(active))):
                worker_id = next_worker
                next_worker += 1
                proc = ctx.Process(
                    target=worker_fn,
                    args=(
                        worker_id, board, cursor, active, cancel_flag,
                        fault_spec, init, init_args,
                    ),
                    name=f"tolerant-{worker_id}",
                )
                try:
                    proc.start()
                except OSError:
                    break
                procs.append(proc)
            if not procs:
                # Respawn failed outright (fd/pid exhaustion): degrade to
                # in-process draining.  Fault injection is disabled here —
                # os._exit in the caller's process is not a recovery.
                worker_fn(
                    next_worker, board, cursor, active, cancel_flag,
                    None, init, init_args,
                )
                next_worker += 1
            else:
                for proc in procs:
                    proc.join()
            remaining = board.pending(active)
            if cancel_flag.value:
                pending = remaining
                break
            failed = []
            for index in remaining:
                retries[index] += 1
                if retries[index] > MAX_CHUNK_RETRIES:
                    failed.append(index)
            if failed:
                raise WorkerCrashError(
                    f"{len(failed)} chunk(s) still incomplete after "
                    f"{MAX_CHUNK_RETRIES} requeue(s): workers keep dying "
                    f"on chunk(s) {failed[:8]}",
                    partial_fn(
                        "worker crash",
                        {
                            "failed_chunks": failed,
                            "retries": MAX_CHUNK_RETRIES,
                            "num_chunks": num_chunks,
                        },
                    ),
                )
            pending = remaining
    finally:
        bridge_stop.set()
        if bridge is not None:
            bridge.join()
    if pending:
        raise QueryCancelledError(
            f"query cancelled with {len(pending)} of {num_chunks} "
            f"chunk(s) incomplete",
            partial_fn(
                "cancelled",
                {"pending_chunks": len(pending), "num_chunks": num_chunks},
            ),
        )


def _tolerant_count(ctx, num_workers, init, init_args, ledger, cancel):
    """Crash-tolerant dynamic drain for ``process_count``; exact total."""
    num_chunks = len(ledger)
    if num_chunks == 0:
        return 0
    board = LeaseBoard(ctx, num_chunks)
    fault_spec = _parse_fault(os.environ.get(FAULT_ENV))

    def partial_fn(reason, detail):
        done = board.done_indices(num_chunks)
        return PartialResult(
            sum(board.values(i)[0] for i in done),
            levels_completed=len(done),
            truncated=True,
            reason=reason,
            detail=detail,
        )

    _tolerant_rounds(
        ctx, num_workers, _tolerant_worker, board, num_chunks, cancel,
        fault_spec, partial_fn, init, init_args,
    )
    return sum(board.values(i)[0] for i in range(num_chunks))


def _apply_guard_mode(
    session,
    patterns,
    guard,
    num_processes,
    frontier_chunk,
    edge_induced,
    symmetry_breaking,
):
    """Process-runtime admission guard: probe, then refuse or downgrade.

    Returns the (possibly downgraded) ``(num_processes, frontier_chunk)``
    pair — an explosive estimate under ``guard="downgrade"`` caps the
    worker count (bounding fork-side memory multiplication) and tightens
    the per-engine frontier chunk.  ``guard="refuse"`` raises
    :class:`~repro.errors.QueryRefusedError` on the first pattern
    predicted explosive.
    """
    if guard in (None, "off"):
        return num_processes, frontier_chunk
    from . import guards

    if guard not in guards.GUARD_CHOICES:
        raise ValueError(
            f"guard must be one of {guards.GUARD_CHOICES}, got {guard!r}"
        )
    # Probe through the session cache so admission and planning share
    # one walk per (pattern, flags) — a guarded planned query probes
    # exactly once.
    exec_opts = session.options(
        edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
    )
    seen_signatures: set = set()
    for pattern in patterns:
        signature = pattern.signature()
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        estimate = session._guard_estimate(pattern, exec_opts)
        if not estimate.explosive:
            continue
        if guard == "refuse":
            raise guards.refusal(estimate)
        num_processes = guards.cap_workers(estimate, num_processes)
        frontier_chunk = (
            guards.DOWNGRADE_FRONTIER_CHUNK
            if frontier_chunk is None
            else min(frontier_chunk, guards.DOWNGRADE_FRONTIER_CHUNK)
        )
    return num_processes, frontier_chunk


def _tolerant_count_many(
    ctx, num_workers, init, init_args, groups, ledgers, offsets, cancel,
    num_patterns,
):
    """Crash-tolerant dynamic drain for ``process_count_many``.

    Returns exact per-pattern totals; chunk indices are global across
    groups (``offsets`` maps an index to its group) and each chunk's
    count slots hold one value per fused-group member.
    """
    num_chunks = offsets[-1]
    if num_chunks == 0:
        return [0] * num_patterns
    slot_offsets = [0]
    for gi, ledger in enumerate(ledgers):
        width = len(groups[gi])
        for _ in range(len(ledger)):
            slot_offsets.append(slot_offsets[-1] + width)
    board = LeaseBoard(ctx, num_chunks, slot_offsets)
    fault_spec = _parse_fault(os.environ.get(FAULT_ENV))

    def totals_of(indices):
        totals = [0] * num_patterns
        for index in indices:
            gi = bisect_right(offsets, index) - 1
            values = board.values(index)
            for pos, pattern_index in enumerate(groups[gi]):
                totals[pattern_index] += values[pos]
        return totals

    def partial_fn(reason, detail):
        done = board.done_indices(num_chunks)
        totals = totals_of(done)
        merged = dict(detail)
        merged["totals"] = totals
        return PartialResult(
            sum(totals),
            levels_completed=len(done),
            truncated=True,
            reason=reason,
            detail=merged,
        )

    _tolerant_rounds(
        ctx, num_workers, _tolerant_worker_many, board, num_chunks, cancel,
        fault_spec, partial_fn, init, init_args,
    )
    return totals_of(range(num_chunks))


def _shm_init(
    segment_meta,
    signature,
    edge_induced,
    symmetry_breaking,
    vectorized,
    mode="batch",
    ledger=None,
    cursor=None,
):
    """Re-wrap shared-memory CSR segments as a view (no graph pickling)."""
    import numpy as np
    from multiprocessing import shared_memory

    arrays = {}
    segments = []
    for key, (name, length) in segment_meta.items():
        if name is None:
            arrays[key] = None
            continue
        # Pool children share the parent's resource-tracker process, so
        # attaching re-registers the same name as a no-op; the parent
        # owns the segment lifetime and unlinks it once.
        seg = shared_memory.SharedMemory(name=name)
        segments.append(seg)
        arrays[key] = np.ndarray((length,), dtype=np.int64, buffer=seg.buf)
    view = _accel().AcceleratedGraphView.from_csr(
        arrays["flat"], arrays["offsets"], arrays["labels"]
    )
    _WORKER_STATE["view"] = view
    _WORKER_STATE["segments"] = segments  # keep buffers alive
    _WORKER_STATE["plan"] = generate_plan(
        _pattern_from_signature(signature),
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
    )
    _WORKER_STATE["mode"] = mode
    _WORKER_STATE["ledger"] = ledger
    _WORKER_STATE["cursor"] = cursor
    if not vectorized:
        # Reference engine in this worker: materialize adjacency lists
        # from the shared CSR buffers (still no pickling).
        flat, offsets = arrays["flat"], arrays["offsets"]
        adjacency = [
            flat[offsets[v]: offsets[v + 1]].tolist()
            for v in range(view.num_vertices)
        ]
        labels = None if arrays["labels"] is None else arrays["labels"].tolist()
        _WORKER_STATE["graph"] = DataGraph(adjacency, labels, validate=False)


def _shm_segments(view):
    """Copy a view's CSR buffers into named shared-memory segments."""
    import numpy as np
    from multiprocessing import shared_memory

    flat, offsets, labels = view.csr()
    segments = []
    meta = {}
    for key, arr in (("flat", flat), ("offsets", offsets), ("labels", labels)):
        if arr is None:
            meta[key] = (None, 0)
            continue
        seg = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        seg_arr = np.ndarray((arr.size,), dtype=arr.dtype, buffer=seg.buf)
        seg_arr[:] = arr
        segments.append(seg)
        meta[key] = (seg.name, int(arr.size))
    return segments, meta


def _mmap_store(session):
    """An on-disk degree-ordered ``.rgx`` path for the session's graph.

    Returns ``(path, is_temp)``.  When the session's ordered graph is
    already array-backed by an on-disk store (a converted ``.rgx`` file
    whose ids are degree-sorted) the workers re-open that file directly
    and nothing is written.  Anything else — generated graphs, unsorted
    stores — is spilled to a temporary ``.rgx`` once; the caller must
    unlink it (workers keep their mappings alive across the unlink, so
    cleanup in a ``finally`` is safe even mid-run).
    """
    import tempfile

    from ..graph.binary_io import save_mmap

    ordered = session.ordered
    store = ordered.backing_store
    if store is not None and ordered.is_degree_ordered():
        return store.path, False
    fd, path = tempfile.mkstemp(prefix="repro-graph-", suffix=".rgx")
    os.close(fd)
    save_mmap(ordered, path)
    return path, True


def _mmap_init(
    path,
    signature,
    edge_induced,
    symmetry_breaking,
    mode="batch",
    ledger=None,
    cursor=None,
):
    """Re-open the on-disk ``.rgx`` store in this worker.

    Nothing is copied or pickled: the worker maps the same file the
    parent resolved, so every process shares one set of physical pages
    through the OS page cache.  The view and the (array-backed) graph
    both alias the mapped sections, so this works for every engine mode.
    """
    from ..graph.binary_io import GraphStore

    store = GraphStore(path)
    graph = store.graph()
    _WORKER_STATE["store"] = store  # keep the mappings alive
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["view"] = _accel().shared_view(graph)
    _WORKER_STATE["plan"] = generate_plan(
        _pattern_from_signature(signature),
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
    )
    _WORKER_STATE["mode"] = mode
    _WORKER_STATE["ledger"] = ledger
    _WORKER_STATE["cursor"] = cursor


def _count_frontier(session, plan, mode, accel, need_weights=True):
    """The level-0 frontier (and per-start weights) for one engine mode.

    Vectorized modes slice the hub-first, label-filtered frontier of the
    shared CSR view; the reference engine does its own per-start label
    checks, so its frontier is the plain hub-first id order.  Weights are
    ``degree + 1`` — the same rule the fused runner uses to bound slice
    work — so chunk extents track expected per-start cost.  Static
    schedules never read the weights, so callers skip the (reference
    mode: O(n) Python) derivation with ``need_weights=False``.
    """
    if mode in ("batch", "accel"):
        view = session.view
        frontier = accel.frontier_start_order(
            view.labels, view.num_vertices, plan
        )
        weights = view.degrees()[frontier] + 1 if need_weights else None
        return frontier, weights
    ordered = session.ordered
    frontier = range(ordered.num_vertices - 1, -1, -1)
    weights = (
        [ordered.degree(v) + 1 for v in frontier] if need_weights else None
    )
    return frontier, weights


def process_count(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    num_processes: int | None = 2,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    share_mode: str | None = None,
    schedule: str | None = None,
    chunk_hint: int | None = None,
    cancel: ExplorationControl | None = None,
    guard: str | None = None,
    plan: str | None = None,
) -> int:
    """Count matches with a process pool (true parallel speedup).

    ``num_processes=None`` defers pool sizing: under ``plan="auto"`` the
    planner sizes the pool from measured work volume (budgeted at the
    machine's core count); under ``plan="fixed"`` the legacy default of
    :data:`DEFAULT_NUM_PROCESSES` applies.

    Workers consume the level-0 *frontier* (hub-first, label-filtered
    start tasks).  Under ``schedule="dynamic"`` (default) the frontier
    is cut into degree-weighted chunks that workers pull from a shared
    cursor until drained — the work-stealing schedule that absorbs
    stragglers on skewed (power-law) graphs, where a fixed partition
    leaves one process holding the heaviest hub *and* its full share of
    everything else.  ``schedule="static"`` keeps the legacy up-front
    stride slices (the §5.2 interleaving without stealing), and
    ``chunk_hint`` tunes dynamic chunk granularity (target starts per
    chunk on a uniform frontier; default sizes chunks automatically).
    ``None`` values inherit the session's
    :class:`~repro.core.session.ExecOptions` defaults.

    The graph reaches workers via shared CSR arrays (see the
    ``share_mode`` modes above), so scaling ``num_processes`` does not
    multiply graph copies or pickling time.  A
    :class:`~repro.core.session.MiningSession` may be passed in place of
    the graph to reuse its cached ordering and plans.

    Dynamic schedules are **crash-tolerant**: chunk leases over a shared
    :class:`~repro.runtime.scheduler.LeaseBoard` let the parent requeue
    any chunk whose worker died before its count landed (bounded
    retries, then :class:`~repro.errors.WorkerCrashError` carrying the
    partial), so a mid-run worker death still yields the exact count.
    ``cancel`` (any :class:`~repro.core.callbacks.ExplorationControl`,
    e.g. a :class:`~repro.runtime.termination.DeadlineControl`) is
    bridged into a shared flag workers honor *mid-chunk*; firing it with
    chunks outstanding raises
    :class:`~repro.errors.QueryCancelledError` with the partial count.
    ``guard`` ("refuse" or "downgrade") runs the
    :mod:`~repro.runtime.guards` admission probe first — refusing
    predicted-explosive queries or capping the worker count.
    """
    session = as_session(graph)
    plan_mode = _resolve_plan_mode(session, plan)
    num_processes = _resolve_pool_size(
        num_processes, plan_mode, DEFAULT_NUM_PROCESSES
    )
    num_processes, _ = _apply_guard_mode(
        session, [pattern], guard, num_processes, None, edge_induced,
        symmetry_breaking,
    )
    query_plan = None
    if plan_mode == "auto":
        # Probe → (admit above) → plan, sharing the session-cached
        # estimate with the guard.  The plan caps the pool at the work
        # volume and picks schedule/chunk for knobs the caller left
        # unset; cancellation requires the dynamic schedule, so a
        # cancel token keeps it.
        from . import planner as _planner

        query_plan = _planner.plan_query(
            session,
            pattern,
            session.options(
                edge_induced=edge_induced,
                symmetry_breaking=symmetry_breaking,
            ),
            num_workers=num_processes,
        )
        num_processes = query_plan.num_workers
        if schedule is None and cancel is None:
            schedule = query_plan.schedule
        if chunk_hint is None:
            chunk_hint = query_plan.chunk_hint
    schedule, chunk_hint = _resolve_scheduling(session, schedule, chunk_hint)
    if cancel is not None and schedule != "dynamic":
        raise ValueError("cancel requires schedule='dynamic'")
    ordered = session.ordered
    accel = _accel()
    has_fork = "fork" in multiprocessing.get_all_start_methods()
    if share_mode is None:
        if accel is None:
            share_mode = "pickle"
        elif has_fork:
            share_mode = "fork"
        else:  # pragma: no cover - non-posix platforms
            share_mode = "shm"
    if share_mode not in ("fork", "shm", "mmap", "pickle"):
        raise ValueError(f"unknown share_mode {share_mode!r}")
    if share_mode in ("fork", "shm", "mmap") and accel is None:
        raise RuntimeError(f"share_mode={share_mode!r} requires numpy")

    plan = session.plan_for(
        pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
    )
    # Per-worker engine choice mirrors the session auto-dispatch tiers:
    # frontier-batched in its (wide) winning regime, per-match vectorized
    # in the dense multi-core regime, reference interpreter otherwise.
    # The pickle share mode has no CSR view to hand workers, so it always
    # drives the reference engine.
    use_batch = (
        accel is not None
        and share_mode != "pickle"
        and batch_preferred(ordered, plan)
    )
    use_accel = (
        not use_batch
        and accel is not None
        and share_mode != "pickle"
        and accel_preferred(ordered, plan)
    )
    if query_plan is not None and accel is not None and share_mode != "pickle":
        # The planned engine replaces the fixed global-degree crossover;
        # the pickle share mode still has no CSR view to hand workers.
        use_batch = query_plan.engine == "accel-batch"
        use_accel = query_plan.engine == "accel"
    if num_processes <= 1:
        if use_batch:
            return accel.FrontierBatchedEngine(session.view).run(
                plan, count_only=True
            )
        if use_accel:
            return accel.AcceleratedEngine(session.view).run(
                plan, count_only=True
            )
        return run_tasks(ordered, plan, count_only=True)

    mode = "batch" if use_batch else ("accel" if use_accel else "reference")

    if schedule == "dynamic":
        frontier, weights = _count_frontier(session, plan, mode, accel)
        ledger = ChunkLedger.build(
            frontier,
            weights=weights,
            chunk_hint=chunk_hint,
            num_workers=num_processes,
        )
    else:
        ledger = None
        slices = [(i, num_processes) for i in range(num_processes)]
        if use_batch:
            slice_fn = _batch_count_slice
        elif use_accel:
            slice_fn = _accel_count_slice
        else:
            slice_fn = _count_slice

    if share_mode == "fork":
        ctx = multiprocessing.get_context("fork")
        # The CSR view is only worth building (and caching on the graph)
        # when the workers will actually run a vectorized engine.
        view = session.view if (use_batch or use_accel) else None
        if schedule == "dynamic":
            return _tolerant_count(
                ctx, num_processes, _fork_init,
                (view, ordered, plan, mode, ledger, None), ledger, cancel,
            )
        with ctx.Pool(
            processes=num_processes,
            initializer=_fork_init,
            initargs=(view, ordered, plan, mode, None, None),
        ) as pool:
            counts = pool.map(slice_fn, slices)
        return sum(counts)

    ctx = multiprocessing.get_context("fork" if has_fork else "spawn")

    if share_mode == "mmap":
        path, is_temp = _mmap_store(session)
        try:
            init_args = (
                path,
                pattern.signature(),
                edge_induced,
                symmetry_breaking,
                mode,
                ledger,
                None,
            )
            if schedule == "dynamic":
                return _tolerant_count(
                    ctx, num_processes, _mmap_init, init_args, ledger, cancel,
                )
            with ctx.Pool(
                processes=num_processes,
                initializer=_mmap_init,
                initargs=init_args,
            ) as pool:
                counts = pool.map(slice_fn, slices)
            return sum(counts)
        finally:
            # The spill file is parent-owned: unlink it no matter how the
            # pool exits — including crash/cancel errors propagating out
            # of the tolerant drain.  Workers that already mapped it keep
            # their pages (POSIX unlink-while-mapped), so a mid-run
            # failure cannot leak the file.
            if is_temp:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - already gone
                    pass

    if share_mode == "shm":
        view = session.view
        segments, meta = _shm_segments(view)
        try:
            init_args = (
                meta,
                pattern.signature(),
                edge_induced,
                symmetry_breaking,
                use_batch or use_accel,
                mode,
                ledger,
                None,
            )
            if schedule == "dynamic":
                return _tolerant_count(
                    ctx, num_processes, _shm_init, init_args, ledger, cancel,
                )
            with ctx.Pool(
                processes=num_processes, initializer=_shm_init, initargs=init_args
            ) as pool:
                counts = pool.map(slice_fn, slices)
            return sum(counts)
        finally:
            # Worker failures surface as errors raised above; the
            # segments are parent-owned, so unlink here no matter what —
            # a leaked segment outlives the run (and, on tmpfs, holds its
            # bytes).
            for seg in segments:
                seg.close()
                seg.unlink()

    if ordered.backing == "array":
        # Pickling memmap slices would serialize (and copy) numpy arrays
        # per vertex; plain lists keep the fallback numpy-agnostic.
        adjacency = [ordered.neighbors(v).tolist() for v in ordered.vertices()]
        labels = ordered.labels()
        labels = labels.tolist() if labels is not None else None
    else:
        adjacency = [ordered.neighbors(v) for v in ordered.vertices()]
        labels = ordered.labels()
    init_args = (
        adjacency,
        labels,
        pattern.signature(),
        edge_induced,
        symmetry_breaking,
        ledger,
        None,
    )
    if schedule == "dynamic":
        return _tolerant_count(
            ctx, num_processes, _init_worker, init_args, ledger, cancel,
        )
    with ctx.Pool(
        processes=num_processes, initializer=_init_worker, initargs=init_args
    ) as pool:
        counts = pool.map(_count_slice, slices)
    return sum(counts)


# ----------------------------------------------------------------------
# Multi-pattern process scaling: fused groups over shared frontier chunks
# ----------------------------------------------------------------------


def _many_fork_init(
    view, plans, groups, ledgers, offsets, cursor, workers, frontier_chunk
):
    """Fork initializer for the multi-pattern drain (references only)."""
    _WORKER_STATE["view"] = view
    _WORKER_STATE["many_plans"] = plans
    _WORKER_STATE["many_groups"] = groups
    _WORKER_STATE["many_ledgers"] = ledgers
    _WORKER_STATE["many_offsets"] = offsets
    _WORKER_STATE["cursor"] = cursor
    _WORKER_STATE["many_workers"] = workers
    _WORKER_STATE["many_frontier_chunk"] = frontier_chunk


def _bind_many_state(
    signatures, flags, groups, ledgers, offsets, cursor, workers, frontier_chunk
):
    """Regenerate the per-pattern plans and bind the fused-drain state."""
    edge_induced, symmetry_breaking = flags
    _WORKER_STATE["many_plans"] = [
        generate_plan(
            _pattern_from_signature(sig),
            edge_induced=edge_induced,
            symmetry_breaking=symmetry_breaking,
        )
        for sig in signatures
    ]
    _WORKER_STATE["many_groups"] = groups
    _WORKER_STATE["many_ledgers"] = ledgers
    _WORKER_STATE["many_offsets"] = offsets
    _WORKER_STATE["cursor"] = cursor
    _WORKER_STATE["many_workers"] = workers
    _WORKER_STATE["many_frontier_chunk"] = frontier_chunk


def _many_shm_init(
    segment_meta,
    signatures,
    flags,
    groups,
    ledgers,
    offsets,
    cursor,
    workers,
    frontier_chunk,
):
    """Shared-memory initializer: rebuild the view, regenerate the plans."""
    _shm_init(segment_meta, signatures[0], flags[0], flags[1], True)
    _bind_many_state(
        signatures, flags, groups, ledgers, offsets, cursor, workers,
        frontier_chunk,
    )


def _many_mmap_init(
    path,
    signatures,
    flags,
    groups,
    ledgers,
    offsets,
    cursor,
    workers,
    frontier_chunk,
):
    """Mmap initializer: re-open the store, regenerate the plans."""
    _mmap_init(path, signatures[0], flags[0], flags[1])
    _bind_many_state(
        signatures, flags, groups, ledgers, offsets, cursor, workers,
        frontier_chunk,
    )


def _drain_many(worker_id: int) -> list[int]:
    """Drain fused-group frontier chunks; return per-pattern totals.

    Chunk indices are global across groups (``many_offsets`` maps an
    index to its group); each claimed chunk runs *every* member of its
    group through one :func:`repro.core.accel.fused_run` call, so the
    shared first-level gathers keep amortizing inside a chunk exactly as
    they do in the sequential fused walk.  Under ``schedule="static"``
    (``cursor is None``) the worker instead takes its stride slice of
    every group's frontier up front.
    """
    accel = _accel()
    view = _WORKER_STATE["view"]
    plans = _WORKER_STATE["many_plans"]
    groups = _WORKER_STATE["many_groups"]
    ledgers = _WORKER_STATE["many_ledgers"]
    offsets = _WORKER_STATE["many_offsets"]
    cursor = _WORKER_STATE["cursor"]
    num_workers = _WORKER_STATE["many_workers"]
    frontier_chunk = _WORKER_STATE["many_frontier_chunk"]
    totals = [0] * len(plans)
    members_of = [
        [(plans[idx], None, None) for idx in group] for group in groups
    ]

    def add(group_index: int, counts: Sequence[int]) -> None:
        for pos, idx in enumerate(groups[group_index]):
            totals[idx] += counts[pos]

    if cursor is None:
        for gi, ledger in enumerate(ledgers):
            starts = ledger.order[worker_id::num_workers]
            if len(starts) == 0:
                continue
            add(gi, accel.fused_run(
                view, members_of[gi], start_vertices=starts,
                chunk=frontier_chunk,
            ))
        return totals

    num_chunks = offsets[-1]
    while True:
        index = cursor.claim()
        if index >= num_chunks:
            return totals
        gi = bisect_right(offsets, index) - 1
        chunk = ledgers[gi].chunk(index - offsets[gi])
        add(gi, accel.fused_run(
            view, members_of[gi], start_vertices=chunk, chunk=frontier_chunk,
        ))


def process_count_many(
    graph: DataGraph | MiningSession,
    patterns: Sequence[Pattern],
    num_processes: int | None = 2,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    label_index: bool = True,
    share_mode: str | None = None,
    schedule: str | None = None,
    chunk_hint: int | None = None,
    frontier_chunk: int | None = None,
    cancel: ExplorationControl | None = None,
    guard: str | None = None,
    plan: str | None = None,
) -> dict[Pattern, int]:
    """Count every pattern with a process pool over fused frontier chunks.

    The multi-pattern overload of :func:`process_count` — and the
    process-level face of the fused runner: patterns are grouped by
    shared level-0 frontier signature
    (:class:`~repro.core.session.MultiPatternPlan`, group floor 1), each
    group's frontier is cut into degree-weighted chunks, and worker
    processes pull chunks from one shared queue spanning *all* groups —
    every chunk runs the whole group through
    :func:`repro.core.accel.fused_run`, so motif censuses and FSM-style
    pattern sets scale across cores without giving up the shared
    first-level gathers.  ``schedule="static"`` pre-assigns stride
    slices instead (the ablation baseline).

    Counts are pinned to the sequential ``count_many`` (the census/Möbius
    rewrite is a sequential-only optimization; the process path counts
    every requested plan directly).  ``frontier_chunk`` bounds each
    worker engine's per-dispatch frontier exactly as in sequential runs.
    Requires numpy; without it (or with ``num_processes <= 1``) the
    call falls back to the sequential session path.  ``share_mode``
    supports ``"fork"``, ``"shm"`` and ``"mmap"`` (workers re-open the
    on-disk ``.rgx`` store and share pages through the OS page cache).

    ``cancel`` and ``guard`` behave exactly as in :func:`process_count`
    — dynamic schedules get crash-tolerant chunk leases (mid-run worker
    deaths are requeued for exact counts, poison chunks raise
    :class:`~repro.errors.WorkerCrashError`), shared-flag cancellation
    raises :class:`~repro.errors.QueryCancelledError` with per-pattern
    partial totals in ``partial.detail["totals"]``, and the admission
    guard refuses or downgrades predicted-explosive pattern sets.
    """
    session = as_session(graph)
    plan_mode = _resolve_plan_mode(session, plan)
    num_processes = _resolve_pool_size(
        num_processes, plan_mode, DEFAULT_NUM_PROCESSES
    )
    patterns = list(patterns)
    num_processes, frontier_chunk = _apply_guard_mode(
        session, patterns, guard, num_processes, frontier_chunk,
        edge_induced, symmetry_breaking,
    )
    workload_plan = None
    if plan_mode == "auto" and patterns:
        # One probe per distinct member (shared with the guard above)
        # plans the whole drain: pool size from summed level-1 volume,
        # schedule from skew, frontier chunk from predicted partials.
        from . import planner as _planner

        workload_plan = _planner.plan_workload(
            session,
            patterns,
            session.options(
                edge_induced=edge_induced,
                symmetry_breaking=symmetry_breaking,
                frontier_chunk=frontier_chunk,
            ),
            num_workers=num_processes,
        )
        num_processes = workload_plan.num_workers
        if schedule is None and cancel is None:
            schedule = workload_plan.schedule
        if chunk_hint is None:
            chunk_hint = workload_plan.chunk_hint
        frontier_chunk = workload_plan.frontier_chunk
    schedule, chunk_hint = _resolve_scheduling(session, schedule, chunk_hint)
    if cancel is not None and schedule != "dynamic":
        raise ValueError("cancel requires schedule='dynamic'")
    accel = _accel()
    not_worth_forking = (
        workload_plan is not None and workload_plan.engine == "reference"
    )
    if accel is None or num_processes <= 1 or not patterns or not_worth_forking:
        return session.count_many(
            patterns,
            edge_induced=edge_induced,
            symmetry_breaking=symmetry_breaking,
            label_index=label_index,
            frontier_chunk=frontier_chunk,
            plan=plan_mode,
        )
    has_fork = "fork" in multiprocessing.get_all_start_methods()
    if share_mode is None:
        share_mode = "fork" if has_fork else "shm"
    if share_mode not in ("fork", "shm", "mmap"):
        raise ValueError(
            f"process_count_many supports share_mode 'fork', 'shm' or "
            f"'mmap', got {share_mode!r}"
        )

    ordered = session.ordered
    labels = ordered.labels()
    plans = [
        session.plan_for(
            p, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
        for p in patterns
    ]
    if labels is None and any(pl.matched_pattern.is_labeled for pl in plans):
        raise MatchingError(
            "pattern has label constraints but the data graph is unlabeled"
        )
    multi = MultiPatternPlan.build(
        plans, label_index=label_index and labels is not None, min_group=1
    )
    view = session.view
    degrees = view.degrees()
    np = accel.np

    groups: list[tuple[int, ...]] = []
    ledgers: list[ChunkLedger] = []
    offsets = [0]
    for group, key in zip(multi.groups, multi.group_keys):
        starts = group_start_vertices(ordered, key)
        if starts is None:
            frontier = np.arange(view.num_vertices - 1, -1, -1, dtype=np.int64)
        else:
            frontier = np.asarray(starts, dtype=np.int64)
        ledger = ChunkLedger.build(
            frontier,
            weights=degrees[frontier] + 1,
            chunk_hint=chunk_hint,
            num_workers=num_processes,
        )
        groups.append(tuple(group))
        ledgers.append(ledger)
        offsets.append(offsets[-1] + len(ledger))

    worker_ids = list(range(num_processes))
    dynamic = schedule == "dynamic"
    if share_mode == "fork":
        ctx = multiprocessing.get_context("fork")
        init_args = (
            view, plans, groups, ledgers, offsets, None,
            num_processes, frontier_chunk,
        )
        if dynamic:
            totals = _tolerant_count_many(
                ctx, num_processes, _many_fork_init, init_args, groups,
                ledgers, offsets, cancel, len(patterns),
            )
            return dict(zip(patterns, totals))
        with ctx.Pool(
            processes=num_processes,
            initializer=_many_fork_init,
            initargs=init_args,
        ) as pool:
            per_worker = pool.map(_drain_many, worker_ids, chunksize=1)
    elif share_mode == "shm":
        ctx = multiprocessing.get_context("fork" if has_fork else "spawn")
        segments, meta = _shm_segments(view)
        try:
            init_args = (
                meta,
                [p.signature() for p in patterns],
                (edge_induced, symmetry_breaking),
                groups,
                ledgers,
                offsets,
                None,
                num_processes,
                frontier_chunk,
            )
            if dynamic:
                totals = _tolerant_count_many(
                    ctx, num_processes, _many_shm_init, init_args, groups,
                    ledgers, offsets, cancel, len(patterns),
                )
                return dict(zip(patterns, totals))
            with ctx.Pool(
                processes=num_processes,
                initializer=_many_shm_init,
                initargs=init_args,
            ) as pool:
                per_worker = pool.map(_drain_many, worker_ids, chunksize=1)
        finally:
            for seg in segments:
                seg.close()
                seg.unlink()
    else:  # share_mode == "mmap"
        ctx = multiprocessing.get_context("fork" if has_fork else "spawn")
        path, is_temp = _mmap_store(session)
        try:
            init_args = (
                path,
                [p.signature() for p in patterns],
                (edge_induced, symmetry_breaking),
                groups,
                ledgers,
                offsets,
                None,
                num_processes,
                frontier_chunk,
            )
            if dynamic:
                totals = _tolerant_count_many(
                    ctx, num_processes, _many_mmap_init, init_args, groups,
                    ledgers, offsets, cancel, len(patterns),
                )
                return dict(zip(patterns, totals))
            with ctx.Pool(
                processes=num_processes,
                initializer=_many_mmap_init,
                initargs=init_args,
            ) as pool:
                per_worker = pool.map(_drain_many, worker_ids, chunksize=1)
        finally:
            if is_temp:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - already gone
                    pass

    totals = [0] * len(patterns)
    for worker_totals in per_worker:
        for idx, value in enumerate(worker_totals):
            totals[idx] += value
    return dict(zip(patterns, totals))
