"""Concurrent matching runtime: thread pool + process pool (§5, Fig 12).

``parallel_match`` reproduces Peregrine's architecture faithfully: worker
threads pull start-vertex chunks from a shared atomic-counter scheduler,
run the engine with thread-local stats/aggregators, and honor a shared
early-termination control.  CPython's GIL serializes the actual list
operations, so wall-clock speedup needs ``process_count`` — a fork-based
process pool that partitions start vertices and sums counts — which the
Figure 12 scalability benchmark uses.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.callbacks import Aggregator, ExplorationControl, Match
from ..core.engine import EngineStats, run_tasks
from ..core.plan import ExplorationPlan, generate_plan
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .aggregation import AggregatorThread
from .scheduler import TaskScheduler

__all__ = ["ParallelResult", "parallel_match", "process_count"]


@dataclass
class ParallelResult:
    """Outcome of a ``parallel_match`` run."""

    matches: int
    num_threads: int
    stats: EngineStats
    aggregates: dict = field(default_factory=dict)
    per_thread_matches: list[int] = field(default_factory=list)
    per_thread_cpu: list[float] = field(default_factory=list)

    def load_imbalance(self) -> float:
        """Max-minus-min share of matches across threads (0 = perfect).

        Match counts are a *work placement* metric: hub tasks carry most
        matches, so skew here is expected.  The paper's §6.7 balance claim
        is about finish times — see :meth:`time_imbalance`.
        """
        if not self.per_thread_matches or self.matches == 0:
            return 0.0
        hi = max(self.per_thread_matches)
        lo = min(self.per_thread_matches)
        return (hi - lo) / self.matches

    def time_imbalance(self) -> float:
        """Relative gap between the busiest and idlest thread's CPU time.

        The paper reports a <=71 ms finish-time gap across threads; this
        is the analogous measure for our runtime (per-thread CPU seconds
        via ``time.thread_time``, so GIL wait time is excluded).
        """
        if not self.per_thread_cpu:
            return 0.0
        hi = max(self.per_thread_cpu)
        lo = min(self.per_thread_cpu)
        return 0.0 if hi == 0 else (hi - lo) / hi


def parallel_match(
    graph: DataGraph,
    pattern: Pattern,
    num_threads: int = 4,
    callback: Callable[[Match, Aggregator], None] | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    control: ExplorationControl | None = None,
    chunk_size: int = 64,
    aggregate_interval: float = 0.005,
    on_update: Callable[[Aggregator], None] | None = None,
) -> ParallelResult:
    """Match a pattern with ``num_threads`` worker threads.

    ``callback(match, local_aggregator)`` runs on the worker thread that
    found the match; values it maps into the local aggregator surface in
    the global aggregate via the asynchronous aggregator thread.
    """
    plan = generate_plan(
        pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
    )
    ordered, old_of_new = graph.degree_ordered()
    scheduler = TaskScheduler.degree_descending(
        ordered.num_vertices, chunk_size=chunk_size
    )
    shared_control = control if control is not None else ExplorationControl()
    global_agg = Aggregator()
    local_aggs = [Aggregator() for _ in range(num_threads)]
    local_stats = [EngineStats() for _ in range(num_threads)]
    thread_matches = [0] * num_threads
    thread_cpu = [0.0] * num_threads

    def worker(tid: int) -> None:
        local = local_aggs[tid]
        on_match = None
        if callback is not None:
            def on_match(m: Match) -> None:
                translated = tuple(
                    old_of_new[v] if v >= 0 else -1 for v in m.mapping
                )
                callback(Match(m.pattern, translated), local)

        total = 0
        cpu_begin = time.thread_time()
        while not shared_control.stopped:
            chunk = scheduler.next_chunk()
            if not chunk:
                break
            total += run_tasks(
                ordered,
                plan,
                start_vertices=chunk,
                on_match=on_match,
                control=shared_control,
                stats=local_stats[tid],
                count_only=callback is None,
            )
        thread_matches[tid] = total
        thread_cpu[tid] = time.thread_time() - cpu_begin

    threads = [
        threading.Thread(target=worker, args=(tid,), name=f"matcher-{tid}")
        for tid in range(num_threads)
    ]
    agg_thread = AggregatorThread(
        global_agg, local_aggs, interval=aggregate_interval, on_update=on_update
    )
    agg_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    agg_thread.stop()

    merged = EngineStats()
    for s in local_stats:
        merged.merge(s)
    return ParallelResult(
        matches=sum(thread_matches),
        num_threads=num_threads,
        stats=merged,
        aggregates=global_agg.result(),
        per_thread_matches=thread_matches,
        per_thread_cpu=thread_cpu,
    )


# ----------------------------------------------------------------------
# Process-based scaling (Figure 12): real parallelism for the speedup
# curve.  Fork start method shares the graph copy-on-write.
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(adjacency, labels, pattern_signature_args, edge_induced, symmetry_breaking):
    graph = DataGraph(adjacency, labels, validate=False)
    num_vertices, edges, anti_edges, label_items = pattern_signature_args
    pattern = Pattern(
        num_vertices=num_vertices,
        edges=edges,
        anti_edges=anti_edges,
        labels=dict(label_items),
    )
    plan = generate_plan(
        pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
    )
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["plan"] = plan


def _count_slice(args: tuple[int, int]) -> int:
    offset, stride = args
    graph = _WORKER_STATE["graph"]
    plan = _WORKER_STATE["plan"]
    starts = range(graph.num_vertices - 1 - offset, -1, -stride)
    return run_tasks(graph, plan, start_vertices=starts, count_only=True)


def process_count(
    graph: DataGraph,
    pattern: Pattern,
    num_processes: int = 2,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
) -> int:
    """Count matches with a process pool (true parallel speedup).

    Start vertices are strided across processes so every process gets a
    mix of hub and leaf tasks — the same load-balancing intuition as §5.2.
    """
    ordered, _ = graph.degree_ordered()
    if num_processes <= 1:
        plan = generate_plan(
            pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
        return run_tasks(ordered, plan, count_only=True)
    adjacency = [ordered.neighbors(v) for v in ordered.vertices()]
    sig = pattern.signature()
    init_args = (adjacency, ordered.labels(), sig, edge_induced, symmetry_breaking)
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(
        processes=num_processes, initializer=_init_worker, initargs=init_args
    ) as pool:
        counts = pool.map(
            _count_slice, [(i, num_processes) for i in range(num_processes)]
        )
    return sum(counts)
