"""Admission guards: bounded probe walks that predict query cost.

The service tier (ROADMAP items 1–2) needs to know *before* running a
query whether it will explode — a 5-clique census on a power-law graph
can expand many orders of magnitude past its frontier size, and by the
time a deadline fires the box has already paid the memory bill.  This
module implements the probe half of the virt-graph ``estimator`` /
``guards`` idiom: :func:`estimate_cost` samples the query's level-0
frontier (a bounded walk — cost is ``O(sample)`` adjacency probes, never
proportional to the graph), measures first-level expansion and the
second-level growth trend, detects hubs, and extrapolates a predicted
partial-match volume.  :func:`admit` turns the estimate into a decision
for ``ExecOptions.guard``:

``"refuse"``
    raise :class:`~repro.errors.QueryRefusedError` up front when the
    prediction crosses :data:`EXPLOSIVE_PARTIALS` — admission control
    for the future service front-end.
``"downgrade"``
    run anyway, but tighten ``frontier_chunk`` to
    :data:`DOWNGRADE_FRONTIER_CHUNK` (bounding peak frontier memory) —
    and the process runtimes additionally cap workers at
    :data:`DOWNGRADE_MAX_WORKERS` via :func:`cap_workers`.
``"off"``
    never probe (the default; the unguarded hot path stays unchanged).

The estimator is deliberately simple and deterministic — evenly-spaced
sampling over the hub-first frontier, pure-Python adjacency probes (no
numpy requirement), geometric extrapolation.  Its measurements serve two
consumers: :func:`admit` (triage, conservative by design) and
:mod:`repro.runtime.planner` (cost-model-driven engine/schedule/chunk
selection from the same probe — the second half of ROADMAP item 2).
The planner consumes the *unclamped* extrapolation
(``predicted_partials_raw``) while admission keeps the conservative
growth floor in ``predicted_partials``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import QueryRefusedError
from ..pattern.pattern import Pattern

__all__ = [
    "CostEstimate",
    "estimate_cost",
    "resolve_threshold",
    "admit",
    "refusal",
    "cap_workers",
    "GUARD_CHOICES",
    "EXPLOSIVE_PARTIALS",
    "DOWNGRADE_FRONTIER_CHUNK",
    "DOWNGRADE_MAX_WORKERS",
    "DOWNGRADE_APPROX_FACTOR",
    "DOWNGRADE_APPROX_REL_ERR",
    "PROBE_SAMPLE",
]

GUARD_CHOICES = ("off", "refuse", "downgrade")

# Starts sampled from the level-0 frontier per probe, and how many
# first-level candidates per start feed the second-level growth trend.
PROBE_SAMPLE = 64
PROBE_FANOUT_SAMPLE = 8

# Hub-prefix scan bound: the frontier is hub-first, so hubs form a
# prefix; scanning at most this many entries finds them all (or enough).
PROBE_HUB_SCAN = 4096

# Predicted partial matches above this are "explosive".  ~5e7 rows is
# minutes of batched-engine work and tens of GB of transient frontier on
# wide patterns — past any interactive budget.
EXPLOSIVE_PARTIALS = 5e7

# What "downgrade" does: frontier chunks shrink to this cap (bounding
# peak frontier memory at ~O(chunk) rows per level) and process pools
# cap their worker count (bounding memory multiplication across forks).
DOWNGRADE_FRONTIER_CHUNK = 2048
DOWNGRADE_MAX_WORKERS = 2

# The "approximate" escalation step of guard="downgrade": count-only
# queries predicted this many times past the explosive threshold are
# beyond what chunk/worker pacing can save — the session answers them
# from the sampling tier instead, at DOWNGRADE_APPROX_REL_ERR target
# relative error (see repro.mining.sampling).
DOWNGRADE_APPROX_FACTOR = 16.0
DOWNGRADE_APPROX_REL_ERR = 0.05


def _hub_degree_floor(n: int) -> int:
    """The accel tier's hub threshold, numpy-free (max(128, n / 64))."""
    return max(128, n // 64)


@dataclass(frozen=True)
class CostEstimate:
    """What a bounded probe walk learned about one query.

    ``predicted_partials`` is the geometric extrapolation
    ``frontier_size * avg_expansion * growth^(levels beyond the first)``
    — the volume of partial matches the batched engine would
    materialize, which is the quantity that actually explodes (§5.1
    exploration is output-sensitive; partials are the work *and* the
    memory).  For admission the growth factor is floored at 1.0 (a
    shrinking frontier must not talk the guard out of refusing);
    ``predicted_partials_raw`` is the same extrapolation without the
    floor, for planners that need the honest trend.  ``level1_volume``
    (``frontier_size * avg_expansion``) and ``hub_skew``
    (``max_expansion / avg_expansion``) are the per-pattern planning
    signals the probe already measures.
    """

    frontier_size: int
    sampled: int
    pattern_vertices: int
    avg_expansion: float
    max_expansion: int
    growth: float
    hub_count: int
    hub_degree_floor: int
    predicted_partials: float
    threshold: float
    level1_volume: float = 0.0
    predicted_partials_raw: float = 0.0
    hub_skew: float = 0.0

    @property
    def explosive(self) -> bool:
        return self.predicted_partials > self.threshold

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["explosive"] = self.explosive
        return payload


def estimate_cost(
    graph_or_session,
    pattern: Pattern,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    sample: int = PROBE_SAMPLE,
    threshold: float | None = None,
) -> CostEstimate:
    """Probe one query's frontier; return a :class:`CostEstimate`.

    The probe is a bounded level-0 walk: up to ``sample`` starts,
    evenly spaced over the hub-first (label-filtered) frontier so the
    hubs at the front are always represented, each charged its
    first-level candidate count (neighbors below the start under
    symmetry breaking — the engines' level-1 expansion); the
    second-level growth trend averages the same measure over a few
    candidates of each sampled start.  Hubs are counted by scanning the
    frontier's hub prefix.  Work is ``O(sample * fanout-sample)``
    adjacency probes regardless of graph size.
    """
    # Deferred import: repro.runtime is imported by repro/__init__ after
    # repro.core, and guards must not force the cycle at module load.
    from ..core.session import as_session

    if threshold is None:
        # Resolved at call time so tests (and deployments) can retune the
        # module-level threshold.
        threshold = EXPLOSIVE_PARTIALS
    session = as_session(graph_or_session)
    plan, key = session._cached_plan(pattern, edge_induced, symmetry_breaking)
    starts = session._starts_for(plan, key)
    ordered = session.ordered
    n = ordered.num_vertices
    if starts is None:
        frontier = range(n - 1, -1, -1)
        frontier_size = n
    else:
        frontier = starts
        frontier_size = len(starts)
    width = pattern.num_vertices
    if frontier_size == 0 or width <= 1:
        return CostEstimate(
            frontier_size=frontier_size,
            sampled=0,
            pattern_vertices=width,
            avg_expansion=0.0,
            max_expansion=0,
            growth=0.0,
            hub_count=0,
            hub_degree_floor=_hub_degree_floor(n),
            predicted_partials=float(frontier_size),
            threshold=threshold,
            level1_volume=0.0,
            predicted_partials_raw=float(frontier_size),
            hub_skew=0.0,
        )

    def fanout(v: int) -> int:
        # The engines' first-level expansion: candidates strictly below
        # the start under symmetry breaking; the full adjacency without.
        if symmetry_breaking:
            return len(ordered.neighbors_below(v, v))
        return ordered.degree(v)

    k = min(max(1, sample), frontier_size)
    # Rounded stride: index i*size//k is strictly increasing for k <=
    # size, so the k probes are distinct and evenly spaced across the
    # whole frontier.  (An integer step of size//k degrades to 1 when
    # size < 2k, turning the "even sample" into the first k consecutive
    # hub-prefix entries and inflating avg_expansion.)
    probe = [frontier[(i * frontier_size) // k] for i in range(k)]

    expansions = [fanout(v) for v in probe]
    avg_expansion = sum(expansions) / len(probe)
    max_expansion = max(expansions)

    # Second-level growth: per-partial fanout averaged over a few
    # first-level candidates of each sampled start.
    growth_total = 0
    growth_count = 0
    for v in probe:
        below = ordered.neighbors_below(v, v)
        for w in below[:PROBE_FANOUT_SAMPLE]:
            growth_total += fanout(w)
            growth_count += 1
    growth = (growth_total / growth_count) if growth_count else 0.0

    hub_floor = _hub_degree_floor(n)
    hub_count = 0
    for i in range(min(frontier_size, PROBE_HUB_SCAN)):
        if ordered.degree(frontier[i]) >= hub_floor:
            hub_count += 1
        else:
            break  # hub-first order: the hubs are a prefix

    level1_total = avg_expansion * frontier_size
    deeper_levels = max(0, width - 2)
    predicted = level1_total
    predicted_raw = level1_total
    for _ in range(deeper_levels):
        # Admission floors the growth factor at 1.0 (conservative); the
        # raw extrapolation keeps sub-1.0 growth so planners see
        # shrinking frontiers as what they are.
        predicted *= max(growth, 1.0) if growth > 0 else 1.0
        predicted_raw *= growth if growth_count else 1.0
    return CostEstimate(
        frontier_size=frontier_size,
        sampled=len(probe),
        pattern_vertices=width,
        avg_expansion=avg_expansion,
        max_expansion=max_expansion,
        growth=growth,
        hub_count=hub_count,
        hub_degree_floor=hub_floor,
        predicted_partials=predicted,
        threshold=threshold,
        level1_volume=level1_total,
        predicted_partials_raw=predicted_raw,
        hub_skew=(max_expansion / avg_expansion) if avg_expansion > 0 else 0.0,
    )


def resolve_threshold(
    estimate: CostEstimate, threshold: float | None = None
) -> CostEstimate:
    """Re-resolve a cached estimate against the *current* threshold.

    Probe measurements are stable per (pattern, flags) and safe to
    cache, but the explosive threshold is a deployment knob documented
    as "resolved at call time".  Callers holding a cached estimate must
    pass it through here before any admission decision so retuning
    :data:`EXPLOSIVE_PARTIALS` takes effect on warm sessions too.
    """
    if threshold is None:
        threshold = EXPLOSIVE_PARTIALS
    if estimate.threshold == threshold:
        return estimate
    return dataclasses.replace(estimate, threshold=threshold)


def refusal(estimate: CostEstimate) -> QueryRefusedError:
    """The refusal error for an explosive estimate (raised by callers)."""
    return QueryRefusedError(
        "query refused by admission guard: predicted "
        f"~{estimate.predicted_partials:.3g} partial matches "
        f"(threshold {estimate.threshold:.3g}; frontier "
        f"{estimate.frontier_size}, avg level-1 expansion "
        f"{estimate.avg_expansion:.1f}, growth {estimate.growth:.1f}, "
        f"{estimate.hub_count} hub starts)",
        estimate,
    )


def admit(estimate: CostEstimate, opts):
    """Apply one guard decision to a run's options.

    Benign estimates pass ``opts`` through unchanged.  Explosive ones
    raise :class:`~repro.errors.QueryRefusedError` under
    ``guard="refuse"`` or return options with ``frontier_chunk``
    tightened to :data:`DOWNGRADE_FRONTIER_CHUNK` under
    ``guard="downgrade"``.
    """
    if opts.guard == "off" or not estimate.explosive:
        return opts
    if opts.guard == "refuse":
        raise refusal(estimate)
    chunk = opts.frontier_chunk
    tightened = (
        DOWNGRADE_FRONTIER_CHUNK
        if chunk is None
        else min(chunk, DOWNGRADE_FRONTIER_CHUNK)
    )
    return dataclasses.replace(opts, frontier_chunk=tightened)


def cap_workers(estimate: CostEstimate | None, num_processes: int) -> int:
    """The downgraded worker count for an explosive estimate."""
    if estimate is None or not estimate.explosive:
        return num_processes
    return min(num_processes, DOWNGRADE_MAX_WORKERS)
