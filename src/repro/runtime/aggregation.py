"""On-the-fly aggregation (§5.4).

Matching workers keep thread-local :class:`~repro.core.callbacks.Aggregator`
instances and never block on shared state.  An asynchronous aggregator
thread periodically swaps each worker's local value map out (the workers'
``merge_from`` drain is the swap) and folds it into the global aggregate,
so global values — FSM supports, early-termination conditions — are
available while matching is still running.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from ..core.callbacks import Aggregator

__all__ = ["AggregatorThread"]


class AggregatorThread:
    """Background thread folding worker-local aggregators into a global one.

    Parameters
    ----------
    global_aggregator: the destination of all merges.
    locals_: one aggregator per worker thread.
    interval: seconds between merge sweeps.
    on_update: optional hook run (with the global aggregator) after every
        sweep — the place where FSM checks support thresholds or existence
        queries evaluate their conditions while matching continues.
    """

    def __init__(
        self,
        global_aggregator: Aggregator,
        locals_: Sequence[Aggregator],
        interval: float = 0.005,
        on_update: Callable[[Aggregator], None] | None = None,
    ):
        self._global = global_aggregator
        self._locals = list(locals_)
        self._interval = interval
        self._on_update = on_update
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="aggregator", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _sweep(self) -> None:
        for local in self._locals:
            self._global.merge_from(local)
        if self._on_update is not None:
            self._on_update(self._global)

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._sweep()

    def stop(self) -> None:
        """Stop the thread and run one final sweep so nothing is lost."""
        self._stop.set()
        self._thread.join()
        self._sweep()

    def __enter__(self) -> "AggregatorThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
