"""Async mining service: shared sessions, fused batching, one dispatch surface.

The service tier turns the library into a long-lived query server:

* :class:`~repro.service.registry.SessionRegistry` — graph keys (paths,
  ``.rgx`` stores, registered in-memory graphs) resolve to shared
  :class:`~repro.core.session.MiningSession` instances under LRU + TTL
  eviction, so plan caches and mmap handles are reused across requests
  and released when a graph goes cold.
* :class:`~repro.service.batching.BatchingQueue` — concurrent
  compatible requests on the same graph coalesce into one fused
  multi-pattern walk on the worker pool, with per-request result and
  error demultiplexing.
* :mod:`~repro.service.handlers` — the verbs (``count``, ``match``,
  ``exists``, ``motifs``, ``stats``) behind one dict-in/dict-out
  dispatch surface with structured guardrail errors.
* :class:`~repro.service.metrics.ServiceMetrics` — per-verb counters,
  latency histograms and fusion gauges as one snapshot.
* :mod:`~repro.service.http` — the stdlib HTTP/JSON front
  (``python -m repro.service`` / ``repro serve``).
"""

from .batching import BatchingQueue, JobResult, QueryJob
from .handlers import InvalidRequestError, dispatch
from .http import ServiceHTTPServer, serve
from .metrics import LatencyHistogram, ServiceMetrics
from .registry import SessionRegistry
from .service import MiningService, ServiceConfig

__all__ = [
    "BatchingQueue",
    "JobResult",
    "QueryJob",
    "InvalidRequestError",
    "dispatch",
    "ServiceHTTPServer",
    "serve",
    "LatencyHistogram",
    "ServiceMetrics",
    "SessionRegistry",
    "MiningService",
    "ServiceConfig",
]
