"""Shared-session registry: one ``MiningSession`` per graph, evicted sanely.

A service process outlives any single graph: datasets come and go, and a
box serving heavy traffic cannot let every graph it has ever touched pin
its degree ordering, CSR view and plan cache in RAM (or its ``.rgx``
mmap descriptors in the fd table) forever.  :class:`SessionRegistry`
maps *graph keys* to shared :class:`~repro.core.session.MiningSession`
instances with two eviction axes:

* **LRU displacement** — at most ``max_sessions`` sessions stay
  resident; acquiring one past the cap evicts the least recently used.
* **TTL expiry** — a session idle for longer than ``ttl_seconds`` is
  evicted on the next registry access (lazy sweep; no reaper thread).

Keys are either filesystem paths (``.rgx`` stores open zero-copy,
``.npz``/edge lists parse — exactly what a session constructor accepts)
or *registered names* bound to in-memory graphs via :meth:`register`.
Path-loaded sessions are **owned** by the registry: eviction calls
:meth:`MiningSession.close(release_store=True) <repro.core.session.MiningSession.close>`
so mmap descriptors are released immediately.  Registered graphs belong
to the caller — eviction drops the session state but leaves the caller's
graph (and any store behind it) untouched.

Stats follow the ``cache_info()`` idiom of the session plan cache:
hits/misses/loads plus per-cause eviction counters, served as one dict
the service metrics layer folds into its snapshot.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Union

from ..core.session import MiningSession
from ..graph.graph import DataGraph

__all__ = ["SessionRegistry", "DEFAULT_MAX_SESSIONS"]

DEFAULT_MAX_SESSIONS = 8


class _Entry:
    """One resident session plus its bookkeeping."""

    __slots__ = ("session", "owns_store", "last_used", "loaded_at")

    def __init__(self, session: MiningSession, owns_store: bool, now: float):
        self.session = session
        self.owns_store = owns_store
        self.last_used = now
        self.loaded_at = now

    def close(self) -> None:
        self.session.close(release_store=self.owns_store)


class SessionRegistry:
    """LRU + TTL cache of shared mining sessions, keyed by graph.

    Thread-safe: the service's event loop resolves sessions while pool
    workers run queries on previously resolved ones, and tests drive the
    registry directly from multiple threads.  The lock guards only the
    map — graph loading happens outside it would be nicer, but loads are
    rare (one per distinct graph per residency) and keeping them inside
    makes the LRU accounting race-free, so simplicity wins.
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        # Insertion order is recency order: every touch re-inserts.
        self._entries: dict[str, _Entry] = {}
        self._hits = 0
        self._misses = 0
        self._evicted_lru = 0
        self._evicted_ttl = 0
        self._evicted_explicit = 0

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_key(self, key: str) -> str:
        """The canonical registry key for ``key``.

        Registered names resolve to themselves; anything else is treated
        as a filesystem path and normalized, so ``g.rgx`` and
        ``./g.rgx`` share one session.
        """
        with self._lock:
            if key in self._entries:
                return key
        return os.path.abspath(key)

    def get(self, key: str) -> MiningSession:
        """The shared session for ``key``, loading and evicting as needed.

        Raises ``FileNotFoundError`` for an unregistered name that is not
        a readable path (the service maps it to a structured
        ``unknown graph`` response), and whatever the graph loaders raise
        for unreadable/corrupt files.
        """
        now = self._clock()
        with self._lock:
            self._sweep_expired(now)
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._hits += 1
                entry.last_used = now
                self._entries[key] = entry  # re-insert: most recent
                return entry.session
        # Not resident under the given name: treat as a path.
        path = os.path.abspath(key)
        with self._lock:
            entry = self._entries.pop(path, None)
            if entry is not None:
                self._hits += 1
                entry.last_used = now
                self._entries[path] = entry
                return entry.session
            self._misses += 1
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"unknown graph {key!r}: not a registered name and not a "
                "readable path"
            )
        session = MiningSession(path)
        with self._lock:
            # A racing load of the same path may have landed first; keep
            # the resident one so every caller shares a single session.
            existing = self._entries.get(path)
            if existing is not None:
                existing.last_used = self._clock()
                resident = existing.session
            else:
                self._entries[path] = _Entry(session, owns_store=True, now=now)
                resident = session
                self._evict_over_capacity()
        if resident is not session:
            session.close(release_store=True)
        return resident

    def register(
        self,
        name: str,
        graph: Union[DataGraph, MiningSession],
    ) -> MiningSession:
        """Bind ``name`` to an in-memory graph (or an existing session).

        Re-registering a name always installs a **fresh** entry: the old
        session is evicted (stale plan caches from a previous graph of
        the same name must not leak into the new one) and a bare graph
        gets a brand-new session rather than the graph's shared default
        one.  The caller keeps ownership of the graph, so eviction never
        closes its backing store.
        """
        if isinstance(graph, MiningSession):
            session = graph
        elif isinstance(graph, DataGraph):
            session = MiningSession(graph)
        else:
            raise TypeError(
                f"register expects DataGraph or MiningSession, got "
                f"{type(graph).__name__}"
            )
        now = self._clock()
        with self._lock:
            old = self._entries.pop(name, None)
            if old is not None:
                self._evicted_explicit += 1
            self._entries[name] = _Entry(session, owns_store=False, now=now)
            self._evict_over_capacity()
        if old is not None and old.session is not session:
            old.close()
        return session

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _sweep_expired(self, now: float) -> None:
        """Drop every TTL-expired entry (caller holds the lock)."""
        if self.ttl_seconds is None:
            return
        expired = [
            key
            for key, entry in self._entries.items()
            if now - entry.last_used > self.ttl_seconds
        ]
        for key in expired:
            entry = self._entries.pop(key)
            self._evicted_ttl += 1
            entry.close()

    def _evict_over_capacity(self) -> None:
        """LRU-displace past ``max_sessions`` (caller holds the lock)."""
        while len(self._entries) > self.max_sessions:
            oldest_key = next(iter(self._entries))
            entry = self._entries.pop(oldest_key)
            self._evicted_lru += 1
            entry.close()

    def evict(self, key: str) -> bool:
        """Explicitly drop one entry; returns whether it was resident."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._evicted_explicit += 1
        entry.close()
        return True

    def clear(self) -> None:
        """Evict everything (service shutdown)."""
        with self._lock:
            entries = list(self._entries.values())
            self._evicted_explicit += len(entries)
            self._entries.clear()
        for entry in entries:
            entry.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        """``cache_info()``-style counters for the metrics snapshot."""
        with self._lock:
            return {
                "sessions": len(self._entries),
                "max_sessions": self.max_sessions,
                "ttl_seconds": self.ttl_seconds,
                "hits": self._hits,
                "misses": self._misses,
                "evictions_lru": self._evicted_lru,
                "evictions_ttl": self._evicted_ttl,
                "evictions_explicit": self._evicted_explicit,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"SessionRegistry(sessions={s['sessions']}/{s['max_sessions']}, "
            f"hits={s['hits']}, misses={s['misses']})"
        )
