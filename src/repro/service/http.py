"""Stdlib HTTP/JSON front for the mining service.

No web framework — :class:`http.server.ThreadingHTTPServer` accepts
connections on OS threads while one background asyncio loop owns the
:class:`~repro.service.service.MiningService`; handler threads bridge
into it with :func:`asyncio.run_coroutine_threadsafe`.  That keeps the
batching semantics identical to the in-process API: concurrent HTTP
requests land on the *same* loop, so they coalesce into the same fused
batches an embedded caller would get.

Endpoints::

    POST /query   one request envelope (see repro.service.handlers)
    GET  /stats   the metrics snapshot
    GET  /health  liveness probe

Run it with ``python -m repro.service`` or ``repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .service import MiningService, ServiceConfig

__all__ = ["ServiceHTTPServer", "serve", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

# How long a handler thread waits for the loop to serve one request.
# Mining calls are bounded by budgets/guards; this is the last resort.
REQUEST_TIMEOUT_S = 600.0


class _RequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a mining bench
    # issuing thousands of queries must not pay for (or spam) that.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/health":
            self._send_json(200, {"ok": True})
            return
        if self.path == "/stats":
            response = self.server.run_request({"verb": "stats"})
            self._send_json(200 if response.get("ok") else 500, response)
            return
        self._send_json(
            404,
            {
                "ok": False,
                "error": {
                    "code": "not_found",
                    "message": f"no such endpoint: {self.path}",
                    "status": 404,
                },
            },
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/query":
            self._send_json(
                404,
                {
                    "ok": False,
                    "error": {
                        "code": "not_found",
                        "message": f"no such endpoint: {self.path}",
                        "status": 404,
                    },
                },
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(
                400,
                {
                    "ok": False,
                    "error": {
                        "code": "invalid_request",
                        "message": f"request body is not valid JSON: {exc}",
                        "status": 400,
                    },
                },
            )
            return
        response = self.server.run_request(payload)
        if response.get("ok"):
            status = 200
        else:
            status = response.get("error", {}).get("status", 500)
        self._send_json(status, response)


class ServiceHTTPServer(ThreadingHTTPServer):
    """The HTTP front bound to one service and one background loop."""

    daemon_threads = True

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        service: MiningService | None = None,
        config: ServiceConfig | None = None,
    ):
        super().__init__((host, port), _RequestHandler)
        self.service = service if service is not None else MiningService(config)
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True
        )
        self._loop_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port) — port 0 resolves here."""
        return self.server_address[0], self.server_address[1]

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def run_request(self, payload) -> dict:
        """Serve one envelope on the service loop (handler threads call this)."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.handle(payload), self._loop
        )
        return future.result(timeout=REQUEST_TIMEOUT_S)

    def close(self) -> None:
        """Stop accepting, drain the service, and tear the loop down."""
        self.shutdown()  # stop serve_forever(); waits for it to exit
        self.server_close()
        try:
            asyncio.run_coroutine_threadsafe(
                self.service.close(), self._loop
            ).result(timeout=REQUEST_TIMEOUT_S)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=10.0)
            self._loop.close()


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    config: ServiceConfig | None = None,
    ready: threading.Event | None = None,
) -> None:
    """Run the HTTP front until interrupted (the ``repro serve`` loop)."""
    server = ServiceHTTPServer(host, port, config=config)
    bound_host, bound_port = server.address
    print(f"repro service listening on http://{bound_host}:{bound_port}")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print("repro service stopped")
