"""The in-process mining service: registry + queue + pool + metrics.

:class:`MiningService` is the whole async tier behind one object.  Embed
it directly::

    service = MiningService(ServiceConfig(workers=4))
    service.register_graph("mem", graph)          # or use file paths
    response = await service.handle(
        {"verb": "count", "graph": "mem", "pattern": "clique:3"}
    )
    await service.close()

or put the stdlib HTTP front (:mod:`repro.service.http`) in front of it.
Every request flows through the same pipeline: the
:class:`~repro.service.registry.SessionRegistry` resolves the graph key
to a shared :class:`~repro.core.session.MiningSession`, the
:class:`~repro.service.batching.BatchingQueue` coalesces compatible
concurrent queries into fused walks on the
:class:`~repro.runtime.pool.QueryPool`, and
:class:`~repro.service.metrics.ServiceMetrics` observes all of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.session import MiningSession
from ..graph.graph import DataGraph
from ..runtime.pool import DEFAULT_POOL_WORKERS, QueryPool
from . import handlers
from .batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    BatchingQueue,
)
from .metrics import ServiceMetrics
from .registry import DEFAULT_MAX_SESSIONS, SessionRegistry

__all__ = ["MiningService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of a service instance in one frozen spec."""

    workers: int = DEFAULT_POOL_WORKERS
    max_sessions: int = DEFAULT_MAX_SESSIONS
    ttl_seconds: float | None = None
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS
    max_batch: int = DEFAULT_MAX_BATCH
    batching: bool = True


class MiningService:
    """One mining service instance (embeddable; the HTTP front wraps it)."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.metrics = ServiceMetrics()
        self.registry = SessionRegistry(
            max_sessions=self.config.max_sessions,
            ttl_seconds=self.config.ttl_seconds,
        )
        self.pool = QueryPool(self.config.workers)
        self.queue = BatchingQueue(
            self.pool,
            self.metrics,
            max_wait_ms=self.config.max_wait_ms,
            max_batch=self.config.max_batch,
            enabled=self.config.batching,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # The dispatch surface
    # ------------------------------------------------------------------

    async def handle(self, payload) -> dict:
        """Serve one request dict; always returns a response envelope."""
        return await handlers.dispatch(self, payload)

    def register_graph(
        self, name: str, graph: Union[DataGraph, MiningSession]
    ) -> MiningSession:
        """Expose an in-memory graph to requests under ``name``."""
        return self.registry.register(name, graph)

    def stats(self) -> dict:
        """The metrics snapshot with registry counters folded in."""
        return self.metrics.snapshot(registry_stats=self.registry.stats())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Drain in-flight batches, evict every session, stop the pool."""
        if self._closed:
            return
        self._closed = True
        await self.queue.close()
        self.pool.shutdown(wait=True)
        self.registry.clear()

    async def __aenter__(self) -> "MiningService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MiningService(workers={self.config.workers}, "
            f"sessions={len(self.registry)}, "
            f"batching={self.config.batching})"
        )
