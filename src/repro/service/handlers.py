"""Verb handlers: JSON requests in, JSON responses out, errors structured.

One dispatch surface (:func:`dispatch`) serves every front — the HTTP
server, the in-process :class:`~repro.service.service.MiningService`
API, and the CLI smoke path all hand it the same plain-dict request::

    {"verb": "count", "graph": "web.rgx", "pattern": "clique:3",
     "options": {"edge_induced": false, "guard": "refuse"},
     "budget": {"deadline": 2.0}, "timeout_ms": 500}

and get back either ``{"ok": true, "verb": ..., "result": {...}}`` or a
structured error envelope ``{"ok": false, "error": {"code": ...,
"message": ...}}`` — guardrail refusals carry the probe's cost estimate,
budget stops carry the :class:`~repro.errors.PartialResult`, so a client
can distinguish "too expensive, don't retry" from "ran out of time,
retry with a bigger budget" without parsing prose.

Execution options are whitelisted (:data:`ALLOWED_OPTIONS`) to the
scalar knobs whose values are hashable — the batching queue keys its
buckets on them — and anything else in ``options`` is an
``invalid_request``, not a silent drop.  Per-request deadlines ride the
PR-7 guardrail bridge: ``timeout_ms`` tightens the request's
:class:`~repro.core.callbacks.Budget` deadline for ``count``/``match``
(forcing the solo path — a deadline is a per-request contract) and arms
a :class:`~repro.runtime.termination.DeadlineControl` for ``exists``.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING

from ..core.callbacks import Budget
from ..errors import (
    BudgetExceededError,
    GraphError,
    MatchingError,
    PatternError,
    PlanError,
    QueryCancelledError,
    QueryRefusedError,
    ReproError,
    WorkerCrashError,
)
from ..cli.parsing import parse_pattern_spec
from ..mining.motifs import motif_counts
from ..pattern.pattern import Pattern
from ..runtime.termination import DeadlineControl
from .batching import QueryJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import MiningService

__all__ = [
    "dispatch",
    "InvalidRequestError",
    "ALLOWED_OPTIONS",
    "DEFAULT_MATCH_LIMIT",
    "VERBS",
]

# Rows a ``match`` response returns unless the client asks for fewer.
# The count is always exact; the row list is the capped sample.
DEFAULT_MATCH_LIMIT = 1_000
MAX_MATCH_LIMIT = 100_000

# ExecOptions overrides a request may set: name -> accepted types.
# Hashable scalars only — the batching queue buckets on their values.
ALLOWED_OPTIONS: dict[str, tuple] = {
    "edge_induced": (bool,),
    "symmetry_breaking": (bool,),
    "engine": (str,),
    "frontier_chunk": (int,),
    "label_index": (bool,),
    "guard": (str,),
    "schedule": (str,),
    "chunk_hint": (int,),
    "plan": (str,),
    "approx": (int, float),
    "confidence": (int, float),
    "max_samples": (int,),
    "latency_budget": (int, float),
    "seed": (int,),
}

_BUDGET_FIELDS = (
    "deadline",
    "max_matches",
    "max_frontier_rows",
    "max_expanded_partials",
)

MOTIF_SIZES = (3, 4, 5)


class InvalidRequestError(ReproError):
    """The request envelope itself is malformed (before any mining)."""


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------


def _require_dict(payload) -> dict:
    if not isinstance(payload, dict):
        raise InvalidRequestError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _parse_options(payload: dict) -> dict:
    raw = payload.get("options", {})
    if not isinstance(raw, dict):
        raise InvalidRequestError("'options' must be an object")
    options: dict = {}
    for name, value in raw.items():
        accepted = ALLOWED_OPTIONS.get(name)
        if accepted is None:
            raise InvalidRequestError(
                f"unknown option {name!r}; allowed: "
                f"{', '.join(sorted(ALLOWED_OPTIONS))}"
            )
        # bool is an int subclass; reject True for int-typed knobs.
        if not isinstance(value, accepted) or (
            isinstance(value, bool) and bool not in accepted
        ):
            raise InvalidRequestError(
                f"option {name!r} expects "
                f"{' or '.join(t.__name__ for t in accepted)}, "
                f"got {value!r}"
            )
        options[name] = value
    return options


def _parse_budget(payload: dict) -> Budget | None:
    """The request's budget, with ``timeout_ms`` folded into the deadline."""
    raw = payload.get("budget")
    fields: dict = {}
    if raw is not None:
        if not isinstance(raw, dict):
            raise InvalidRequestError("'budget' must be an object")
        for name, value in raw.items():
            if name not in _BUDGET_FIELDS:
                raise InvalidRequestError(
                    f"unknown budget field {name!r}; allowed: "
                    f"{', '.join(_BUDGET_FIELDS)}"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise InvalidRequestError(
                    f"budget field {name!r} must be a number, got {value!r}"
                )
            fields[name] = value
    timeout_s = _parse_timeout(payload)
    if timeout_s is not None:
        deadline = fields.get("deadline")
        fields["deadline"] = (
            timeout_s if deadline is None else min(deadline, timeout_s)
        )
    if not fields:
        return None
    try:
        return Budget(**fields)
    except ValueError as exc:
        raise InvalidRequestError(str(exc)) from exc


def _parse_timeout(payload: dict) -> float | None:
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is None:
        return None
    if not isinstance(timeout_ms, (int, float)) or isinstance(
        timeout_ms, bool
    ) or timeout_ms <= 0:
        raise InvalidRequestError(
            f"'timeout_ms' must be a positive number, got {timeout_ms!r}"
        )
    return timeout_ms / 1e3


def _parse_pattern(payload: dict) -> Pattern:
    spec = payload.get("pattern")
    if not isinstance(spec, str) or not spec:
        raise InvalidRequestError("'pattern' must be a non-empty spec string")
    return parse_pattern_spec(spec)


def _parse_graph_key(payload: dict) -> str:
    key = payload.get("graph")
    if not isinstance(key, str) or not key:
        raise InvalidRequestError("'graph' must be a non-empty string")
    return key


def _parse_limit(payload: dict) -> int:
    limit = payload.get("limit", DEFAULT_MATCH_LIMIT)
    if not isinstance(limit, int) or isinstance(limit, bool) or limit < 0:
        raise InvalidRequestError(
            f"'limit' must be a non-negative integer, got {limit!r}"
        )
    return min(limit, MAX_MATCH_LIMIT)


def _edge_spec(pattern: Pattern) -> str:
    """CLI-grammar spec for a pattern (JSON-friendly motif table key)."""
    return "edges:" + ",".join(f"{u}-{v}" for u, v in pattern.edges())


def _plan_echo(service: "MiningService", session, pattern, options) -> dict | None:
    """The adaptive plan to echo in a response (``plan="auto"`` only).

    Computed *after* the query ran, so the probe is already cached on the
    session and this costs one dataclass walk, not a second probe.  The
    chosen engine/schedule are also folded into
    :class:`~repro.service.metrics.ServiceMetrics` so the ``stats`` verb
    shows what the planner has been deciding fleet-wide.
    """
    if options.get("plan") != "auto":
        return None
    from ..runtime import planner

    query_plan = planner.plan_query(session, pattern, session.options(**options))
    service.metrics.record_plan(query_plan.engine, query_plan.schedule)
    return query_plan.as_dict()


# ----------------------------------------------------------------------
# Verb handlers
# ----------------------------------------------------------------------


async def _handle_count(service: "MiningService", payload: dict) -> dict:
    key = _parse_graph_key(payload)
    pattern = _parse_pattern(payload)
    options = _parse_options(payload)
    budget = _parse_budget(payload)
    resolved = service.registry.resolve_key(key)
    session = service.registry.get(resolved)
    job = QueryJob("count", pattern, options=options, budget=budget)
    result = await service.queue.submit(resolved, session, job)
    response = {
        "graph": key,
        "pattern": payload["pattern"],
        "count": result.count,
    }
    if result.approx is not None:
        # The sampling tier answered — either the caller passed the
        # "approx" option, or the planner/guard auto-routed an exact
        # request under a latency budget (the downgrades-to-approx
        # gauge).
        response["approx"] = result.approx
        service.metrics.record_approx(auto="approx" not in options)
    plan_echo = _plan_echo(service, session, pattern, options)
    if plan_echo is not None:
        response["plan"] = plan_echo
    return response


async def _handle_match(service: "MiningService", payload: dict) -> dict:
    key = _parse_graph_key(payload)
    pattern = _parse_pattern(payload)
    options = _parse_options(payload)
    budget = _parse_budget(payload)
    limit = _parse_limit(payload)
    resolved = service.registry.resolve_key(key)
    session = service.registry.get(resolved)
    job = QueryJob(
        "match", pattern, options=options, limit=limit, budget=budget
    )
    result = await service.queue.submit(resolved, session, job)
    rows = result.rows if result.rows is not None else []
    response = {
        "graph": key,
        "pattern": payload["pattern"],
        "count": result.count,
        "matches": rows,
        "returned": len(rows),
        "limit": limit,
    }
    plan_echo = _plan_echo(service, session, pattern, options)
    if plan_echo is not None:
        response["plan"] = plan_echo
    return response


def _parse_approx_field(payload: dict, name: str, integral: bool = False):
    value = payload.get(name)
    if value is None:
        return None
    if integral:
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidRequestError(
                f"{name!r} must be an integer, got {value!r}"
            )
    elif not isinstance(value, (int, float)) or isinstance(value, bool):
        raise InvalidRequestError(f"{name!r} must be a number, got {value!r}")
    return value


async def _handle_approx_count(service: "MiningService", payload: dict) -> dict:
    """The first-class approximate verb: estimate with a CI envelope.

    Top-level fields ``rel_err`` (default 0.05), ``confidence`` (default
    0.95), ``max_samples`` and ``seed`` tune the estimator; the response
    carries the full :class:`~repro.mining.sampling.ApproxCount`
    envelope (``estimate``, ``stderr``, ``ci_low``/``ci_high``,
    ``rel_err_achieved``, ``samples``, ``early_stop``) alongside the
    rounded ``count``.  Approximate runs never coalesce with fused
    batches — the estimator owns its own frontier sampling.
    """
    from ..mining import sampling

    key = _parse_graph_key(payload)
    pattern = _parse_pattern(payload)
    options = _parse_options(payload)
    for name in ("approx", "latency_budget", "max_samples", "confidence", "seed"):
        if name in options:
            raise InvalidRequestError(
                f"option {name!r} conflicts with the approx_count verb; "
                "pass the estimator knobs as top-level request fields"
            )
    rel_err = _parse_approx_field(payload, "rel_err")
    if rel_err is None:
        rel_err = sampling.DEFAULT_REL_ERR
    confidence = _parse_approx_field(payload, "confidence")
    if confidence is None:
        confidence = sampling.DEFAULT_CONFIDENCE
    max_samples = _parse_approx_field(payload, "max_samples", integral=True)
    seed = _parse_approx_field(payload, "seed", integral=True)
    resolved = service.registry.resolve_key(key)
    session = service.registry.get(resolved)

    def estimate() -> dict:
        result = session.count(
            pattern,
            approx=rel_err,
            confidence=confidence,
            max_samples=max_samples,
            seed=seed,
            **options,
        )
        service.metrics.record_approx(auto=False)
        response = {
            "graph": key,
            "pattern": payload["pattern"],
            "count": int(result),
        }
        response.update(result.as_dict())
        return response

    return await service.queue.solo(estimate)


async def _handle_exists(service: "MiningService", payload: dict) -> dict:
    key = _parse_graph_key(payload)
    pattern = _parse_pattern(payload)
    options = _parse_options(payload)
    timeout_s = _parse_timeout(payload)
    resolved = service.registry.resolve_key(key)
    session = service.registry.get(resolved)

    def probe() -> dict:
        overrides = dict(options)
        control = None
        if timeout_s is not None:
            control = DeadlineControl(timeout_s)
            overrides["control"] = control
        found = session.exists(pattern, **overrides)
        if not found and control is not None and control.stopped:
            raise BudgetExceededError(
                f"exists probe deadline of {timeout_s}s elapsed"
            )
        return {
            "graph": key,
            "pattern": payload["pattern"],
            "exists": bool(found),
        }

    return await service.queue.solo(probe)


async def _handle_motifs(service: "MiningService", payload: dict) -> dict:
    key = _parse_graph_key(payload)
    size = payload.get("size")
    if size not in MOTIF_SIZES:
        raise InvalidRequestError(
            f"'size' must be one of {MOTIF_SIZES}, got {size!r}"
        )
    options = _parse_options(payload)
    for name in options:
        if name not in (
            "symmetry_breaking", "engine", "schedule", "chunk_hint", "plan"
        ):
            raise InvalidRequestError(
                f"option {name!r} is not supported by the motifs verb"
            )
    resolved = service.registry.resolve_key(key)
    session = service.registry.get(resolved)

    def census() -> dict:
        table = motif_counts(session, size, **options)
        return {
            "graph": key,
            "size": size,
            "counts": {
                _edge_spec(pattern): count for pattern, count in table.items()
            },
        }

    return await service.queue.solo(census)


async def _handle_stats(service: "MiningService", payload: dict) -> dict:
    return service.stats()


VERBS = {
    "count": _handle_count,
    "approx_count": _handle_approx_count,
    "match": _handle_match,
    "exists": _handle_exists,
    "motifs": _handle_motifs,
    "stats": _handle_stats,
}


# ----------------------------------------------------------------------
# Error mapping and dispatch
# ----------------------------------------------------------------------

# exception -> (error code, HTTP status the front should use)
_ERROR_CODES: tuple[tuple[type, str, int], ...] = (
    (InvalidRequestError, "invalid_request", 400),
    (QueryRefusedError, "query_refused", 429),
    (BudgetExceededError, "budget_exceeded", 504),
    (QueryCancelledError, "query_cancelled", 499),
    (WorkerCrashError, "worker_crash", 500),
    (PatternError, "invalid_pattern", 400),
    (PlanError, "plan_error", 400),
    (MatchingError, "invalid_query", 400),
    (FileNotFoundError, "unknown_graph", 404),
    (GraphError, "graph_error", 400),
)


def error_response(verb: str, exc: BaseException) -> dict:
    """The structured error envelope for ``exc`` (never raises)."""
    code, status = "internal_error", 500
    for exc_type, exc_code, exc_status in _ERROR_CODES:
        if isinstance(exc, exc_type):
            code, status = exc_code, exc_status
            break
    error: dict = {"code": code, "message": str(exc), "status": status}
    partial = getattr(exc, "partial", None)
    if partial is not None:
        error["partial"] = partial.as_dict()
    estimate = getattr(exc, "estimate", None)
    if estimate is not None:
        error["estimate"] = estimate.as_dict()
    return {"ok": False, "verb": verb, "error": error}


async def dispatch(service: "MiningService", payload) -> dict:
    """Serve one request end to end; always returns an envelope.

    Every path — success, guardrail refusal, malformed request, even an
    unexpected internal failure — produces a response dict and a metrics
    record; only event-loop cancellation propagates.
    """
    started = time.perf_counter()
    verb = None
    try:
        payload = _require_dict(payload)
        verb = payload.get("verb")
        handler = VERBS.get(verb)
        if handler is None:
            verb = verb if isinstance(verb, str) else None
            raise InvalidRequestError(
                f"unknown verb {payload.get('verb')!r}; expected one of "
                f"{', '.join(sorted(VERBS))}"
            )
        result = await handler(service, payload)
    except BaseException as exc:
        if isinstance(
            exc, (KeyboardInterrupt, SystemExit, asyncio.CancelledError)
        ):
            raise
        response = error_response(verb or "invalid", exc)
        service.metrics.record_request(
            verb or "invalid",
            time.perf_counter() - started,
            error=response["error"]["code"],
        )
        return response
    service.metrics.record_request(verb, time.perf_counter() - started)
    return {"ok": True, "verb": verb, "result": result}
