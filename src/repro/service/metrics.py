"""Service observability: per-verb counters, latency histograms, fusion gauges.

"Serves heavy traffic" is a claim about distributions, not averages, so
the service keeps enough structure to answer the operational questions
directly from one snapshot:

* **per-verb counters** — requests, errors by exception type;
* **latency histograms** — fixed log-spaced millisecond buckets per
  verb (cheap to update under a lock, mergeable across processes, good
  enough for p50/p99 estimates without storing samples);
* **batching gauges** — how many batches flushed at which size, how
  many requests rode a fused batch vs. ran solo, how many duplicate
  patterns were deduplicated away (a fused batch of one is just a slow
  solo run, so the *fusion batch rate* is the fraction of batched
  requests that actually shared a walk with a sibling);
* **planner gauges** — how many requests ran with ``plan="auto"`` and
  which engines/schedules the adaptive planner chose for them;
* **registry stats** — folded in at snapshot time from
  :meth:`~repro.service.registry.SessionRegistry.stats`.

Everything is exposed as one plain-dict :meth:`ServiceMetrics.snapshot`
— the ``stats`` verb and the HTTP ``/stats`` endpoint serialize it
as-is, and the bench asserts its fusion gauges.
"""

from __future__ import annotations

import bisect
import threading

__all__ = ["LatencyHistogram", "ServiceMetrics", "LATENCY_BUCKETS_MS"]

# Upper bounds (milliseconds) of the histogram buckets; one implicit
# overflow bucket catches everything beyond the last bound.  Log-spaced:
# interactive queries land in the front, runaway ones are still visible.
LATENCY_BUCKETS_MS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (milliseconds).

    Not thread-safe on its own; :class:`ServiceMetrics` serializes
    updates under its lock.
    """

    __slots__ = ("counts", "count", "sum_ms", "max_ms")

    def __init__(self):
        self.counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, ms: float) -> None:
        self.counts[bisect.bisect_left(LATENCY_BUCKETS_MS, ms)] += 1
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def quantile(self, q: float) -> float:
        """Upper bucket bound covering quantile ``q`` (0 when empty).

        A bucket-resolution estimate — good for dashboards and alerts;
        exact percentiles come from client-side timings (the bench).
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if i < len(LATENCY_BUCKETS_MS):
                    return LATENCY_BUCKETS_MS[i]
                return self.max_ms
        return self.max_ms

    def snapshot(self) -> dict:
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(LATENCY_BUCKETS_MS, self.counts)
        }
        buckets["overflow"] = self.counts[-1]
        return {
            "count": self.count,
            "sum_ms": self.sum_ms,
            "max_ms": self.max_ms,
            "p50_ms_le": self.quantile(0.50),
            "p99_ms_le": self.quantile(0.99),
            "buckets": buckets,
        }


class ServiceMetrics:
    """All service counters behind one lock, served as one snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._errors: dict[str, dict[str, int]] = {}
        self._latency: dict[str, LatencyHistogram] = {}
        # Batching gauges.
        self._batches = 0
        self._fused_batches = 0
        self._batched_requests = 0
        self._fused_requests = 0
        self._solo_requests = 0
        self._deduped_requests = 0
        self._batch_sizes: dict[int, int] = {}
        self._max_batch_size = 0
        # Adaptive-planner gauges (requests that ran with plan="auto").
        self._planned_queries = 0
        self._plan_engines: dict[str, int] = {}
        self._plan_schedules: dict[str, int] = {}
        # Approximate-tier gauges: every request answered from the
        # sampling tier, and the subset that got there by planner/guard
        # downgrade rather than by asking for it.
        self._approx_engagements = 0
        self._approx_downgrades = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_request(
        self, verb: str, seconds: float, error: str | None = None
    ) -> None:
        """One finished request: latency always, error type when failed."""
        ms = seconds * 1e3
        with self._lock:
            self._requests[verb] = self._requests.get(verb, 0) + 1
            hist = self._latency.get(verb)
            if hist is None:
                hist = self._latency[verb] = LatencyHistogram()
            hist.observe(ms)
            if error is not None:
                by_type = self._errors.setdefault(verb, {})
                by_type[error] = by_type.get(error, 0) + 1

    def record_batch(self, size: int, deduped: int = 0) -> None:
        """One flushed batch of ``size`` coalesced requests.

        ``deduped`` counts requests served off a sibling's identical
        pattern (they paid no walk of their own at all).
        """
        with self._lock:
            self._batches += 1
            self._batched_requests += size
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
            if size > self._max_batch_size:
                self._max_batch_size = size
            if size > 1:
                self._fused_batches += 1
                self._fused_requests += size
            self._deduped_requests += deduped

    def record_solo(self) -> None:
        """One request that bypassed batching (budgeted, disabled, ...)."""
        with self._lock:
            self._solo_requests += 1

    def record_plan(self, engine: str, schedule: str) -> None:
        """One adaptively-planned request and what the planner chose."""
        with self._lock:
            self._planned_queries += 1
            self._plan_engines[engine] = self._plan_engines.get(engine, 0) + 1
            self._plan_schedules[schedule] = (
                self._plan_schedules.get(schedule, 0) + 1
            )

    def record_approx(self, auto: bool = False) -> None:
        """One request answered by the approximate tier.

        ``auto=True`` marks a query the caller submitted as *exact* that
        the planner (latency budget) or guard (downgrade escalation)
        routed to sampling — the downgrades-to-approx gauge.
        """
        with self._lock:
            self._approx_engagements += 1
            if auto:
                self._approx_downgrades += 1

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self, registry_stats: dict | None = None) -> dict:
        """Every gauge as one JSON-ready dict (the ``stats`` payload)."""
        with self._lock:
            executed = self._batched_requests + self._solo_requests
            payload = {
                "requests": dict(self._requests),
                "errors": {v: dict(t) for v, t in self._errors.items()},
                "latency_ms": {
                    verb: hist.snapshot()
                    for verb, hist in self._latency.items()
                },
                "batching": {
                    "batches": self._batches,
                    "fused_batches": self._fused_batches,
                    "batched_requests": self._batched_requests,
                    "fused_requests": self._fused_requests,
                    "solo_requests": self._solo_requests,
                    "deduped_requests": self._deduped_requests,
                    "batch_sizes": {
                        str(size): count
                        for size, count in sorted(self._batch_sizes.items())
                    },
                    "max_batch_size": self._max_batch_size,
                    # The acceptance gauge: what fraction of executed
                    # mining requests shared a fused walk with a sibling.
                    "fusion_batch_rate": (
                        self._fused_requests / executed if executed else 0.0
                    ),
                },
                "planner": {
                    "planned_queries": self._planned_queries,
                    "engines": dict(self._plan_engines),
                    "schedules": dict(self._plan_schedules),
                },
                "approx": {
                    "engagements": self._approx_engagements,
                    "planner_downgrades": self._approx_downgrades,
                },
            }
        if registry_stats is not None:
            payload["registry"] = dict(registry_stats)
        return payload
