"""Cross-request fused batching: one shared walk serves many callers.

The PR-4 fusion machinery amortizes frontier work *within* one
multi-pattern call (a motif census, an FSM round).  A service sees the
same opportunity *across* callers: sixteen concurrent ``count`` requests
against the same graph are exactly a sixteen-member multi-pattern
workload — identical patterns collapse to one member, compatible ones
share first-level gathers, census-eligible ones ride the shared
non-induced basis.  :class:`BatchingQueue` turns concurrent requests
into that workload:

1. an admitted request lands in the **bucket** for its ``(graph key,
   execution-options signature)`` — only requests that would run with
   identical semantics may share a walk;
2. the first request of a bucket arms a flush timer (``max_wait_ms``);
   the bucket flushes early when it reaches ``max_batch``;
3. the flushed batch is handed to the worker pool as **one**
   :meth:`~repro.core.session.MiningSession.match_many` call (count
   members deduplicated by pattern signature, match members carrying
   capped row collectors), and per-request results demultiplex back to
   each caller's future.

**Error isolation.**  A batch member must never poison its siblings:

* admission guards run *per member* before the fused call — a refused
  request gets its :class:`~repro.errors.QueryRefusedError` while the
  rest proceed;
* budgeted / deadline-bearing requests are never coalesced (a budget is
  a per-request contract; one meter cannot span strangers' work) — they
  take the solo path;
* if the fused call itself fails, the batch falls back to per-request
  execution, so an error that only one member can trigger (say, a
  labeled pattern against an unlabeled graph) surfaces on that member
  alone.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.callbacks import Budget
from ..core.session import MiningSession
from ..errors import ReproError
from ..mining.sampling import ApproxCount
from ..pattern.pattern import Pattern
from ..runtime import guards
from ..runtime.pool import QueryPool
from .metrics import ServiceMetrics

__all__ = [
    "BatchingQueue",
    "QueryJob",
    "JobResult",
    "DEFAULT_MAX_WAIT_MS",
    "DEFAULT_MAX_BATCH",
]

# How long the first request of a bucket waits for company, and the
# batch size that flushes immediately.  2ms is far below any mining
# walk's latency yet long enough for a closed-loop burst to pile in.
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_MAX_BATCH = 64


@dataclass(frozen=True)
class QueryJob:
    """One mining request as the queue executes it.

    ``options`` are already-validated :class:`ExecOptions` overrides
    with hashable values (the handler layer whitelists them); ``budget``
    forces the solo path.  ``limit`` caps collected rows for ``match``.
    """

    kind: str  # "count" | "match"
    pattern: Pattern
    options: dict = field(default_factory=dict)
    limit: int | None = None
    budget: Budget | None = None


@dataclass
class JobResult:
    """What a job resolves to: the count, plus rows for match jobs.

    ``approx`` carries the :class:`~repro.mining.sampling.ApproxCount`
    envelope (estimate, stderr, ``ci_low``/``ci_high``,
    ``rel_err_achieved``) when the count was answered by the sampling
    tier — whether the caller asked (``approx`` option) or the planner
    auto-routed under a ``latency_budget``.
    """

    count: int
    rows: list | None = None
    approx: dict | None = None


class _Bucket:
    """Requests coalescing toward one fused walk."""

    __slots__ = ("session", "items", "timer")

    def __init__(self, session: MiningSession):
        self.session = session
        self.items: list[tuple[QueryJob, asyncio.Future]] = []
        self.timer: asyncio.Task | None = None


class BatchingQueue:
    """The admission queue in front of a service's worker pool."""

    def __init__(
        self,
        pool: QueryPool,
        metrics: ServiceMetrics,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_batch: int = DEFAULT_MAX_BATCH,
        enabled: bool = True,
    ):
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.pool = pool
        self.metrics = metrics
        self.max_wait_ms = max_wait_ms
        self.max_batch = max_batch
        self.enabled = enabled
        self._buckets: dict[tuple, _Bucket] = {}
        self._inflight: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(
        self, key: str, session: MiningSession, job: QueryJob
    ) -> JobResult:
        """Run ``job`` against ``session``, coalescing when possible.

        Raises whatever the execution raised for *this* job alone —
        sibling failures never propagate here.
        """
        if (
            not self.enabled
            or job.budget is not None
            or job.options.get("approx") is not None
            or job.options.get("latency_budget") is not None
        ):
            # Approximate counts never coalesce: the estimator owns its
            # own frontier sampling (a fused batch shares one exact
            # walk), and its stopping rule is a per-request contract
            # exactly like a budget.
            self.metrics.record_solo()
            return await self.pool.run(_run_job, session, job, job.options)

        bkey = (key, _options_signature(job.options))
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._buckets.get(bkey)
        if bucket is None:
            bucket = _Bucket(session)
            self._buckets[bkey] = bucket
            bucket.timer = asyncio.create_task(self._flush_after_wait(bkey))
        bucket.items.append((job, future))
        if len(bucket.items) >= self.max_batch:
            self._flush(bkey)
        return await future

    async def solo(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run a non-batchable verb (exists, motifs, ...) on the pool."""
        self.metrics.record_solo()
        return await self.pool.run(fn, *args)

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    async def _flush_after_wait(self, bkey: tuple) -> None:
        await asyncio.sleep(self.max_wait_ms / 1e3)
        self._flush(bkey, from_timer=True)

    def _flush(self, bkey: tuple, from_timer: bool = False) -> None:
        bucket = self._buckets.pop(bkey, None)
        if bucket is None:
            return
        if not from_timer and bucket.timer is not None:
            bucket.timer.cancel()
        task = asyncio.create_task(self._dispatch(bucket))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, bucket: _Bucket) -> None:
        jobs = [job for job, _ in bucket.items]
        try:
            outcomes, deduped = await self.pool.run(
                _run_batch, bucket.session, jobs
            )
        except BaseException as exc:  # pool is gone, loop shutting down, ...
            for _, future in bucket.items:
                if not future.done():
                    future.set_exception(exc)
            return
        self.metrics.record_batch(len(jobs), deduped)
        for (_, future), outcome in zip(bucket.items, outcomes):
            if future.done():  # caller gave up (cancelled) meanwhile
                continue
            if isinstance(outcome, BaseException):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)

    async def close(self) -> None:
        """Flush every pending bucket and wait for in-flight batches."""
        for bkey in list(self._buckets):
            self._flush(bkey)
        if self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )


def _options_signature(options: dict) -> tuple:
    """The hashable identity of a request's execution semantics."""
    return tuple(sorted(options.items()))


# ----------------------------------------------------------------------
# Worker-side execution (runs on QueryPool threads)
# ----------------------------------------------------------------------


def _run_job(session: MiningSession, job: QueryJob, run_options: dict):
    """One job on its own: the solo path and the isolation fallback."""
    overrides = dict(run_options)
    if job.budget is not None:
        overrides["budget"] = job.budget
    if job.kind == "count":
        value = session.count(job.pattern, **overrides)
        if isinstance(value, ApproxCount):
            return JobResult(count=int(value), approx=value.as_dict())
        return JobResult(count=int(value))
    rows: list[list[int]] = []
    limit = job.limit

    def collect(match) -> None:
        if limit is None or len(rows) < limit:
            rows.append(list(match.mapping))

    total = session.match(job.pattern, collect, **overrides)
    return JobResult(count=int(total), rows=rows)


def _run_batch(session: MiningSession, jobs: list[QueryJob]):
    """Execute one coalesced batch; per-job outcomes, never one verdict.

    Returns ``(outcomes, deduped)`` where ``outcomes[i]`` is the
    :class:`JobResult` or the exception for ``jobs[i]``, and ``deduped``
    counts requests that shared a sibling's identical count member.
    """
    outcomes: list[Any] = [None] * len(jobs)
    shared = jobs[0].options  # all bucket members share one signature
    run_options = dict(shared)
    guard = run_options.pop("guard", "off")

    # Per-member admission: refusals surface on their own member only,
    # and a downgrade tightens the shared walk's frontier chunk.
    admitted: list[int] = []
    if guard != "off":
        exec_opts = session.options(**shared)
        for i, job in enumerate(jobs):
            try:
                estimate = session._guard_estimate(job.pattern, exec_opts)
                decided = guards.admit(estimate, exec_opts)
            except ReproError as exc:
                outcomes[i] = exc
                continue
            admitted.append(i)
            if decided.frontier_chunk is not None:
                current = run_options.get("frontier_chunk")
                run_options["frontier_chunk"] = (
                    decided.frontier_chunk
                    if current is None
                    else min(current, decided.frontier_chunk)
                )
    else:
        admitted = list(range(len(jobs)))

    # Build the fused workload: count members dedup by exact pattern
    # signature (concurrent identical queries pay one walk), match
    # members each carry their own capped row collector.
    patterns: list[Pattern] = []
    callbacks: list = []
    member_jobs: list[list[int]] = []
    collected_rows: dict[int, list] = {}
    count_member: dict[tuple, int] = {}
    for i in admitted:
        job = jobs[i]
        if job.kind == "count":
            signature = job.pattern.signature()
            member = count_member.get(signature)
            if member is None:
                count_member[signature] = len(patterns)
                patterns.append(job.pattern)
                callbacks.append(None)
                member_jobs.append([i])
            else:
                member_jobs[member].append(i)
            continue
        rows: list[list[int]] = []
        limit = job.limit

        def collect(match, _rows=rows, _limit=limit) -> None:
            if _limit is None or len(_rows) < _limit:
                _rows.append(list(match.mapping))

        collected_rows[i] = rows
        patterns.append(job.pattern)
        callbacks.append(collect)
        member_jobs.append([i])

    deduped = len(admitted) - len(patterns)
    if not patterns:
        return outcomes, 0

    try:
        totals = session.match_many(patterns, callbacks, **run_options)
    except Exception:
        # Isolation fallback: something in the fused call failed, and
        # blame may belong to one member only.  Re-run each admitted job
        # alone so errors land exactly where they arise.
        for i in admitted:
            try:
                outcomes[i] = _run_job(session, jobs[i], run_options)
            except Exception as exc:
                outcomes[i] = exc
        return outcomes, 0

    for member, owners in enumerate(member_jobs):
        for i in owners:
            outcomes[i] = JobResult(
                count=int(totals[member]), rows=collected_rows.get(i)
            )
    return outcomes, deduped
