"""``python -m repro.service`` — run the HTTP front from the command line."""

from __future__ import annotations

import argparse
import sys

from .http import DEFAULT_HOST, DEFAULT_PORT, serve
from .service import ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve mining queries over HTTP/JSON.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"TCP port (0 picks a free one; default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--workers", type=int, default=ServiceConfig.workers,
        help="mining worker threads",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=ServiceConfig.max_sessions,
        help="resident graph sessions before LRU eviction",
    )
    parser.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="evict sessions idle longer than this",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=ServiceConfig.max_wait_ms,
        help="batching window before a bucket flushes",
    )
    parser.add_argument(
        "--max-batch", type=int, default=ServiceConfig.max_batch,
        help="requests that flush a bucket immediately",
    )
    parser.add_argument(
        "--no-batching", action="store_true",
        help="run every request solo (ablation / debugging)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        workers=args.workers,
        max_sessions=args.max_sessions,
        ttl_seconds=args.ttl,
        max_wait_ms=args.max_wait_ms,
        max_batch=args.max_batch,
        batching=not args.no_batching,
    )
    serve(args.host, args.port, config=config)
    return 0


if __name__ == "__main__":
    sys.exit(main())
