"""In-memory data graph with sorted adjacency lists.

The :class:`DataGraph` is Peregrine's substrate (§5.5 of the paper): an
undirected graph stored as per-vertex sorted adjacency lists.  Vertex ids are
dense integers ``0..n-1``.  Two properties matter for the matching engine:

* adjacency lists are sorted, so candidate generation can use binary search
  to restrict candidates to a partial-order-compatible range, and set
  intersections / differences run in merge fashion;
* vertices are (optionally) *degree-ordered* — renamed so that
  ``u < v  iff  degree(u) <= degree(v)`` (ties broken by original id), the
  ordering §5.2 uses for early pruning and load balancing.

Two backings share the same interface:

* **list** — per-vertex Python lists, built by the constructor.  The
  default for generated and hand-built graphs.
* **array** — a CSR pair (``offsets``/``neighbors`` int64 arrays, plus an
  optional label array) wrapped zero-copy, built by
  :meth:`DataGraph.from_csr`.  This is how graphs loaded from the mmap
  ``.rgx`` store (:mod:`repro.graph.binary_io`) avoid exploding into
  Python lists: ``neighbors()`` returns array slices, and the engines'
  CSR views alias the same memory.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import GraphError

__all__ = ["DataGraph"]


class DataGraph:
    """Undirected data graph with sorted adjacency lists and optional labels.

    Instances are immutable once constructed; build them with
    :func:`repro.graph.builder.from_edges`, the loaders in
    :mod:`repro.graph.io`, or :meth:`from_csr` for array-backed graphs.

    Parameters
    ----------
    adjacency:
        Sequence of sorted, duplicate-free neighbor lists, one per vertex.
        Must be symmetric (``v in adjacency[u]`` iff ``u in adjacency[v]``).
    labels:
        Optional per-vertex integer labels (``None`` for an unlabeled graph).
    name:
        Optional human-readable dataset name (used in reports).
    validate:
        When true (default), verify sortedness and symmetry; disable only
        for trusted, pre-validated input (e.g. the builder's output).
    """

    __slots__ = (
        "_adj",
        "_labels",
        "_num_edges",
        "name",
        "_label_index",
        "_ordered_cache",
        "_accel_view",
        "_session_cache",
        "_offsets",
        "_flat",
        "_degree_sorted",
        "_store",
    )

    def __init__(
        self,
        adjacency: Sequence[Sequence[int]],
        labels: Sequence[int] | None = None,
        name: str = "graph",
        validate: bool = True,
    ):
        self._adj: list[list[int]] | None = [list(nbrs) for nbrs in adjacency]
        self._labels = list(labels) if labels is not None else None
        self.name = name
        self._label_index: dict[int, list[int]] | None = None
        self._ordered_cache: tuple["DataGraph", Sequence[int]] | None = None
        # Cached CSR view for the vectorized engine; owned and populated
        # by repro.core.accel.shared_view (graphs are immutable, so the
        # cache can never go stale).
        self._accel_view = None
        # Shared default MiningSession; owned and populated by
        # repro.core.session.MiningSession.for_graph so one-shot api
        # calls share plan/start caches across queries.
        self._session_cache = None
        # Array-backing state; unused in list mode.
        self._offsets = None
        self._flat = None
        self._degree_sorted: bool | None = None
        self._store = None

        if self._labels is not None and len(self._labels) != len(self._adj):
            raise GraphError(
                f"labels length {len(self._labels)} != vertex count {len(self._adj)}"
            )
        if validate:
            self._validate()
        self._num_edges = sum(len(nbrs) for nbrs in self._adj) // 2

    @classmethod
    def from_csr(
        cls,
        offsets,
        neighbors,
        labels=None,
        name: str = "graph",
        validate: bool = False,
        degree_sorted: bool | None = None,
        store=None,
    ) -> "DataGraph":
        """Wrap CSR arrays zero-copy as an **array-backed** graph.

        ``offsets`` has ``n + 1`` entries with ``offsets[0] == 0``;
        ``neighbors`` concatenates the sorted per-vertex rows.  The
        arrays (numpy ``int64``, possibly memory-mapped) are aliased,
        not copied, so a graph loaded from the ``.rgx`` store does only
        O(1) Python work here.  ``degree_sorted`` records whether ids
        already increase with degree (``None`` = unknown, checked
        lazily); ``store`` optionally pins the backing
        :class:`~repro.graph.binary_io.GraphStore` so the parallel
        runtime can re-open the same file in workers.
        """
        import numpy as np

        offsets = np.asarray(offsets, dtype=np.int64)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1:
            raise GraphError("offsets must be a 1-d array with >= 1 entry")
        n = offsets.size - 1
        if labels is not None and labels.size != n:
            raise GraphError(
                f"labels length {labels.size} != vertex count {n}"
            )
        obj = cls.__new__(cls)
        obj._adj = None
        obj._labels = labels
        obj.name = name
        obj._label_index = None
        obj._ordered_cache = None
        obj._accel_view = None
        obj._session_cache = None
        obj._offsets = offsets
        obj._flat = neighbors
        obj._degree_sorted = degree_sorted
        obj._store = store
        obj._num_edges = int(neighbors.size) // 2
        if validate:
            obj._validate_csr()
        return obj

    def _validate(self) -> None:
        n = len(self._adj)
        edge_set = set()
        for u, nbrs in enumerate(self._adj):
            prev = -1
            for v in nbrs:
                if not 0 <= v < n:
                    raise GraphError(f"vertex {u} has out-of-range neighbor {v}")
                if v == u:
                    raise GraphError(f"self-loop at vertex {u}")
                if v <= prev:
                    raise GraphError(f"adjacency of {u} is not sorted/unique")
                prev = v
                edge_set.add((u, v))
        for u, v in edge_set:
            if (v, u) not in edge_set:
                raise GraphError(f"edge ({u},{v}) missing reverse direction")

    def _validate_csr(self) -> None:
        """Vectorized structural checks for array-backed graphs."""
        import numpy as np

        offsets, flat = self._offsets, self._flat
        n = offsets.size - 1
        if offsets[0] != 0 or offsets[-1] != flat.size:
            raise GraphError("offsets do not span the neighbor array")
        degrees = np.diff(offsets)
        if degrees.size and int(degrees.min()) < 0:
            raise GraphError("offsets are not non-decreasing")
        if flat.size:
            if int(flat.min()) < 0 or int(flat.max()) >= n:
                raise GraphError("neighbor id out of range")
        owners = np.repeat(np.arange(n, dtype=np.int64), degrees)
        if np.any(owners == flat):
            raise GraphError("self-loop in neighbor array")
        # Strictly increasing inside each row: every in-row step rises.
        inc = np.diff(flat) > 0
        row_start = np.zeros(flat.size, dtype=bool)
        starts = offsets[1:-1]
        row_start[starts[starts < flat.size]] = True
        if flat.size > 1 and not np.all(inc | row_start[1:]):
            raise GraphError("adjacency rows are not sorted/unique")
        # Symmetry: the multiset of (u, v) keys equals its transpose.
        stride = np.int64(max(n, 1))
        keys = owners * stride + flat
        if not np.array_equal(np.sort(flat * stride + owners), keys):
            raise GraphError("edge missing reverse direction")

    # ------------------------------------------------------------------
    # Backing introspection
    # ------------------------------------------------------------------

    @property
    def backing(self) -> str:
        """``"list"`` or ``"array"`` — which storage backs this graph."""
        return "list" if self._adj is not None else "array"

    @property
    def backing_store(self):
        """The :class:`GraphStore` this graph maps, or ``None``."""
        return self._store

    def csr_arrays(self):
        """``(offsets, neighbors, labels)`` for array-backed graphs.

        Returns ``None`` in list mode; callers that need CSR for a
        list-backed graph derive it themselves (see
        :func:`repro.graph.binary_io.graph_csr` and
        :class:`repro.core.accel.AcceleratedGraphView`).
        """
        if self._adj is not None:
            return None
        return self._offsets, self._flat, self._labels

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices |V(G)|."""
        if self._adj is not None:
            return len(self._adj)
        return self._offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E(G)|."""
        return self._num_edges

    @property
    def is_labeled(self) -> bool:
        """Whether the graph carries vertex labels."""
        return self._labels is not None

    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(self.num_vertices)

    def neighbors(self, u: int) -> Sequence[int]:
        """Sorted neighbors of ``u`` (list or array slice; do not mutate)."""
        if self._adj is not None:
            return self._adj[u]
        return self._flat[self._offsets[u]:self._offsets[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        if self._adj is not None:
            return len(self._adj[u])
        return int(self._offsets[u + 1] - self._offsets[u])

    def label(self, u: int) -> int | None:
        """Label of vertex ``u`` (``None`` when unlabeled)."""
        return int(self._labels[u]) if self._labels is not None else None

    def labels(self):
        """The full label sequence, or ``None`` for unlabeled graphs."""
        return self._labels

    def num_labels(self) -> int:
        """Number of distinct labels |L(G)| (0 for unlabeled graphs)."""
        if self._labels is None:
            return 0
        return len(set(int(lab) for lab in self._labels))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) exists, via binary search."""
        if u == v:
            return False
        nbrs = self.neighbors(u)
        i = bisect_left(nbrs, v)
        return i < len(nbrs) and nbrs[i] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as (u, v) pairs with u < v."""
        for u in range(self.num_vertices):
            nbrs = self.neighbors(u)
            lo = bisect_right(nbrs, u)
            for v in nbrs[lo:]:
                yield (u, int(v))

    def max_degree(self) -> int:
        """Maximum vertex degree (0 for the empty graph)."""
        if self._adj is not None:
            return max((len(nbrs) for nbrs in self._adj), default=0)
        import numpy as np

        if self._offsets.size <= 1:
            return 0
        return int(np.diff(self._offsets).max())

    def avg_degree(self) -> float:
        """Average vertex degree (0.0 for the empty graph)."""
        n = self.num_vertices
        if not n:
            return 0.0
        return 2.0 * self._num_edges / n

    # ------------------------------------------------------------------
    # Range-restricted access (partial-order support, §5.1 'PO' stage)
    # ------------------------------------------------------------------

    def neighbors_above(self, u: int, bound: int) -> Sequence[int]:
        """Neighbors of ``u`` with id strictly greater than ``bound``."""
        nbrs = self.neighbors(u)
        return nbrs[bisect_right(nbrs, bound):]

    def neighbors_below(self, u: int, bound: int) -> Sequence[int]:
        """Neighbors of ``u`` with id strictly less than ``bound``."""
        nbrs = self.neighbors(u)
        return nbrs[: bisect_left(nbrs, bound)]

    def neighbors_between(self, u: int, lo: int, hi: int) -> Sequence[int]:
        """Neighbors v of ``u`` with ``lo < v < hi`` (exclusive bounds).

        ``lo=-1`` / ``hi=num_vertices`` express one-sided or absent bounds.
        """
        nbrs = self.neighbors(u)
        return nbrs[bisect_right(nbrs, lo): bisect_left(nbrs, hi)]

    # ------------------------------------------------------------------
    # Label index (used by the G-Miner-like baseline and labeled matching)
    # ------------------------------------------------------------------

    def vertices_with_label(self, label: int) -> list[int]:
        """Sorted vertex ids carrying ``label`` (empty for unlabeled graphs).

        The index is built lazily on first use and cached — fully in
        list mode, per queried label in array mode (one vectorized scan
        each, so an mmap-backed load never pays for labels it does not
        filter on).
        """
        if self._labels is None:
            return []
        if self._adj is not None:
            if self._label_index is None:
                index: dict[int, list[int]] = {}
                for v, lab in enumerate(self._labels):
                    index.setdefault(lab, []).append(v)
                self._label_index = index
            return self._label_index.get(label, [])
        if self._label_index is None:
            self._label_index = {}
        cached = self._label_index.get(label)
        if cached is None:
            import numpy as np

            cached = np.flatnonzero(self._labels == label).tolist()
            self._label_index[label] = cached
        return cached

    # ------------------------------------------------------------------
    # Degree ordering (§5.2)
    # ------------------------------------------------------------------

    def degree_ordered(self) -> tuple["DataGraph", Sequence[int]]:
        """Return a copy renamed so ids increase with degree, plus the map.

        In the renamed graph ``u < v`` implies ``degree(u) <= degree(v)``.
        Returns ``(graph, old_of_new)`` where ``old_of_new[new_id]`` is the
        original id, so callers can translate matches back.  The result is
        cached: repeated calls return the same objects.

        Array-backed graphs take a vectorized path, and a graph whose
        backing store already recorded the degree-sorted flag returns
        *itself* with an identity map — the zero-copy fast path that
        makes reopening a converted ``.rgx`` file O(1).
        """
        if self._ordered_cache is not None:
            return self._ordered_cache
        if self._adj is None:
            self._ordered_cache = self._degree_ordered_csr()
            return self._ordered_cache
        n = len(self._adj)
        order = sorted(range(n), key=lambda v: (len(self._adj[v]), v))
        new_of_old = [0] * n
        for new_id, old_id in enumerate(order):
            new_of_old[old_id] = new_id
        adjacency = [
            sorted(new_of_old[w] for w in self._adj[old_id]) for old_id in order
        ]
        labels = (
            [self._labels[old_id] for old_id in order]
            if self._labels is not None
            else None
        )
        renamed = DataGraph(adjacency, labels, name=self.name, validate=False)
        self._ordered_cache = (renamed, order)
        return renamed, order

    def _degree_ordered_csr(self) -> tuple["DataGraph", Sequence[int]]:
        """Vectorized degree ordering over the CSR backing."""
        import numpy as np

        offsets, flat = self._offsets, self._flat
        n = offsets.size - 1
        degrees = np.diff(offsets)
        if self.is_degree_ordered():
            return self, range(n)
        order = np.argsort(degrees, kind="stable")
        new_of_old = np.empty(n, dtype=np.int64)
        new_of_old[order] = np.arange(n, dtype=np.int64)
        new_degrees = degrees[order]
        new_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(new_degrees, out=new_offsets[1:])
        # Gather each new row from its old position, rename the values,
        # then re-sort rows in one pass via globally ordered (row, value)
        # keys — no per-vertex Python loop anywhere.
        row_ids = np.repeat(np.arange(n, dtype=np.int64), new_degrees)
        local = np.arange(flat.size, dtype=np.int64) - np.repeat(
            new_offsets[:-1], new_degrees
        )
        gathered = flat[offsets[order][row_ids] + local]
        stride = np.int64(max(n, 1))
        keys = row_ids * stride + new_of_old[gathered]
        keys.sort()
        new_flat = keys - row_ids * stride
        new_labels = self._labels[order] if self._labels is not None else None
        renamed = DataGraph.from_csr(
            new_offsets, new_flat, new_labels, name=self.name, degree_sorted=True
        )
        return renamed, order.tolist()

    def is_degree_ordered(self) -> bool:
        """Whether vertex ids already increase with degree."""
        if self._adj is not None:
            degs = [len(nbrs) for nbrs in self._adj]
            return all(degs[i] <= degs[i + 1] for i in range(len(degs) - 1))
        if self._degree_sorted is None:
            import numpy as np

            degrees = np.diff(self._offsets)
            self._degree_sorted = bool(np.all(degrees[:-1] <= degrees[1:]))
        return self._degree_sorted

    # ------------------------------------------------------------------
    # Conversions & misc
    # ------------------------------------------------------------------

    def subgraph_edges(self, vertices: Iterable[int]) -> list[tuple[int, int]]:
        """Edges of the subgraph induced by ``vertices`` (u < v pairs)."""
        vset = sorted(set(vertices))
        found = []
        for i, u in enumerate(vset):
            for v in vset[i + 1:]:
                if self.has_edge(u, v):
                    found.append((u, v))
        return found

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (for tests and cross-validation)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        if self._labels is not None:
            nx.set_node_attributes(
                g, {v: int(lab) for v, lab in enumerate(self._labels)}, "label"
            )
        return g

    def memory_bytes(self) -> int:
        """Rough byte footprint of the adjacency structure (8 B per entry).

        Used by the Fig 13 memory accounting; deliberately counts the
        *logical* CSR size rather than CPython object overhead so numbers
        are comparable with the baselines' embedding stores.
        """
        n = self.num_vertices
        if self._adj is not None:
            entries = sum(len(nbrs) for nbrs in self._adj) + n
        else:
            entries = int(self._flat.size) + n
        if self._labels is not None:
            entries += n
        return 8 * entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lab = f", labels={self.num_labels()}" if self.is_labeled else ""
        return (
            f"DataGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}{lab})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataGraph):
            return NotImplemented
        if self._adj is not None and other._adj is not None:
            return self._adj == other._adj and self._labels == other._labels
        if (
            self.num_vertices != other.num_vertices
            or self.num_edges != other.num_edges
        ):
            return False
        mine, theirs = self.labels(), other.labels()
        if (mine is None) != (theirs is None):
            return False
        if mine is not None and [int(x) for x in mine] != [int(x) for x in theirs]:
            return False
        return all(
            [int(x) for x in self.neighbors(u)]
            == [int(x) for x in other.neighbors(u)]
            for u in range(self.num_vertices)
        )

    def __hash__(self):  # graphs are mutable-free but big; identity hash
        return id(self)

    def label_histogram(self) -> Mapping[int, int]:
        """Histogram of label frequencies (empty for unlabeled graphs)."""
        hist: dict[int, int] = {}
        if self._labels is None:
            return hist
        if self._adj is not None:
            for lab in self._labels:
                hist[lab] = hist.get(lab, 0) + 1
            return hist
        import numpy as np

        values, counts = np.unique(self._labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}
