"""In-memory data graph with sorted adjacency lists.

The :class:`DataGraph` is Peregrine's substrate (§5.5 of the paper): an
undirected graph stored as per-vertex sorted adjacency lists.  Vertex ids are
dense integers ``0..n-1``.  Two properties matter for the matching engine:

* adjacency lists are sorted, so candidate generation can use binary search
  to restrict candidates to a partial-order-compatible range, and set
  intersections / differences run in merge fashion;
* vertices are (optionally) *degree-ordered* — renamed so that
  ``u < v  iff  degree(u) <= degree(v)`` (ties broken by original id), the
  ordering §5.2 uses for early pruning and load balancing.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import GraphError

__all__ = ["DataGraph"]


class DataGraph:
    """Undirected data graph with sorted adjacency lists and optional labels.

    Instances are immutable once constructed; build them with
    :func:`repro.graph.builder.from_edges` or the loaders in
    :mod:`repro.graph.io`.

    Parameters
    ----------
    adjacency:
        Sequence of sorted, duplicate-free neighbor lists, one per vertex.
        Must be symmetric (``v in adjacency[u]`` iff ``u in adjacency[v]``).
    labels:
        Optional per-vertex integer labels (``None`` for an unlabeled graph).
    name:
        Optional human-readable dataset name (used in reports).
    validate:
        When true (default), verify sortedness and symmetry; disable only
        for trusted, pre-validated input (e.g. the builder's output).
    """

    __slots__ = (
        "_adj",
        "_labels",
        "_num_edges",
        "name",
        "_label_index",
        "_ordered_cache",
        "_accel_view",
        "_session_cache",
    )

    def __init__(
        self,
        adjacency: Sequence[Sequence[int]],
        labels: Sequence[int] | None = None,
        name: str = "graph",
        validate: bool = True,
    ):
        self._adj: list[list[int]] = [list(nbrs) for nbrs in adjacency]
        self._labels: list[int] | None = list(labels) if labels is not None else None
        self.name = name
        self._label_index: dict[int, list[int]] | None = None
        self._ordered_cache: tuple["DataGraph", list[int]] | None = None
        # Cached CSR view for the vectorized engine; owned and populated
        # by repro.core.accel.shared_view (graphs are immutable, so the
        # cache can never go stale).
        self._accel_view = None
        # Shared default MiningSession; owned and populated by
        # repro.core.session.MiningSession.for_graph so one-shot api
        # calls share plan/start caches across queries.
        self._session_cache = None

        if self._labels is not None and len(self._labels) != len(self._adj):
            raise GraphError(
                f"labels length {len(self._labels)} != vertex count {len(self._adj)}"
            )
        if validate:
            self._validate()
        self._num_edges = sum(len(nbrs) for nbrs in self._adj) // 2

    def _validate(self) -> None:
        n = len(self._adj)
        edge_set = set()
        for u, nbrs in enumerate(self._adj):
            prev = -1
            for v in nbrs:
                if not 0 <= v < n:
                    raise GraphError(f"vertex {u} has out-of-range neighbor {v}")
                if v == u:
                    raise GraphError(f"self-loop at vertex {u}")
                if v <= prev:
                    raise GraphError(f"adjacency of {u} is not sorted/unique")
                prev = v
                edge_set.add((u, v))
        for u, v in edge_set:
            if (v, u) not in edge_set:
                raise GraphError(f"edge ({u},{v}) missing reverse direction")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices |V(G)|."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E(G)|."""
        return self._num_edges

    @property
    def is_labeled(self) -> bool:
        """Whether the graph carries vertex labels."""
        return self._labels is not None

    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(len(self._adj))

    def neighbors(self, u: int) -> list[int]:
        """Sorted neighbor list of ``u`` (do not mutate)."""
        return self._adj[u]

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return len(self._adj[u])

    def label(self, u: int) -> int | None:
        """Label of vertex ``u`` (``None`` when unlabeled)."""
        return self._labels[u] if self._labels is not None else None

    def labels(self) -> list[int] | None:
        """The full label list, or ``None`` for unlabeled graphs."""
        return self._labels

    def num_labels(self) -> int:
        """Number of distinct labels |L(G)| (0 for unlabeled graphs)."""
        return len(set(self._labels)) if self._labels is not None else 0

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) exists, via binary search."""
        if u == v:
            return False
        nbrs = self._adj[u]
        i = bisect_left(nbrs, v)
        return i < len(nbrs) and nbrs[i] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as (u, v) pairs with u < v."""
        for u, nbrs in enumerate(self._adj):
            lo = bisect_right(nbrs, u)
            for v in nbrs[lo:]:
                yield (u, v)

    def max_degree(self) -> int:
        """Maximum vertex degree (0 for the empty graph)."""
        return max((len(nbrs) for nbrs in self._adj), default=0)

    def avg_degree(self) -> float:
        """Average vertex degree (0.0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    # ------------------------------------------------------------------
    # Range-restricted access (partial-order support, §5.1 'PO' stage)
    # ------------------------------------------------------------------

    def neighbors_above(self, u: int, bound: int) -> list[int]:
        """Neighbors of ``u`` with id strictly greater than ``bound``."""
        nbrs = self._adj[u]
        return nbrs[bisect_right(nbrs, bound):]

    def neighbors_below(self, u: int, bound: int) -> list[int]:
        """Neighbors of ``u`` with id strictly less than ``bound``."""
        nbrs = self._adj[u]
        return nbrs[: bisect_left(nbrs, bound)]

    def neighbors_between(self, u: int, lo: int, hi: int) -> list[int]:
        """Neighbors v of ``u`` with ``lo < v < hi`` (exclusive bounds).

        ``lo=-1`` / ``hi=num_vertices`` express one-sided or absent bounds.
        """
        nbrs = self._adj[u]
        return nbrs[bisect_right(nbrs, lo): bisect_left(nbrs, hi)]

    # ------------------------------------------------------------------
    # Label index (used by the G-Miner-like baseline and labeled matching)
    # ------------------------------------------------------------------

    def vertices_with_label(self, label: int) -> list[int]:
        """Sorted vertex ids carrying ``label`` (empty for unlabeled graphs).

        The index is built lazily on first use and cached.
        """
        if self._labels is None:
            return []
        if self._label_index is None:
            index: dict[int, list[int]] = {}
            for v, lab in enumerate(self._labels):
                index.setdefault(lab, []).append(v)
            self._label_index = index
        return self._label_index.get(label, [])

    # ------------------------------------------------------------------
    # Degree ordering (§5.2)
    # ------------------------------------------------------------------

    def degree_ordered(self) -> tuple["DataGraph", list[int]]:
        """Return a copy renamed so ids increase with degree, plus the map.

        In the renamed graph ``u < v`` implies ``degree(u) <= degree(v)``.
        Returns ``(graph, old_of_new)`` where ``old_of_new[new_id]`` is the
        original id, so callers can translate matches back.  The result is
        cached: repeated calls return the same objects.
        """
        if self._ordered_cache is not None:
            return self._ordered_cache
        n = len(self._adj)
        order = sorted(range(n), key=lambda v: (len(self._adj[v]), v))
        new_of_old = [0] * n
        for new_id, old_id in enumerate(order):
            new_of_old[old_id] = new_id
        adjacency = [
            sorted(new_of_old[w] for w in self._adj[old_id]) for old_id in order
        ]
        labels = (
            [self._labels[old_id] for old_id in order]
            if self._labels is not None
            else None
        )
        renamed = DataGraph(adjacency, labels, name=self.name, validate=False)
        self._ordered_cache = (renamed, order)
        return renamed, order

    def is_degree_ordered(self) -> bool:
        """Whether vertex ids already increase with degree."""
        degs = [len(nbrs) for nbrs in self._adj]
        return all(degs[i] <= degs[i + 1] for i in range(len(degs) - 1))

    # ------------------------------------------------------------------
    # Conversions & misc
    # ------------------------------------------------------------------

    def subgraph_edges(self, vertices: Iterable[int]) -> list[tuple[int, int]]:
        """Edges of the subgraph induced by ``vertices`` (u < v pairs)."""
        vset = sorted(set(vertices))
        found = []
        for i, u in enumerate(vset):
            for v in vset[i + 1:]:
                if self.has_edge(u, v):
                    found.append((u, v))
        return found

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (for tests and cross-validation)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        if self._labels is not None:
            nx.set_node_attributes(
                g, {v: lab for v, lab in enumerate(self._labels)}, "label"
            )
        return g

    def memory_bytes(self) -> int:
        """Rough byte footprint of the adjacency structure (8 B per entry).

        Used by the Fig 13 memory accounting; deliberately counts the
        *logical* CSR size rather than CPython object overhead so numbers
        are comparable with the baselines' embedding stores.
        """
        entries = sum(len(nbrs) for nbrs in self._adj) + len(self._adj)
        if self._labels is not None:
            entries += len(self._labels)
        return 8 * entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lab = f", labels={self.num_labels()}" if self.is_labeled else ""
        return (
            f"DataGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}{lab})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataGraph):
            return NotImplemented
        return self._adj == other._adj and self._labels == other._labels

    def __hash__(self):  # graphs are mutable-free but big; identity hash
        return id(self)

    def label_histogram(self) -> Mapping[int, int]:
        """Histogram of label frequencies (empty for unlabeled graphs)."""
        hist: dict[int, int] = {}
        if self._labels is not None:
            for lab in self._labels:
                hist[lab] = hist.get(lab, 0) + 1
        return hist
