"""Dataset statistics reporting (Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .graph import DataGraph

__all__ = ["GraphStats", "graph_stats", "stats_table"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for one dataset, matching Table 2's columns."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int  # 0 for unlabeled graphs (the paper's '—')
    max_degree: int
    avg_degree: float

    def row(self) -> str:
        """Format as a Table 2-style row."""
        labels = str(self.num_labels) if self.num_labels else "—"
        return (
            f"{self.name:<18} {self.num_vertices:>9} {self.num_edges:>10} "
            f"{labels:>6} {self.max_degree:>9} {self.avg_degree:>8.1f}"
        )


def graph_stats(graph: DataGraph) -> GraphStats:
    """Compute Table 2 statistics for one graph."""
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_labels=graph.num_labels(),
        max_degree=graph.max_degree(),
        avg_degree=graph.avg_degree(),
    )


def stats_table(graphs: Iterable[DataGraph]) -> str:
    """Render a Table 2-style dataset table for the given graphs."""
    header = (
        f"{'G':<18} {'|V(G)|':>9} {'|E(G)|':>10} {'|L(G)|':>6} "
        f"{'MaxDeg':>9} {'AvgDeg':>8}"
    )
    lines = [header, "-" * len(header)]
    lines.extend(graph_stats(g).row() for g in graphs)
    return "\n".join(lines)
