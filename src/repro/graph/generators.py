"""Synthetic graph generators, including stand-ins for the paper's datasets.

The paper evaluates on Mico (100K/1M, 29 labels), Patents (3.7M/16M edges;
labeled variant 2.7M/13M, 37 labels), Orkut (3M/117M) and Friendster
(65M/1.8B).  Pure Python cannot sweep billion-edge graphs inside a benchmark
run, so we generate *scaled-down stand-ins* preserving the structural traits
the evaluation depends on:

* heavy-tailed degree distributions (preferential attachment) so that
  degree-ordering (§5.2) and hub-first scheduling matter;
* each dataset's relative density (Mico dense, Patents sparse, Orkut dense
  social, Friendster large-and-sparse);
* label alphabets of comparable size for the labeled datasets.

All generators take a ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import Callable

from ..errors import GraphError
from .builder import from_edges
from .graph import DataGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "power_law",
    "random_regular",
    "complete_graph",
    "star_graph",
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "with_random_labels",
    "mico_like",
    "patents_like",
    "orkut_like",
    "friendster_like",
    "DATASET_GENERATORS",
]


def erdos_renyi(n: int, p: float, seed: int = 0, name: str = "erdos-renyi") -> DataGraph:
    """G(n, p) random graph."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability {p} outside [0, 1]")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return from_edges(edges, num_vertices=n, name=name)


def barabasi_albert(n: int, m: int, seed: int = 0, name: str = "barabasi-albert") -> DataGraph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` targets.

    Produces the heavy-tailed degree distribution typical of the paper's
    social/citation datasets.
    """
    if m < 1 or n < m + 1:
        raise GraphError(f"need n > m >= 1, got n={n}, m={m}")
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-endpoints list implements preferential attachment in O(1).
    repeated: list[int] = []
    # Seed clique over the first m+1 vertices to give attachment targets.
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            edges.append((u, v))
            repeated.extend((u, v))
    for u in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for v in targets:
            edges.append((u, v))
            repeated.extend((u, v))
    return from_edges(edges, num_vertices=n, name=name)


def power_law(
    n: int,
    gamma: float = 2.5,
    d_min: int = 2,
    d_max: int | None = None,
    seed: int = 0,
    name: str = "power-law",
) -> DataGraph:
    """Configuration-model graph with a tunable power-law degree tail.

    Degrees are drawn from ``P(d) ∝ d^-gamma`` on ``[d_min, d_max]``
    (default cap ``n - 1``) and wired by uniform stub pairing;
    self-loops and duplicate edges are dropped, so realized degrees can
    undershoot slightly.  Unlike :func:`barabasi_albert` (whose exponent
    is pinned at 3), ``gamma`` directly controls skew: values toward 2
    put a growing share of all edges on a handful of hubs — the regime
    where static work partitions straggle and dynamic (work-stealing)
    scheduling earns its keep (``benchmarks/bench_parallel.py``).
    """
    if n < 2:
        raise GraphError(f"need at least 2 vertices, got {n}")
    if gamma <= 1.0:
        raise GraphError(f"need gamma > 1 for a normalizable tail, got {gamma}")
    if d_min < 1:
        raise GraphError(f"need d_min >= 1, got {d_min}")
    cap = n - 1 if d_max is None else min(d_max, n - 1)
    if cap < d_min:
        raise GraphError(f"degree cap {cap} below d_min {d_min}")
    rng = random.Random(seed)
    # Inverse-CDF sampling of the continuous Pareto tail, clamped to the
    # integer range: deterministic, no numpy needed.
    inv_exp = 1.0 / (gamma - 1.0)
    degrees = []
    for _ in range(n):
        u = 1.0 - rng.random()  # (0, 1]
        d = int(d_min * u ** -inv_exp)
        degrees.append(min(max(d, d_min), cap))
    if sum(degrees) % 2:
        degrees[rng.randrange(n)] += 1
    stubs = [v for v, d in enumerate(degrees) for _ in range(d)]
    rng.shuffle(stubs)
    edges = {
        (min(u, v), max(u, v))
        for u, v in zip(stubs[::2], stubs[1::2])
        if u != v
    }
    return from_edges(sorted(edges), num_vertices=n, name=name)


def random_regular(n: int, d: int, seed: int = 0, name: str = "random-regular") -> DataGraph:
    """Approximately d-regular random graph via pairing with retry.

    Falls back to dropping conflicting stubs (self-loops / multi-edges), so
    a few vertices may end up with degree ``d - 1``; fine for workloads.
    """
    if d < 0 or d >= n:
        raise GraphError(f"need 0 <= d < n, got n={n}, d={d}")
    if (n * d) % 2 != 0:
        raise GraphError("n * d must be even for a regular graph")
    rng = random.Random(seed)
    stubs = [v for v in range(n) for _ in range(d)]
    for _ in range(64):
        rng.shuffle(stubs)
        pairs = list(zip(stubs[::2], stubs[1::2]))
        if all(u != v for u, v in pairs) and len({frozenset(p) for p in pairs}) == len(pairs):
            return from_edges(pairs, num_vertices=n, name=name)
    # Give up on a perfect matching; drop conflicts.
    pairs = [(u, v) for u, v in zip(stubs[::2], stubs[1::2]) if u != v]
    return from_edges(pairs, num_vertices=n, name=name)


def complete_graph(n: int, name: str = "complete") -> DataGraph:
    """K_n."""
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return from_edges(edges, num_vertices=n, name=name)


def star_graph(n: int, name: str = "star") -> DataGraph:
    """Star with one hub (vertex 0) and ``n - 1`` leaves."""
    return from_edges([(0, v) for v in range(1, n)], num_vertices=n, name=name)


def chain_graph(n: int, name: str = "chain") -> DataGraph:
    """Path on ``n`` vertices."""
    return from_edges([(v, v + 1) for v in range(n - 1)], num_vertices=n, name=name)


def cycle_graph(n: int, name: str = "cycle") -> DataGraph:
    """Cycle on ``n`` vertices (n >= 3)."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    edges = [(v, (v + 1) % n) for v in range(n)]
    return from_edges(edges, num_vertices=n, name=name)


def grid_graph(rows: int, cols: int, name: str = "grid") -> DataGraph:
    """rows x cols grid graph."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return from_edges(edges, num_vertices=rows * cols, name=name)


def with_random_labels(
    graph: DataGraph, num_labels: int, seed: int = 0
) -> DataGraph:
    """Copy of ``graph`` with uniformly random labels from 0..num_labels-1.

    This mirrors the paper's treatment of Orkut/Friendster for labeled
    pattern p2 ('we added synthetic labels with uniform probability').
    """
    if num_labels < 1:
        raise GraphError(f"need at least one label, got {num_labels}")
    rng = random.Random(seed)
    labels = [rng.randrange(num_labels) for _ in graph.vertices()]
    return DataGraph(
        [graph.neighbors(v) for v in graph.vertices()],
        labels,
        name=graph.name,
        validate=False,
    )


# ----------------------------------------------------------------------
# Dataset stand-ins (Table 2). Scales chosen so the full benchmark suite
# runs in minutes of pure Python while preserving relative density and
# degree skew: mico dense + 29 labels, patents sparse + 37 labels,
# orkut dense social, friendster larger and sparse.
# ----------------------------------------------------------------------


def mico_like(scale: float = 1.0, seed: int = 7) -> DataGraph:
    """Stand-in for Mico: dense labeled co-authorship-like graph, 29 labels."""
    n = max(32, int(600 * scale))
    base = barabasi_albert(n, m=6, seed=seed, name="mico-like")
    return with_random_labels(base, num_labels=29, seed=seed + 1)


def patents_like(scale: float = 1.0, seed: int = 11, labeled: bool = False) -> DataGraph:
    """Stand-in for Patents: sparse citation-like graph; 37 labels if labeled."""
    n = max(64, int(2000 * scale))
    base = barabasi_albert(n, m=3, seed=seed, name="patents-like")
    if labeled:
        return with_random_labels(base, num_labels=37, seed=seed + 1)
    return base


def orkut_like(scale: float = 1.0, seed: int = 13) -> DataGraph:
    """Stand-in for Orkut: dense social graph with strong degree skew."""
    n = max(64, int(1500 * scale))
    return barabasi_albert(n, m=12, seed=seed, name="orkut-like")


def friendster_like(scale: float = 1.0, seed: int = 17) -> DataGraph:
    """Stand-in for Friendster: the largest and sparsest social stand-in."""
    n = max(128, int(6000 * scale))
    return barabasi_albert(n, m=4, seed=seed, name="friendster-like")


DATASET_GENERATORS: dict[str, Callable[..., DataGraph]] = {
    "mico": mico_like,
    "patents": patents_like,
    "orkut": orkut_like,
    "friendster": friendster_like,
}
