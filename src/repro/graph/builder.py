"""Construction of :class:`~repro.graph.graph.DataGraph` from edge lists."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import GraphError
from .graph import DataGraph

__all__ = ["from_edges", "from_adjacency", "induced_subgraph"]


def from_edges(
    edges: Iterable[tuple[int, int]],
    labels: Sequence[int] | Mapping[int, int] | None = None,
    num_vertices: int | None = None,
    name: str = "graph",
) -> DataGraph:
    """Build a graph from an iterable of undirected edges.

    Duplicate edges and self-loops are dropped; vertex ids must be
    non-negative integers.  Isolated vertices exist only if covered by
    ``num_vertices`` or by the labels sequence.

    Parameters
    ----------
    edges: pairs ``(u, v)``; order within a pair is irrelevant.
    labels: per-vertex labels, as a dense sequence or a mapping; vertices
        absent from a mapping get label ``0``.
    num_vertices: force the vertex count (must cover the largest endpoint).
    name: dataset name carried on the graph.
    """
    neighbor_sets: dict[int, set[int]] = {}
    max_vertex = -1
    for u, v in edges:
        if u < 0 or v < 0:
            raise GraphError(f"negative vertex id in edge ({u}, {v})")
        if u == v:
            continue
        neighbor_sets.setdefault(u, set()).add(v)
        neighbor_sets.setdefault(v, set()).add(u)
        if u > max_vertex:
            max_vertex = u
        if v > max_vertex:
            max_vertex = v

    n = max_vertex + 1
    if labels is not None and not isinstance(labels, Mapping):
        n = max(n, len(labels))
    if num_vertices is not None:
        if num_vertices < n:
            raise GraphError(
                f"num_vertices={num_vertices} smaller than max endpoint+1={n}"
            )
        n = num_vertices

    adjacency = [sorted(neighbor_sets.get(u, ())) for u in range(n)]

    label_list: list[int] | None = None
    if labels is not None:
        if isinstance(labels, Mapping):
            label_list = [labels.get(u, 0) for u in range(n)]
        else:
            if len(labels) != n:
                raise GraphError(
                    f"labels length {len(labels)} != vertex count {n}"
                )
            label_list = list(labels)

    return DataGraph(adjacency, label_list, name=name, validate=False)


def from_adjacency(
    adjacency: Mapping[int, Iterable[int]],
    labels: Mapping[int, int] | None = None,
    name: str = "graph",
) -> DataGraph:
    """Build a graph from an adjacency mapping ``{u: neighbors}``.

    The mapping need not be symmetric; edges are symmetrized.
    """
    edges = [(u, v) for u, nbrs in adjacency.items() for v in nbrs]
    num_vertices = max(adjacency.keys(), default=-1) + 1
    for u, v in edges:
        num_vertices = max(num_vertices, u + 1, v + 1)
    return from_edges(edges, labels=labels, num_vertices=num_vertices, name=name)


def induced_subgraph(graph: DataGraph, vertices: Iterable[int]) -> DataGraph:
    """Vertex-induced subgraph, with vertices renamed densely to 0..k-1.

    Preserves labels; the renaming follows the sorted order of ``vertices``.
    """
    keep = sorted(set(vertices))
    new_id = {old: new for new, old in enumerate(keep)}
    edges = [
        (new_id[u], new_id[v])
        for u, v in graph.subgraph_edges(keep)
    ]
    labels = None
    if graph.is_labeled:
        labels = [graph.label(old) for old in keep]
    return from_edges(
        edges, labels=labels, num_vertices=len(keep), name=f"{graph.name}-sub"
    )
