"""Binary graph serialization: compressed ``.npz`` and the mmap ``.rgx`` store.

Text edge lists are convenient but slow to parse and large on disk; the
original Peregrine converts inputs to a packed binary adjacency format at
load time for exactly this reason.  This module provides two equivalents
for our substrate:

* ``save_npz`` / ``load_npz`` — the degree-prefixed CSR arrays (offsets +
  flattened neighbor ids) plus optional labels, stored via
  ``numpy.savez_compressed``.  Compact, but loading decompresses and
  copies every array into fresh heap memory.
* ``save_mmap`` / ``load_mmap`` / :class:`GraphStore` — the ``.rgx``
  on-disk tier: a fixed 64-byte header followed by 64-byte-aligned raw
  ``int64`` sections (offsets, neighbors, optional labels).  Opening one
  is three ``mmap`` calls; the arrays are wrapped zero-copy by the
  array-backed :class:`~repro.graph.graph.DataGraph`, engine views alias
  the same pages, and worker processes re-opening the file share them
  through the OS page cache instead of shared-memory copies.

Both formats are versioned so later readers reject incompatible files
instead of mis-parsing them.

``.rgx`` layout (all integers little-endian ``int64``)::

    0   magic     b"RGXGRAPH"
    8   version   (currently 1)
    16  num_vertices
    24  num_edges            (undirected; neighbor entries = 2 * edges)
    32  flags                bit 0: labels present, bit 1: degree-sorted
    40  reserved  (zeros to byte 64)
    64  offsets   (num_vertices + 1) int64, then zero-pad to 64B
    ..  neighbors (2 * num_edges)   int64, then zero-pad to 64B
    ..  labels    (num_vertices)    int64, only when flag bit 0 is set
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..errors import GraphFormatError
from .graph import DataGraph

__all__ = [
    "save_npz",
    "load_npz",
    "save_mmap",
    "load_mmap",
    "open_graph",
    "graph_csr",
    "GraphStore",
    "FORMAT_VERSION",
    "MMAP_VERSION",
    "MMAP_MAGIC",
]

FORMAT_VERSION = 1

MMAP_MAGIC = b"RGXGRAPH"
MMAP_VERSION = 1
_HEADER_SIZE = 64
_ALIGN = 64
_FLAG_LABELS = 1
_FLAG_DEGREE_SORTED = 2


def graph_csr(graph: DataGraph):
    """``(offsets, neighbors, labels)`` int64 CSR arrays for ``graph``.

    Zero-copy for array-backed graphs, aliased from a cached
    ``AcceleratedGraphView`` when one exists, and derived with a single
    fill pass otherwise — savers share this so none of them re-walk the
    adjacency in Python when CSR already exists somewhere.
    """
    arrays = graph.csr_arrays()
    if arrays is not None:
        offsets, flat, labels = arrays
        return (
            np.ascontiguousarray(offsets, dtype=np.int64),
            np.ascontiguousarray(flat, dtype=np.int64),
            None if labels is None else np.ascontiguousarray(labels, dtype=np.int64),
        )
    labels = graph.labels()
    if labels is not None:
        labels = np.asarray(labels, dtype=np.int64)
    view = graph._accel_view
    if view is not None:
        flat, offsets, _ = view.csr()
        return (
            np.ascontiguousarray(offsets, dtype=np.int64),
            np.ascontiguousarray(flat, dtype=np.int64),
            labels,
        )
    n = graph.num_vertices
    degrees = np.fromiter(
        (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
    )
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    flat = np.empty(int(offsets[-1]), dtype=np.int64)
    for v in range(n):
        flat[offsets[v]: offsets[v + 1]] = graph.neighbors(v)
    return offsets, flat, labels


# ----------------------------------------------------------------------
# Compressed .npz archives
# ----------------------------------------------------------------------


def save_npz(graph: DataGraph, path: str | os.PathLike) -> None:
    """Write a graph (and its labels, if any) as a compressed ``.npz``.

    Stores CSR offsets/neighbors as ``int64`` — the same layout
    :class:`~repro.core.accel.AcceleratedGraphView` builds in memory, so
    the arrays are pulled from an existing view or array backing instead
    of re-deriving degrees vertex by vertex.
    """
    offsets, flat, labels = graph_csr(graph)
    arrays = {
        "version": np.array([FORMAT_VERSION], dtype=np.int64),
        "offsets": offsets,
        "neighbors": flat,
    }
    if labels is not None:
        arrays["labels"] = labels
    np.savez_compressed(os.fspath(path), **arrays)


def load_npz(path: str | os.PathLike, name: str | None = None) -> DataGraph:
    """Load a graph written by :func:`save_npz`.

    The result is **array-backed**: the decompressed CSR arrays are
    wrapped directly instead of being exploded into per-vertex Python
    lists.
    """
    path = os.fspath(path)
    with np.load(path) as data:
        if "version" not in data or int(data["version"][0]) != FORMAT_VERSION:
            raise GraphFormatError(
                f"{path}: not a repro graph archive (missing or unknown format version)"
            )
        offsets = np.ascontiguousarray(data["offsets"], dtype=np.int64)
        flat = np.ascontiguousarray(data["neighbors"], dtype=np.int64)
        labels = (
            np.ascontiguousarray(data["labels"], dtype=np.int64)
            if "labels" in data
            else None
        )
    if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != flat.size:
        raise GraphFormatError(f"{path}: offsets do not span the neighbor array")
    if name is None:
        name = os.path.basename(path)
        if name.endswith(".npz"):
            name = name[:-4]
    return DataGraph.from_csr(offsets, flat, labels, name=name)


# ----------------------------------------------------------------------
# The mmap .rgx store
# ----------------------------------------------------------------------


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def save_mmap(graph: DataGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` as an ``.rgx`` mmap store (see module docstring).

    Records whether the graph is already degree-sorted so reloading a
    converted store skips the ordering pass entirely.
    """
    offsets, flat, labels = graph_csr(graph)
    flags = 0
    if labels is not None:
        flags |= _FLAG_LABELS
    if graph.is_degree_ordered():
        flags |= _FLAG_DEGREE_SORTED
    n = int(offsets.size) - 1
    with open(os.fspath(path), "wb") as fh:
        header = MMAP_MAGIC + struct.pack(
            "<4q", MMAP_VERSION, n, int(flat.size) // 2, flags
        )
        fh.write(header.ljust(_HEADER_SIZE, b"\0"))
        for arr in (offsets, flat) + ((labels,) if labels is not None else ()):
            pad = _aligned(fh.tell()) - fh.tell()
            if pad:
                fh.write(b"\0" * pad)
            arr.tofile(fh)


def _map_section(path: str, offset: int, count: int) -> np.ndarray:
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return np.memmap(path, dtype=np.int64, mode="r", offset=offset, shape=(count,))


class GraphStore:
    """An opened ``.rgx`` file: header fields plus mapped CSR sections.

    Construction is O(1): the header is read and validated, and each
    section becomes a read-only ``numpy.memmap`` — no adjacency is
    materialized until something touches the pages.  ``graph()`` wraps
    the sections as an array-backed :class:`DataGraph` (cached), keeping
    a reference to the store so the parallel runtime can point worker
    processes at the same file.
    """

    __slots__ = (
        "path",
        "num_vertices",
        "num_edges",
        "has_labels",
        "degree_sorted",
        "file_size",
        "offsets",
        "neighbors",
        "labels",
        "_graph",
    )

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        try:
            self.file_size = os.path.getsize(self.path)
            with open(self.path, "rb") as fh:
                head = fh.read(_HEADER_SIZE)
        except OSError as exc:
            raise GraphFormatError(f"{self.path}: cannot open ({exc})") from exc
        if len(head) < _HEADER_SIZE or head[:8] != MMAP_MAGIC:
            raise GraphFormatError(
                f"{self.path}: not an .rgx graph store (bad magic)"
            )
        version, n, m, flags = struct.unpack_from("<4q", head, 8)
        if version != MMAP_VERSION:
            raise GraphFormatError(
                f"{self.path}: unsupported .rgx version {version} "
                f"(reader understands {MMAP_VERSION})"
            )
        if n < 0 or m < 0:
            raise GraphFormatError(f"{self.path}: negative header counts")
        self.num_vertices = int(n)
        self.num_edges = int(m)
        self.has_labels = bool(flags & _FLAG_LABELS)
        self.degree_sorted = bool(flags & _FLAG_DEGREE_SORTED)

        off_offsets = _HEADER_SIZE
        off_neighbors = _aligned(off_offsets + (self.num_vertices + 1) * 8)
        off_labels = _aligned(off_neighbors + 2 * self.num_edges * 8)
        # Writers pad before each section, not after the last one.
        if self.has_labels:
            expected = off_labels + self.num_vertices * 8
        else:
            expected = off_neighbors + 2 * self.num_edges * 8
        if self.file_size < expected:
            raise GraphFormatError(
                f"{self.path}: truncated .rgx store "
                f"({self.file_size} bytes, need {expected})"
            )
        self.offsets = _map_section(
            self.path, off_offsets, self.num_vertices + 1
        )
        self.neighbors = _map_section(self.path, off_neighbors, 2 * self.num_edges)
        self.labels = (
            _map_section(self.path, off_labels, self.num_vertices)
            if self.has_labels
            else None
        )
        if self.offsets.size == 0 or self.offsets[0] != 0 or (
            self.offsets[-1] != 2 * self.num_edges
        ):
            raise GraphFormatError(
                f"{self.path}: offsets do not span the neighbor section"
            )
        self._graph: DataGraph | None = None

    def graph(self, name: str | None = None) -> DataGraph:
        """The store's array-backed :class:`DataGraph` (cached)."""
        if self._graph is None:
            if name is None:
                name = os.path.basename(self.path)
                if name.endswith(".rgx"):
                    name = name[:-4]
            self._graph = DataGraph.from_csr(
                self.offsets,
                self.neighbors,
                self.labels,
                name=name,
                degree_sorted=self.degree_sorted or None,
                store=self,
            )
        return self._graph

    def info(self) -> dict:
        """Header summary for ``repro-mine graph info`` and tooling."""
        return {
            "path": self.path,
            "version": MMAP_VERSION,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "has_labels": self.has_labels,
            "degree_sorted": self.degree_sorted,
            "file_size": self.file_size,
        }

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the mapped sections."""
        mm = getattr(self.offsets, "_mmap", None)
        return bool(mm is not None and mm.closed)

    def close(self) -> None:
        """Release the mapped sections (and their file descriptors).

        A long-lived process serving many graphs cannot rely on garbage
        collection to drop mmap handles — an evicted registry entry must
        free its descriptors *now*, not at the next collection cycle.
        Closing is idempotent; empty sections (zero-edge graphs) have no
        backing map and are skipped.  Touching the store's arrays (or any
        graph/view aliasing them) after close raises ``ValueError`` —
        callers evicting a store must drop every consumer first.
        """
        self._graph = None
        for arr in (self.offsets, self.neighbors, self.labels):
            mm = getattr(arr, "_mmap", None)
            if mm is not None and not mm.closed:
                mm.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphStore({self.path!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, labels={self.has_labels}, "
            f"degree_sorted={self.degree_sorted})"
        )


def load_mmap(path: str | os.PathLike, name: str | None = None) -> DataGraph:
    """Open an ``.rgx`` store and wrap it as an array-backed graph.

    O(header) Python work: no adjacency list is built, the engines' CSR
    views alias the mapped sections directly.
    """
    return GraphStore(path).graph(name)


def open_graph(path: str | os.PathLike, name: str | None = None) -> DataGraph:
    """Load a graph from any supported on-disk format, by extension.

    ``.rgx`` → :func:`load_mmap`, ``.npz`` → :func:`load_npz`, anything
    else is parsed as a whitespace edge list.  This is what
    session/CLI path arguments route through.
    """
    text = os.fspath(path)
    if text.endswith(".rgx"):
        return load_mmap(text, name=name)
    if text.endswith(".npz"):
        return load_npz(text, name=name)
    from .io import load_edge_list

    return load_edge_list(text, name=name)
