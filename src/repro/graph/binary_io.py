"""Binary (``.npz``) graph serialization.

Text edge lists are convenient but slow to parse and large on disk; the
original Peregrine converts inputs to a packed binary adjacency format at
load time for exactly this reason.  This module provides the equivalent
for our substrate: the degree-prefixed CSR arrays (offsets + flattened
neighbor ids) plus optional labels, stored via ``numpy.savez_compressed``.

The format is versioned so later readers can reject incompatible files
instead of mis-parsing them.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import GraphFormatError
from .builder import from_adjacency
from .graph import DataGraph

__all__ = ["save_npz", "load_npz", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_npz(graph: DataGraph, path: str | os.PathLike) -> None:
    """Write a graph (and its labels, if any) as a compressed ``.npz``.

    Stores CSR offsets/neighbors as ``int64`` — the same layout
    :class:`~repro.core.accel.AcceleratedGraphView` builds in memory, so
    loading is an array copy, not a parse.
    """
    degrees = [graph.degree(v) for v in graph.vertices()]
    offsets = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    flat = np.empty(int(offsets[-1]), dtype=np.int64)
    for v in graph.vertices():
        flat[offsets[v]: offsets[v + 1]] = graph.neighbors(v)
    arrays = {
        "version": np.array([FORMAT_VERSION], dtype=np.int64),
        "offsets": offsets,
        "neighbors": flat,
    }
    labels = graph.labels()
    if labels is not None:
        arrays["labels"] = np.asarray(labels, dtype=np.int64)
    np.savez_compressed(os.fspath(path), **arrays)


def load_npz(path: str | os.PathLike, name: str | None = None) -> DataGraph:
    """Load a graph written by :func:`save_npz`."""
    path = os.fspath(path)
    with np.load(path) as data:
        if "version" not in data or int(data["version"][0]) != FORMAT_VERSION:
            raise GraphFormatError(
                f"{path}: not a repro graph archive (missing or unknown format version)"
            )
        offsets = data["offsets"]
        flat = data["neighbors"]
        labels = data["labels"].tolist() if "labels" in data else None
    num_vertices = len(offsets) - 1
    adjacency = {
        v: flat[offsets[v]: offsets[v + 1]].tolist()
        for v in range(num_vertices)
    }
    label_map = (
        {v: lab for v, lab in enumerate(labels)} if labels is not None else None
    )
    if name is None:
        name = os.path.basename(path)
        if name.endswith(".npz"):
            name = name[:-4]
    return from_adjacency(adjacency, labels=label_map, name=name)
