"""Edge-list file I/O for data graphs.

The on-disk format mirrors what Peregrine and the systems it compares
against consume: whitespace-separated edge lists, one edge per line, with
``#``/``%`` comment lines.  Labeled graphs add a companion label file of
``vertex label`` lines (or inline via :func:`load_labeled`).
"""

from __future__ import annotations

import os
from typing import Iterable

from ..errors import GraphFormatError
from .builder import from_edges
from .graph import DataGraph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_labels",
    "save_labels",
    "load_labeled",
]

_COMMENT_PREFIXES = ("#", "%", "//")


def _parse_int(token: str, path: str, line_no: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise GraphFormatError(
            f"{path}:{line_no}: expected integer, got {token!r}"
        ) from None


def load_edge_list(path: str | os.PathLike, name: str | None = None) -> DataGraph:
    """Load an undirected graph from a whitespace-separated edge-list file."""
    path = os.fspath(path)
    edges: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{line_no}: expected 'u v', got {line!r}"
                )
            u = _parse_int(parts[0], path, line_no)
            v = _parse_int(parts[1], path, line_no)
            edges.append((u, v))
    graph_name = name if name is not None else os.path.basename(path)
    return from_edges(edges, name=graph_name)


def save_edge_list(graph: DataGraph, path: str | os.PathLike) -> None:
    """Write the graph as an edge-list file (u < v, one edge per line)."""
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def load_labels(path: str | os.PathLike) -> dict[int, int]:
    """Load a ``vertex label`` file into a mapping."""
    path = os.fspath(path)
    labels: dict[int, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"{path}:{line_no}: expected 'vertex label', got {line!r}"
                )
            v = _parse_int(parts[0], path, line_no)
            lab = _parse_int(parts[1], path, line_no)
            labels[v] = lab
    return labels


def save_labels(graph: DataGraph, path: str | os.PathLike) -> None:
    """Write per-vertex labels as ``vertex label`` lines."""
    if not graph.is_labeled:
        raise GraphFormatError("cannot save labels of an unlabeled graph")
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        for v in graph.vertices():
            handle.write(f"{v} {graph.label(v)}\n")


def load_labeled(
    edge_path: str | os.PathLike,
    label_path: str | os.PathLike,
    name: str | None = None,
) -> DataGraph:
    """Load a labeled graph from an edge-list file plus a label file."""
    unlabeled = load_edge_list(edge_path, name=name)
    labels = load_labels(label_path)
    n = unlabeled.num_vertices
    label_list = [labels.get(v, 0) for v in range(n)]
    return DataGraph(
        [unlabeled.neighbors(v) for v in range(n)],
        label_list,
        name=unlabeled.name,
        validate=False,
    )
