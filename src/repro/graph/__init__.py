"""Data-graph substrate: representation, construction, I/O, generators."""

from .graph import DataGraph
from .builder import from_edges, from_adjacency, induced_subgraph
from .io import (
    load_edge_list,
    save_edge_list,
    load_labels,
    save_labels,
    load_labeled,
)
from .binary_io import (
    GraphStore,
    load_mmap,
    load_npz,
    open_graph,
    save_mmap,
    save_npz,
)
from .generators import (
    erdos_renyi,
    barabasi_albert,
    power_law,
    random_regular,
    complete_graph,
    star_graph,
    chain_graph,
    cycle_graph,
    grid_graph,
    with_random_labels,
    mico_like,
    patents_like,
    orkut_like,
    friendster_like,
    DATASET_GENERATORS,
)
from .stats import GraphStats, graph_stats, stats_table

__all__ = [
    "DataGraph",
    "from_edges",
    "from_adjacency",
    "induced_subgraph",
    "load_edge_list",
    "save_edge_list",
    "load_labels",
    "save_labels",
    "load_labeled",
    "save_npz",
    "load_npz",
    "GraphStore",
    "save_mmap",
    "load_mmap",
    "open_graph",
    "erdos_renyi",
    "barabasi_albert",
    "power_law",
    "random_regular",
    "complete_graph",
    "star_graph",
    "chain_graph",
    "cycle_graph",
    "grid_graph",
    "with_random_labels",
    "mico_like",
    "patents_like",
    "orkut_like",
    "friendster_like",
    "DATASET_GENERATORS",
    "GraphStats",
    "graph_stats",
    "stats_table",
]
