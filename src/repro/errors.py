"""Exception hierarchy for the repro (Peregrine reproduction) library.

Every error raised by the public API derives from :class:`ReproError` so
callers can catch library failures with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for malformed data graphs or invalid graph operations."""


class GraphFormatError(GraphError):
    """Raised when a graph file cannot be parsed."""


class PatternError(ReproError):
    """Raised for malformed patterns or invalid pattern operations."""


class PatternFormatError(PatternError):
    """Raised when a pattern file cannot be parsed."""


class PlanError(ReproError):
    """Raised when an exploration plan cannot be generated for a pattern."""


class MatchingError(ReproError):
    """Raised for invalid arguments to the matching engine."""


class BudgetExceeded(ReproError):
    """Raised by baseline systems when their work budget is exhausted.

    Models the paper's five-hour timeout: baseline runs that blow past a
    configured number of exploration steps abort with this error, which the
    benchmark harness reports as ``TIMEOUT`` (the paper's 'x' cells).
    """

    def __init__(self, steps: int, budget: int):
        super().__init__(f"work budget exceeded: {steps} steps > budget {budget}")
        self.steps = steps
        self.budget = budget


class MemoryBudgetExceeded(ReproError):
    """Raised when a baseline's embedding store outgrows its byte budget.

    Models the paper's out-of-memory / out-of-disk failures (the '—' and '/'
    cells of Tables 3-5).
    """

    def __init__(self, used_bytes: int, budget_bytes: int):
        super().__init__(
            f"store budget exceeded: {used_bytes} bytes > budget {budget_bytes}"
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes


class PartialResult(int):
    """A truncated count: an ``int`` plus how far the run got.

    Guardrail errors carry one of these, and verbs called with
    ``on_budget="partial"`` return one in place of the full count, so
    existing arithmetic on counts keeps working while callers that care
    can check ``truncated`` / ``reason``.

    ``levels_completed`` counts the units of cooperative progress the
    engine finished before stopping: start-vertex tasks for the
    per-match engines, top-level frontier blocks for the batched engine,
    completed chunks for a process pool.  ``detail`` is an optional dict
    of extra structured context (per-member totals for fused runs,
    failed chunk indices for a crashed pool, ...).
    """

    # No __slots__: variable-length builtins (int) do not support them.

    def __new__(
        cls,
        matches: int = 0,
        levels_completed: int = 0,
        truncated: bool = True,
        reason: str = "",
        detail: dict | None = None,
    ):
        self = super().__new__(cls, matches)
        self.levels_completed = levels_completed
        self.truncated = truncated
        self.reason = reason
        self.detail = {} if detail is None else detail
        return self

    @property
    def matches(self) -> int:
        return int(self)

    def as_dict(self) -> dict:
        return {
            "matches": int(self),
            "levels_completed": self.levels_completed,
            "truncated": self.truncated,
            "reason": self.reason,
            "detail": dict(self.detail),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartialResult(matches={int(self)}, "
            f"levels_completed={self.levels_completed}, "
            f"truncated={self.truncated}, reason={self.reason!r})"
        )


class _GuardrailError(ReproError):
    """Base for execution-guardrail errors: always carries the partial.

    ``partial`` is the :class:`PartialResult` describing how far the run
    got before the guardrail fired (zero for errors raised up front,
    e.g. admission refusal).
    """

    def __init__(self, message: str, partial: "PartialResult | None" = None):
        super().__init__(message)
        self.partial = partial if partial is not None else PartialResult(0)


class BudgetExceededError(_GuardrailError):
    """A cooperative :class:`~repro.core.callbacks.Budget` ran out.

    Raised between frontier chunks / start tasks when the wall-clock
    deadline, match cap, frontier-row cap or expanded-partial cap of the
    active budget is hit.  ``partial`` holds the counts accumulated so
    far with ``truncated=True``; calls made with ``on_budget="partial"``
    receive that payload as the return value instead of this error.
    """


class QueryRefusedError(_GuardrailError):
    """Admission control refused a predicted-explosive query up front.

    Raised by ``guard="refuse"`` when the bounded probe walk
    (:func:`repro.runtime.guards.estimate_cost`) predicts the query
    would expand past the explosive-work threshold.  ``estimate`` holds
    the probe's cost estimate; ``partial`` is always zero matches.
    """

    def __init__(self, message: str, estimate=None):
        super().__init__(message, PartialResult(0, reason="refused"))
        self.estimate = estimate


class QueryCancelledError(_GuardrailError):
    """A run was cancelled by an external token before completing.

    Raised by the process runtimes when the shared cancellation token
    (``process_count(..., cancel=control)``) is set mid-run; workers
    observe it between — and, through the engines' control polling,
    inside — chunks.  ``partial`` holds the counts of chunks completed
    before the stop.
    """


class WorkerCrashError(_GuardrailError):
    """A process pool lost chunks to crashed workers beyond retry.

    Dead workers' leased-but-unacknowledged chunks are requeued onto
    fresh workers a bounded number of times; if chunks still cannot be
    completed (and the in-process fallback is unavailable), the run
    aborts with this error.  ``partial`` carries the exact counts of all
    completed chunks and ``partial.detail["failed_chunks"]`` names the
    chunk indices lost.
    """
