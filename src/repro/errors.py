"""Exception hierarchy for the repro (Peregrine reproduction) library.

Every error raised by the public API derives from :class:`ReproError` so
callers can catch library failures with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for malformed data graphs or invalid graph operations."""


class GraphFormatError(GraphError):
    """Raised when a graph file cannot be parsed."""


class PatternError(ReproError):
    """Raised for malformed patterns or invalid pattern operations."""


class PatternFormatError(PatternError):
    """Raised when a pattern file cannot be parsed."""


class PlanError(ReproError):
    """Raised when an exploration plan cannot be generated for a pattern."""


class MatchingError(ReproError):
    """Raised for invalid arguments to the matching engine."""


class BudgetExceeded(ReproError):
    """Raised by baseline systems when their work budget is exhausted.

    Models the paper's five-hour timeout: baseline runs that blow past a
    configured number of exploration steps abort with this error, which the
    benchmark harness reports as ``TIMEOUT`` (the paper's 'x' cells).
    """

    def __init__(self, steps: int, budget: int):
        super().__init__(f"work budget exceeded: {steps} steps > budget {budget}")
        self.steps = steps
        self.budget = budget


class MemoryBudgetExceeded(ReproError):
    """Raised when a baseline's embedding store outgrows its byte budget.

    Models the paper's out-of-memory / out-of-disk failures (the '—' and '/'
    cells of Tables 3-5).
    """

    def __init__(self, used_bytes: int, budget_bytes: int):
        super().__init__(
            f"store budget exceeded: {used_bytes} bytes > budget {budget_bytes}"
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
