"""Approximate counting on the real execution core (ROADMAP item 4).

ASAP [Iyer et al., OSDI '18] showed that pattern *counts* — the quantity
motif censuses, FSM support checks and service dashboards actually
consume — tolerate sampling: an unbiased estimator with an error bound
answers in a fraction of the exact run's time.  The legacy
:mod:`repro.mining.approximate` module reproduced ASAP's per-embedding
path sampler on the baseline AutoMine schedules; it ignored
``ExecOptions``, the label index and every engine this repo built.  This
module is its redesign: the estimators run *on the session's own
execution core*, so everything the exact tier amortizes (degree
ordering, CSR view, plan cache, label-filtered frontiers, fused
multi-pattern walks) accelerates the approximate tier too.

Two estimators:

**Neighborhood sampling** (``method="ns"``, the default and what
``MiningSession.count(pattern, approx=rel_err)`` runs).  Every match is
counted by the engines at exactly one level-0 start vertex, so the
per-start counts over the (label-filtered, hub-first) frontier sum to
the exact count.  The estimator stratifies that frontier:

* the *hub prefix* (the first :data:`HUB_EXHAUST` starts — the frontier
  is hub-first, so these are the heavy, high-variance starts where
  power-law count mass concentrates) is counted **exactly**, once;
* the *tail* is sampled in rounds of :data:`ROUND_STARTS` starts drawn
  uniformly **with replacement**; each round's batch total, scaled by
  ``tail_size / round_size`` (the Horvitz–Thompson inverse inclusion
  weight), plus the exact hub total, is one i.i.d. unbiased estimate of
  the full count.

Rounds are the i.i.d. unit because the engines count whole start batches
without per-start attribution — one engine dispatch per round keeps the
vectorized tier's batching advantage.  Adaptive growth runs rounds until
the two-sided confidence interval (Student-t, ``ddof=1`` over round
estimates) is within the requested relative error, the sample budget is
exhausted, or the draws would cover the frontier — in which case the
estimator *finishes the tail exactly* and returns the exact count with a
zero-width interval (sampling never costs asymptotically more than
exact).

**Color coding** (:func:`color_coding_count`): Pagh–Tsourakakis colorful
sparsification.  Each round colors vertices uniformly from ``c`` colors,
keeps only monochromatic edges (~``m/c`` survive), counts the pattern
exactly on that subgraph and scales by ``c^(k-1)`` — a connected
``k``-vertex match survives iff its ``k-1`` non-root vertices match the
root's color.  Rounds over independent colorings are i.i.d. unbiased
estimates and feed the same adaptive CI machinery.  Only valid for
non-induced (``edge_induced=True``) counting: anti-edge checks on the
sparsified subgraph would misread removed edges as absent.

Multi-pattern estimation (:func:`approx_count_many`, reached via
``count_many(patterns, approx=rel_err)``) groups patterns exactly like
:class:`~repro.core.session.MultiPatternPlan` and serves each group's
hub pass and sampled rounds through one
:func:`repro.core.accel.fused_run` walk — the sampled frontier is shared
by every member, and count-only vertex-induced censuses ride the shared
non-induced basis (Möbius inversion is linear, so inverting per-round
basis estimates yields unbiased per-round induced estimates).
"""

from __future__ import annotations

import dataclasses
import math
import random
import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import MatchingError
from ..core.session import (
    ExecOptions,
    MiningSession,
    MultiPatternPlan,
    as_session,
    group_start_vertices,
)
from ..core.multipattern import census_eligible
from ..pattern.pattern import Pattern

try:  # numpy is an optional accelerator, not a hard dependency
    from ..core import accel as _accel
except ImportError:  # pragma: no cover - exercised only without numpy
    _accel = None

__all__ = [
    "ApproxCount",
    "approx_count",
    "approx_count_many",
    "color_coding_count",
    "DEFAULT_REL_ERR",
    "DEFAULT_CONFIDENCE",
    "MIN_ROUNDS",
    "ROUND_STARTS",
    "HUB_EXHAUST",
    "MAX_COLORINGS",
]

# Default accuracy target: 5% relative error at 95% two-sided confidence
# — ASAP's headline operating point (its 5% error runs are the ones
# compared against exact systems).
DEFAULT_REL_ERR = 0.05
DEFAULT_CONFIDENCE = 0.95

# Sampling geometry.  MIN_ROUNDS is the floor before the Student-t
# interval is trusted at all; ROUND_STARTS is the per-round draw count —
# large enough that one frontier-batched dispatch amortizes its numpy
# overhead, small enough that adaptive growth has real granularity.
MIN_ROUNDS = 4
ROUND_STARTS = 128

# Hub-prefix stratum size.  The frontier is hub-first, so the first
# entries are exactly the heavy-tailed starts whose per-start counts
# dominate both the total and the sampling variance on skewed graphs;
# counting them exactly removes that variance from the estimator for a
# bounded, known amount of work.  Never more than half the frontier (or
# half the sample budget), so there is always a tail left to sample.
HUB_EXHAUST = 1024

# Default colorings budget for the color-coding estimator.
MAX_COLORINGS = 64

# Early-stop reasons carried on ApproxCount.early_stop.
STOP_TARGET = "target-met"
STOP_BUDGET = "max-samples"
STOP_EXHAUSTED = "exhausted-frontier"
STOP_EMPTY = "empty-frontier"


@dataclass(frozen=True)
class ApproxCount:
    """Outcome of one approximate counting run.

    ``estimate`` is the unbiased count estimate; ``stderr`` the standard
    error over sampling rounds; ``(ci_low, ci_high)`` the two-sided
    Student-t interval at ``confidence``.  ``rel_err`` is the *achieved*
    relative half-width (``0.0`` for exact results,``inf`` when the
    estimate is zero but uncertainty remains), ``requested_rel_err`` the
    target the run was asked to meet (``None`` = spend the budget).
    ``samples`` counts level-0 starts actually processed (hub prefix +
    sampled draws; colorings for the color-coding method), ``rounds``
    the i.i.d. sampling rounds behind ``stderr``, and ``hit_rate`` the
    fraction of rounds that saw at least one match.  ``exact=True``
    means the run degenerated to an exact count (tiny frontier, or
    ``max_samples`` covered it) — the estimate then equals the exact
    count and the interval has zero width.  ``early_stop`` says why
    sampling stopped: ``"target-met"``, ``"max-samples"``,
    ``"exhausted-frontier"`` or ``"empty-frontier"``.

    ``int(result)`` rounds the estimate — session verbs stay usable in
    integer contexts whether or not ``approx`` was requested.
    """

    estimate: float
    stderr: float
    ci_low: float
    ci_high: float
    confidence: float
    rel_err: float
    requested_rel_err: float | None
    samples: int
    rounds: int
    frontier_size: int
    hit_rate: float
    method: str
    exact: bool
    early_stop: str

    def __int__(self) -> int:
        return int(round(self.estimate))

    def __float__(self) -> float:
        return float(self.estimate)

    @property
    def ci(self) -> tuple[float, float]:
        """The two-sided interval as a ``(low, high)`` pair."""
        return (self.ci_low, self.ci_high)

    def within(self, exact: float, slack: float = 1.0) -> bool:
        """Whether ``exact`` lies inside ``slack`` × the interval."""
        half = (self.ci_high - self.ci_low) / 2.0
        return abs(self.estimate - exact) <= max(half * slack, 1e-9)

    def as_dict(self) -> dict:
        """JSON-friendly form (service envelopes, bench artifacts)."""
        return {
            "estimate": self.estimate,
            "stderr": self.stderr,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
            "rel_err_achieved": self.rel_err,
            "requested_rel_err": self.requested_rel_err,
            "samples": self.samples,
            "rounds": self.rounds,
            "frontier_size": self.frontier_size,
            "hit_rate": self.hit_rate,
            "method": self.method,
            "exact": self.exact,
            "early_stop": self.early_stop,
        }


# ----------------------------------------------------------------------
# Interval machinery
# ----------------------------------------------------------------------


def _z(confidence: float) -> float:
    """Two-sided normal quantile for ``confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    return statistics.NormalDist().inv_cdf(0.5 + confidence / 2.0)


def _t_quantile(confidence: float, df: int) -> float:
    """Student-t two-sided quantile via the Cornish–Fisher expansion.

    The round counts here are small (single digits), where the plain
    normal quantile undercovers noticeably; the second-order expansion
    ``z + (z^3 + z) / (4 df)`` recovers the t correction to well under a
    percent for df >= 3 without needing scipy.
    """
    z = _z(confidence)
    if df <= 0:
        return z
    return z + (z**3 + z) / (4.0 * df)


def _half_width(rounds: list[float], confidence: float) -> tuple[float, float]:
    """(stderr, CI half-width) over i.i.d. round estimates."""
    r = len(rounds)
    if r < 2:
        return float("inf"), float("inf")
    stderr = statistics.stdev(rounds) / math.sqrt(r)
    return stderr, _t_quantile(confidence, r - 1) * stderr


def _target_met(rounds: list[float], rel_err: float, confidence: float) -> bool:
    mean = statistics.fmean(rounds)
    if mean <= 0.0:
        return False
    stderr, half = _half_width(rounds, confidence)
    if stderr <= 0.0:
        # Zero observed round variance is false certainty, not accuracy —
        # e.g. hub-dominated counts where every tail draw so far returned
        # nothing.  Keep sampling until variance appears or the budget
        # runs out (degenerating to an exact tail pass when allowed).
        return False
    return half <= rel_err * mean


# ----------------------------------------------------------------------
# Option plumbing shared with the session verbs
# ----------------------------------------------------------------------

_UNSUPPORTED = ("control", "stats", "timer", "budget", "start_vertices")


def _reject_unsupported(opts: ExecOptions) -> None:
    bad = [n for n in _UNSUPPORTED if getattr(opts, n) is not None]
    if bad:
        raise MatchingError(
            f"approximate counting does not support the {sorted(bad)} "
            "option(s); sampling owns the frontier and runs to its own "
            "stopping rule"
        )


def _validate(rel_err, confidence, max_samples) -> None:
    if rel_err is not None and not 0.0 < rel_err < 1.0:
        raise ValueError(
            f"rel_err must be a relative error in (0, 1), got {rel_err!r}"
        )
    _z(confidence)
    if max_samples is not None and max_samples <= 0:
        raise ValueError(f"max_samples must be positive, got {max_samples!r}")


def _inner_opts(opts: ExecOptions) -> ExecOptions:
    """The options the per-round exact sub-runs execute under.

    Strips everything the sampling loop owns (approx knobs, the
    frontier) and everything that must not re-trigger (guard probes,
    auto planning) — the inner runs are plain exact counts over explicit
    ``start_vertices``.
    """
    return dataclasses.replace(
        opts,
        approx=None,
        max_samples=None,
        latency_budget=None,
        seed=None,
        guard="off",
        planner="fixed",
        start_vertices=None,
    )


def _frontier_for(session: MiningSession, pattern: Pattern, opts: ExecOptions):
    """The level-0 frontier the exact run would walk, indexable.

    Mirrors :meth:`MiningSession._prepare`: the label-filtered start
    list when the label index applies, otherwise every vertex hub-first.
    """
    if opts.plan is not None:
        plan, key = opts.plan, None
    else:
        plan, key = session._cached_plan(
            pattern, opts.edge_induced, opts.symmetry_breaking
        )
    starts = session._starts_for(plan, key) if opts.label_index else None
    if starts is None:
        n = session.ordered.num_vertices
        return range(n - 1, -1, -1)
    return starts


# ----------------------------------------------------------------------
# The stratified round estimator (shared by single- and multi-pattern)
# ----------------------------------------------------------------------


def _exact_results(
    totals: Sequence[int],
    samples: int,
    rounds: int,
    frontier_size: int,
    confidence: float,
    rel_err,
    method: str,
    early_stop: str,
) -> list[ApproxCount]:
    return [
        ApproxCount(
            estimate=float(total),
            stderr=0.0,
            ci_low=float(total),
            ci_high=float(total),
            confidence=confidence,
            rel_err=0.0,
            requested_rel_err=rel_err,
            samples=samples,
            rounds=rounds,
            frontier_size=frontier_size,
            hit_rate=1.0 if total else 0.0,
            method=method,
            exact=True,
            early_stop=early_stop,
        )
        for total in totals
    ]


def _member_result(
    rounds_j: list[float],
    hits_j: int,
    samples: int,
    frontier_size: int,
    confidence: float,
    rel_err,
    method: str,
    early_stop: str,
) -> ApproxCount:
    r = len(rounds_j)
    estimate = statistics.fmean(rounds_j) if r else 0.0
    stderr, half = _half_width(rounds_j, confidence)
    if half == 0.0 or (estimate <= 0.0 and half == 0.0):
        achieved = 0.0
    elif estimate <= 0.0:
        achieved = float("inf")
    else:
        achieved = half / estimate
    return ApproxCount(
        estimate=estimate,
        stderr=stderr,
        ci_low=estimate - half,
        ci_high=estimate + half,
        confidence=confidence,
        rel_err=achieved,
        requested_rel_err=rel_err,
        samples=samples,
        rounds=r,
        frontier_size=frontier_size,
        hit_rate=(hits_j / r) if r else 0.0,
        method=method,
        exact=False,
        early_stop=early_stop,
    )


def _estimate_group(
    run_members: Callable[[list[int]], list[int]],
    num_members: int,
    frontier,
    *,
    rel_err: float | None,
    confidence: float,
    max_samples: int | None,
    rng: random.Random,
    hub_exhaust: int = HUB_EXHAUST,
    round_starts: int = ROUND_STARTS,
    method: str = "ns",
) -> list[ApproxCount]:
    """Run the stratified round loop for one shared-frontier group.

    ``run_members(starts)`` performs one exact engine pass over the
    given level-0 starts and returns per-member totals.  Duplicates in
    ``starts`` are counted multiply — exactly what with-replacement
    Horvitz–Thompson reweighting requires.
    """
    N = len(frontier)
    if N == 0:
        return _exact_results(
            [0] * num_members, 0, 0, 0, confidence, rel_err, method,
            STOP_EMPTY,
        )
    budget = N if max_samples is None else max_samples
    allow_exact = budget >= N
    h = min(hub_exhaust, N // 2, budget // 2)
    tail = N - h
    m = max(1, min(round_starts, tail))
    if not allow_exact:
        m = max(1, min(m, (budget - h) // MIN_ROUNDS))
    if (max_samples is not None and max_samples >= N) or (
        allow_exact and h + MIN_ROUNDS * m >= N
    ):
        # An explicit budget covering the whole frontier, or too little
        # tail to sample meaningfully — exact is cheaper than estimating.
        totals = run_members(list(frontier))
        return _exact_results(
            totals, N, 0, N, confidence, rel_err, method, STOP_EXHAUSTED
        )
    hub_totals = (
        run_members(list(frontier[:h])) if h > 0 else [0] * num_members
    )
    samples = h
    scale = tail / m
    per_round: list[list[float]] = [[] for _ in range(num_members)]
    hits = [0] * num_members
    early_stop = STOP_BUDGET
    while True:
        if samples + m > budget:
            if allow_exact:
                # The draws would cover the frontier: finish the tail
                # exactly instead — same answer as the exact verb.
                tail_totals = run_members(list(frontier[h:]))
                totals = [
                    hub_totals[j] + tail_totals[j]
                    for j in range(num_members)
                ]
                return _exact_results(
                    totals,
                    samples + tail,
                    len(per_round[0]),
                    N,
                    confidence,
                    rel_err,
                    method,
                    STOP_EXHAUSTED,
                )
            break
        starts = [frontier[h + rng.randrange(tail)] for _ in range(m)]
        totals = run_members(starts)
        samples += m
        for j in range(num_members):
            per_round[j].append(hub_totals[j] + totals[j] * scale)
            if totals[j]:
                hits[j] += 1
        if rel_err is not None and len(per_round[0]) >= MIN_ROUNDS:
            if all(
                _target_met(per_round[j], rel_err, confidence)
                for j in range(num_members)
            ):
                early_stop = STOP_TARGET
                break
    return [
        _member_result(
            per_round[j], hits[j], samples, N, confidence, rel_err,
            method, early_stop,
        )
        for j in range(num_members)
    ]


# ----------------------------------------------------------------------
# Runners: one engine pass over explicit starts
# ----------------------------------------------------------------------


def _single_runner(
    session: MiningSession, pattern: Pattern, opts: ExecOptions
) -> Callable[[list[int]], list[int]]:
    inner = _inner_opts(opts)

    def run(starts: list[int]) -> list[int]:
        o = dataclasses.replace(inner, start_vertices=starts)
        return [int(session._run_match(pattern, None, o))]

    return run


def _group_runner(
    session: MiningSession,
    group: Sequence[int],
    patterns: Sequence[Pattern],
    plans,
    key,
    opts: ExecOptions,
) -> Callable[[list[int]], list[int]]:
    """One engine pass for a shared-frontier group of patterns.

    With numpy the whole group rides one :func:`fused_run` per call —
    the sampled frontier walk is shared exactly like an exact fused run
    — and count-only vertex-induced members demultiplex off the shared
    non-induced basis (the census tier; Möbius inversion is linear, so
    per-call restricted counts invert soundly *in expectation* once the
    caller applies its Horvitz–Thompson scaling).  Without numpy each
    member runs the reference engine over the same starts.
    """
    inner = _inner_opts(opts)
    use_fused = (
        _accel is not None
        and opts.plan is None
        and opts.engine in ("auto", "fused")
    )
    if not use_fused:

        def run_sequential(starts: list[int]) -> list[int]:
            o = dataclasses.replace(inner, start_vertices=starts)
            return [
                int(session._run_match(patterns[idx], None, o))
                for idx in group
            ]

        return run_sequential

    census_ok = (
        not opts.edge_induced and opts.symmetry_breaking and key is None
    )
    direct_pos: list[int] = []
    census_pos: list[int] = []
    for gpos, idx in enumerate(group):
        if census_ok and census_eligible(patterns[idx]):
            census_pos.append(gpos)
        else:
            direct_pos.append(gpos)
    if len(census_pos) < 2:
        direct_pos = list(range(len(group)))
        census_pos = []
    members = [(plans[group[gpos]], None, None) for gpos in direct_pos]
    transform = None
    census_codes: list = []
    if census_pos:
        transform, census_codes = session._census_transform_for(
            [patterns[group[gpos]] for gpos in census_pos]
        )
        members.extend(
            (session._cached_plan(basis_pattern, True, True)[0], None, None)
            for basis_pattern in transform.basis
        )
    view = session.view

    def run_fused(starts: list[int]) -> list[int]:
        counts = _accel.fused_run(
            view, members, start_vertices=starts, chunk=inner.frontier_chunk
        )
        out = [0] * len(group)
        for pos, gpos in enumerate(direct_pos):
            out[gpos] = int(counts[pos])
        if transform is not None:
            noninduced = {
                code: int(counts[len(direct_pos) + pos])
                for pos, (code, _) in enumerate(transform.order)
            }
            induced = transform.induced_counts(noninduced)
            for pos, gpos in enumerate(census_pos):
                out[gpos] = int(induced[census_codes[pos]])
        return out

    return run_fused


# ----------------------------------------------------------------------
# Session entry points (what count(approx=...) routes to)
# ----------------------------------------------------------------------


def approx_count_session(
    session: MiningSession, pattern: Pattern, opts: ExecOptions
) -> ApproxCount:
    """Estimate one pattern's count under resolved ``opts``.

    The internal target of ``MiningSession.count(pattern, approx=...)``;
    ``opts.approx``/``confidence``/``max_samples``/``seed`` drive the
    loop.  ``opts.approx`` may be ``None`` (spend the whole
    ``max_samples`` budget — the legacy-shim mode).
    """
    _reject_unsupported(opts)
    _validate(opts.approx, opts.confidence, opts.max_samples)
    frontier = _frontier_for(session, pattern, opts)
    [result] = _estimate_group(
        _single_runner(session, pattern, opts),
        1,
        frontier,
        rel_err=opts.approx,
        confidence=opts.confidence,
        max_samples=opts.max_samples,
        rng=random.Random(opts.seed),
    )
    return result


def approx_count_many_session(
    session: MiningSession, patterns: Sequence[Pattern], opts: ExecOptions
) -> dict[Pattern, ApproxCount]:
    """Estimate every pattern, sharing sampled fused walks per group.

    The internal target of ``count_many(patterns, approx=...)``.
    Patterns group by pinned-start-label signature exactly like the
    exact fused path; every group samples *one* shared frontier and all
    of the group's members stop together (the loop runs until every
    member meets the target, so shared rounds are never wasted).  The
    ``max_samples`` budget applies per group.
    """
    _reject_unsupported(opts)
    _validate(opts.approx, opts.confidence, opts.max_samples)
    if opts.plan is not None:
        raise MatchingError(
            "plan= is a single-pattern override; count_many(approx=...) "
            "plans each pattern from the session cache"
        )
    patterns = list(patterns)
    plans = [
        session._cached_plan(p, opts.edge_induced, opts.symmetry_breaking)[0]
        for p in patterns
    ]
    labels = session.ordered.labels()
    if labels is None and any(
        plan.matched_pattern.is_labeled for plan in plans
    ):
        raise MatchingError(
            "pattern has label constraints but the data graph is unlabeled"
        )
    multi = MultiPatternPlan.build(
        plans, label_index=opts.label_index and labels is not None,
        min_group=1,
    )
    n = session.ordered.num_vertices
    rng = random.Random(opts.seed)
    results: list[ApproxCount | None] = [None] * len(patterns)
    for group, key in zip(multi.groups, multi.group_keys):
        starts = group_start_vertices(session.ordered, key)
        frontier = starts if starts is not None else range(n - 1, -1, -1)
        group_results = _estimate_group(
            _group_runner(session, group, patterns, plans, key, opts),
            len(group),
            frontier,
            rel_err=opts.approx,
            confidence=opts.confidence,
            max_samples=opts.max_samples,
            rng=rng,
        )
        for gpos, idx in enumerate(group):
            results[idx] = group_results[gpos]
    return dict(zip(patterns, results))


# ----------------------------------------------------------------------
# Functional surface (what the CLI/bench and the legacy shims call)
# ----------------------------------------------------------------------


def approx_count(
    graph_or_session,
    pattern: Pattern,
    rel_err: float | None = DEFAULT_REL_ERR,
    confidence: float = DEFAULT_CONFIDENCE,
    max_samples: int | None = None,
    seed: int | None = None,
    method: str = "ns",
    num_colors: int = 2,
    hub_exhaust: int = HUB_EXHAUST,
    round_starts: int = ROUND_STARTS,
    **options,
) -> ApproxCount:
    """Estimate ``pattern``'s count to ``rel_err`` relative error.

    The functional spelling of ``session.count(pattern, approx=...)``,
    plus the knobs the verb keeps at defaults: ``method`` selects the
    estimator (``"ns"`` neighborhood sampling or ``"color-coding"``),
    ``hub_exhaust``/``round_starts`` tune the sampling geometry, and
    ``rel_err=None`` disables the accuracy target (spend ``max_samples``
    and report the achieved interval).  ``**options`` are the usual
    :class:`~repro.core.session.ExecOptions` overrides.
    """
    session = as_session(graph_or_session)
    opts = session.options(**options)
    if method == "color-coding":
        return color_coding_count(
            session,
            pattern,
            rel_err=rel_err,
            confidence=confidence,
            max_colorings=(
                MAX_COLORINGS if max_samples is None else max_samples
            ),
            num_colors=num_colors,
            seed=seed,
            **options,
        )
    if method != "ns":
        raise ValueError(
            f"method must be 'ns' or 'color-coding', got {method!r}"
        )
    _reject_unsupported(opts)
    _validate(rel_err, confidence, max_samples)
    frontier = _frontier_for(session, pattern, opts)
    [result] = _estimate_group(
        _single_runner(session, pattern, opts),
        1,
        frontier,
        rel_err=rel_err,
        confidence=confidence,
        max_samples=max_samples,
        rng=random.Random(seed),
        hub_exhaust=hub_exhaust,
        round_starts=round_starts,
    )
    return result


def approx_count_many(
    graph_or_session,
    patterns: Sequence[Pattern],
    rel_err: float | None = DEFAULT_REL_ERR,
    confidence: float = DEFAULT_CONFIDENCE,
    max_samples: int | None = None,
    seed: int | None = None,
    hub_exhaust: int = HUB_EXHAUST,
    round_starts: int = ROUND_STARTS,
    **options,
) -> dict[Pattern, ApproxCount]:
    """Estimate every pattern's count, sharing fused sampled walks.

    The functional spelling of ``count_many(patterns, approx=...)`` with
    the sampling-geometry knobs exposed (see :func:`approx_count`).
    """
    session = as_session(graph_or_session)
    opts = session.options(**options)
    _reject_unsupported(opts)
    _validate(rel_err, confidence, max_samples)
    patterns = list(patterns)
    plans = [
        session._cached_plan(p, opts.edge_induced, opts.symmetry_breaking)[0]
        for p in patterns
    ]
    labels = session.ordered.labels()
    if labels is None and any(
        plan.matched_pattern.is_labeled for plan in plans
    ):
        raise MatchingError(
            "pattern has label constraints but the data graph is unlabeled"
        )
    multi = MultiPatternPlan.build(
        plans, label_index=opts.label_index and labels is not None,
        min_group=1,
    )
    n = session.ordered.num_vertices
    rng = random.Random(seed)
    results: list[ApproxCount | None] = [None] * len(patterns)
    for group, key in zip(multi.groups, multi.group_keys):
        starts = group_start_vertices(session.ordered, key)
        frontier = starts if starts is not None else range(n - 1, -1, -1)
        group_results = _estimate_group(
            _group_runner(session, group, patterns, plans, key, opts),
            len(group),
            frontier,
            rel_err=rel_err,
            confidence=confidence,
            max_samples=max_samples,
            rng=rng,
            hub_exhaust=hub_exhaust,
            round_starts=round_starts,
        )
        for gpos, idx in enumerate(group):
            results[idx] = group_results[gpos]
    return dict(zip(patterns, results))


def color_coding_count(
    graph_or_session,
    pattern: Pattern,
    rel_err: float | None = DEFAULT_REL_ERR,
    confidence: float = DEFAULT_CONFIDENCE,
    max_colorings: int = MAX_COLORINGS,
    num_colors: int = 2,
    seed: int | None = None,
    **options,
) -> ApproxCount:
    """Color-coding estimate via colorful sparsification.

    Each round draws an independent uniform ``num_colors``-coloring of
    the vertices, builds the monochromatic-edge subgraph, counts
    ``pattern`` exactly there (the subgraph gets its own session, so the
    count runs the full engine stack on ~``m / num_colors`` edges) and
    scales by ``num_colors ** (k - 1)``.  Rounds are i.i.d. unbiased
    estimates; adaptive growth stops at ``rel_err`` or after
    ``max_colorings`` rounds.  Requires a *connected* pattern (the
    survival probability argument needs one mono-chromatic component)
    and non-induced semantics (``edge_induced=True``) — removed edges
    would satisfy anti-edge checks vacuously.
    """
    from ..graph.builder import from_edges

    session = as_session(graph_or_session)
    opts = session.options(**options)
    _reject_unsupported(opts)
    _validate(rel_err, confidence, max_colorings)
    if not pattern.is_connected():
        raise MatchingError(
            "color coding requires a connected pattern; use "
            "neighborhood sampling (method='ns') instead"
        )
    if not opts.edge_induced:
        raise MatchingError(
            "color coding is only unbiased for non-induced counting "
            "(edge_induced=True): sparsification removes edges, so "
            "anti-edge checks on the subgraph misfire"
        )
    if num_colors < 2:
        raise ValueError(f"num_colors must be >= 2, got {num_colors!r}")
    graph = session.graph
    n = graph.num_vertices
    k = pattern.num_vertices
    if n == 0:
        return _exact_results(
            [0], 0, 0, 0, confidence, rel_err, "color-coding", STOP_EMPTY
        )[0]
    scale = float(num_colors) ** (k - 1)
    labels = None if graph.labels() is None else list(graph.labels())
    edges = list(graph.edges())
    rng = random.Random(seed)
    rounds: list[float] = []
    hits = 0
    early_stop = STOP_BUDGET
    while len(rounds) < max_colorings:
        colors = [rng.randrange(num_colors) for _ in range(n)]
        kept = [(u, v) for u, v in edges if colors[u] == colors[v]]
        sub = from_edges(
            kept, labels=labels, num_vertices=n,
            name=f"{graph.name}-colorful",
        )
        count = int(
            MiningSession(sub).count(
                pattern,
                edge_induced=True,
                symmetry_breaking=opts.symmetry_breaking,
                label_index=opts.label_index,
            )
        )
        rounds.append(count * scale)
        if count:
            hits += 1
        if (
            rel_err is not None
            and len(rounds) >= MIN_ROUNDS
            and _target_met(rounds, rel_err, confidence)
        ):
            early_stop = STOP_TARGET
            break
    return _member_result(
        rounds, hits, len(rounds), n, confidence, rel_err,
        "color-coding", early_stop,
    )
