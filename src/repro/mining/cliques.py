"""Clique workloads: counting, listing, existence (Fig 4d, 4f) and the
maximal-clique variant via anti-vertices (§6.5, pattern p7).

A k-clique's matching order is unique (the clique is its own core and the
partial order is a total order), so clique counting on Peregrine reduces to
ordered adjacency intersections — no wasted exploration at all.

Every entry point accepts a :class:`~repro.graph.graph.DataGraph` or a
:class:`~repro.core.session.MiningSession`.
"""

from __future__ import annotations

from ..core.callbacks import ExplorationControl, Match
from ..core.session import MiningSession, as_session
from ..graph.graph import DataGraph
from ..pattern.generators import generate_clique
from ..pattern.pattern import Pattern

__all__ = [
    "clique_count",
    "clique_exists",
    "list_cliques",
    "maximal_clique_pattern",
    "maximal_clique_count",
]


def clique_count(
    graph: DataGraph | MiningSession,
    k: int,
    symmetry_breaking: bool = True,
    engine: str | None = None,
) -> int:
    """Number of k-cliques in the graph.

    With ``symmetry_breaking=False`` (PRG-U) every one of the k! automorphic
    orderings is explored; the result is corrected by dividing by k!.
    """
    found = as_session(graph).count(
        generate_clique(k), symmetry_breaking=symmetry_breaking, engine=engine
    )
    if not symmetry_breaking:
        factorial = 1
        for i in range(2, k + 1):
            factorial *= i
        found //= factorial
    return found


def clique_exists(graph: DataGraph | MiningSession, k: int) -> bool:
    """Whether the graph contains a k-clique; stops at the first (§5.3)."""
    return as_session(graph).exists(generate_clique(k))


def list_cliques(
    graph: DataGraph | MiningSession, k: int, limit: int | None = None
) -> list[tuple[int, ...]]:
    """Enumerate k-cliques as sorted vertex tuples (optionally capped)."""
    found: list[tuple[int, ...]] = []
    control = ExplorationControl()

    def on_match(m: Match) -> None:
        found.append(tuple(sorted(m.vertices())))
        if limit is not None and len(found) >= limit:
            control.stop()

    as_session(graph).match(generate_clique(k), on_match, control=control)
    return found


def maximal_clique_pattern(k: int) -> Pattern:
    """K_k plus a fully-connected anti-vertex: cliques in no (k+1)-clique.

    For k = 3 this is the paper's pattern p7 (§6.5).
    """
    p = generate_clique(k)
    p.add_anti_vertex(list(range(k)))
    return p


def maximal_clique_count(
    graph: DataGraph | MiningSession, k: int, engine: str | None = None
) -> int:
    """Number of k-cliques not contained in any (k+1)-clique."""
    return as_session(graph).count(maximal_clique_pattern(k), engine=engine)
