"""Frequent Subgraph Mining with MNI support and label discovery (§3.2.1).

The FSM loop is the paper's Figure 4a program:

1. start from the unlabeled single-edge pattern;
2. ``match()`` it with *label discovery*: every match's data labels induce
   a labeled pattern, whose per-vertex domains are updated;
3. prune labeled patterns below the support threshold (MNI is
   anti-monotonic, so infrequent patterns cannot have frequent
   extensions);
4. extend the survivors by one edge (new vertices are label wildcards) and
   repeat until patterns have the requested number of edges.

Domains are folded into canonical coordinates via
:func:`~repro.pattern.canonical.canonical_permutation`, so matches of
isomorphic labeled patterns discovered through different extension paths
aggregate into one table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:  # numpy powers the batched domain group-by; per-match is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from ..core.callbacks import Match
from ..core.session import MiningSession, as_session
from ..core.symmetry import orbit_partition
from ..graph.graph import DataGraph
from ..pattern.canonical import canonical_form, canonical_permutation
from ..pattern.extend import extend_by_edge
from ..pattern.pattern import Pattern
from .support import Domain

__all__ = ["FSMResult", "fsm"]


@dataclass
class FSMResult:
    """Outcome of one FSM run.

    ``frequent`` maps each frequent labeled pattern (canonical form) at the
    final size to its MNI support; ``frequent_by_size[k]`` records the
    intermediate rounds.  ``domain_writes`` totals per-vertex domain
    insertions — the aggregation-write metric behind Figure 10's FSM bars —
    and ``domain_bytes`` the peak logical bitmap footprint (Figure 13).
    """

    threshold: int
    num_edges: int
    frequent: dict[Pattern, int] = field(default_factory=dict)
    frequent_by_size: dict[int, dict[Pattern, int]] = field(default_factory=dict)
    patterns_explored: int = 0
    domain_writes: int = 0
    domain_bytes: int = 0

    def total_frequent(self) -> int:
        return len(self.frequent)


def _table_collector(
    structural: Pattern, symmetry_breaking: bool, bitset_factory=None
):
    """Per-structural discovery state: the tables dict and its key fn."""
    tables: dict[tuple, tuple[Pattern, Domain]] = {}
    # Cache per distinct label tuple: (code, order) of the labeled pattern.
    labeling_cache: dict[tuple, tuple[tuple, tuple[int, ...]]] = {}
    n = structural.num_vertices

    def table_key(labels: tuple) -> tuple[tuple, tuple[int, ...]]:
        cached = labeling_cache.get(labels)
        if cached is None:
            labeled = structural.copy()
            for u, lab in enumerate(labels):
                labeled.set_label(u, lab)
            cached = canonical_permutation(labeled)
            labeling_cache[labels] = cached
            code, _ = cached
            if code not in tables:
                canonical = canonical_form(labeled)
                orbits = (
                    orbit_partition(canonical) if symmetry_breaking else None
                )
                tables[code] = (
                    canonical,
                    Domain(n, orbits, bitset_factory=bitset_factory),
                )
        return cached

    return tables, table_key


def _batch_discoverer(
    graph: DataGraph,
    structural: Pattern,
    symmetry_breaking: bool,
    bitset_factory=None,
):
    """``(tables, on_batch)`` for one structural pattern (numpy path).

    Each batch is group-reduced with a vectorized row-``unique`` over the
    matched label tuples, then folded into the domains column-wise — one
    Python call per distinct labeling per batch instead of one per match.
    """
    tables, table_key = _table_collector(
        structural, symmetry_breaking, bitset_factory
    )
    n = structural.num_vertices
    graph_labels = _np.asarray(graph.labels(), dtype=_np.int64)
    # Scalar keys for the row group-by: label tuples are mixed-radix
    # encoded so the per-batch unique runs over 1D int64 (far cheaper
    # than ``np.unique(axis=0)``'s structured sort).
    radix = int(graph_labels.max()) + 1 if graph_labels.size else 1
    # Huge label alphabets could overflow the scalar encoding; the
    # structured-sort unique is the (slower) safe fallback there.
    scalar_keys = (
        radix > 1
        and int(graph_labels.min()) >= 0
        and n * (radix - 1).bit_length() < 62
    )
    powers = radix ** _np.arange(n, dtype=_np.int64) if scalar_keys else None

    def on_batch(mappings) -> None:
        # Group rows by their matched label tuple in one vectorized
        # pass (unique + stable argsort, so each group is one slice),
        # then write each group's columns (canonical order) into its
        # domain table as a batch.
        label_rows = graph_labels[mappings]
        if scalar_keys:
            _, first_row, inverse = _np.unique(
                label_rows @ powers, return_index=True, return_inverse=True
            )
        else:
            _, first_row, inverse = _np.unique(
                label_rows, axis=0, return_index=True, return_inverse=True
            )
        by_group = mappings[_np.argsort(inverse, kind="stable")]
        ends = _np.cumsum(_np.bincount(inverse, minlength=first_row.size))
        start = 0
        for gi, end in enumerate(ends.tolist()):
            labels = tuple(int(lab) for lab in label_rows[first_row[gi]])
            code, order = table_key(labels)
            tables[code][1].update_batch(by_group[start:end, list(order)])
            start = end

    return tables, on_batch


def _discover(
    session: MiningSession,
    structural: Pattern,
    symmetry_breaking: bool,
    bitset_factory=None,
    engine: str | None = None,
) -> dict[tuple, tuple[Pattern, Domain]]:
    """Match one (partially labeled) pattern, grouping by discovered labels.

    Returns ``{canonical code of labeled pattern: (pattern, domain)}``.
    The labeled pattern's canonical permutation is computed lazily per
    distinct labeling, and each match's vertices are written into the
    domains in canonical coordinates.  This is the single-pattern path;
    FSM rounds go through :func:`_discover_round`, which fuses all of a
    round's structural patterns onto one frontier walk.
    """
    return _discover_round(
        session, [structural], symmetry_breaking, bitset_factory, engine
    )[0]


def _discover_round(
    session: MiningSession,
    structurals: list[Pattern],
    symmetry_breaking: bool,
    bitset_factory=None,
    engine: str | None = None,
) -> list[dict[tuple, tuple[Pattern, Domain]]]:
    """Discover labelings for every structural pattern of one FSM round.

    With numpy available, the round issues a single
    :meth:`~repro.core.session.MiningSession.match_batches_many`: the
    structural patterns share one level-0 frontier walk (they are
    unlabeled, so they always group) and every pattern's matches arrive
    as arrays for the vectorized domain group-by.  The per-match callback
    path remains as the numpy-free fallback and computes identical
    tables.
    """
    graph = session.graph
    if _np is not None and graph.labels() is not None:
        pairs = [
            _batch_discoverer(graph, s, symmetry_breaking, bitset_factory)
            for s in structurals
        ]
        session.match_batches_many(
            structurals,
            [on_batch for _, on_batch in pairs],
            edge_induced=True,
            symmetry_breaking=symmetry_breaking,
            engine=engine,
        )
        return [tables for tables, _ in pairs]

    results: list[dict[tuple, tuple[Pattern, Domain]]] = []
    for structural in structurals:
        tables, table_key = _table_collector(
            structural, symmetry_breaking, bitset_factory
        )
        n = structural.num_vertices

        def on_match(m: Match, _table_key=table_key, _tables=tables, _n=n) -> None:
            labels = tuple(graph.label(m.mapping[u]) for u in range(_n))
            code, order = _table_key(labels)
            domain = _tables[code][1]
            domain.update([m.mapping[u] for u in order])

        session.match(
            structural,
            on_match,
            edge_induced=True,
            symmetry_breaking=symmetry_breaking,
            engine=engine,
        )
        results.append(tables)
    return results


def fsm(
    graph: DataGraph | MiningSession,
    num_edges: int,
    threshold: int,
    symmetry_breaking: bool = True,
    bitset_factory=None,
    engine: str | None = None,
) -> FSMResult:
    """Mine all frequent labeled patterns with up to ``num_edges`` edges.

    Parameters
    ----------
    graph: a *labeled* data graph (or a session pinning one); every
        round's structural matches run over one shared session.
    num_edges: pattern size in edges at the final round (the paper's
        "3-edge FSM" is ``num_edges=3``).
    threshold: MNI support threshold tau.
    symmetry_breaking: disable for the PRG-U ablation — every automorphic
        match then updates domains redundantly (Fig 10's FSM comparison).
    bitset_factory: backing store for domain bitmaps; defaults to the
        dense int-backed :class:`~repro.mining.support.Bitset`, and
        :class:`~repro.bitmap.RoaringBitmap` gives the paper's compressed
        behaviour (the two are compared in ``bench_ablations.py``).
    """
    session = as_session(graph)
    result = FSMResult(threshold=threshold, num_edges=num_edges)
    seed = Pattern.from_edges([(0, 1)])
    frontier: list[Pattern] = [seed]
    for size in range(1, num_edges + 1):
        frequent_here: dict[Pattern, int] = {}
        merged: dict[tuple, tuple[Pattern, Domain]] = {}
        round_tables = _discover_round(
            session, frontier, symmetry_breaking, bitset_factory, engine=engine
        )
        for tables in round_tables:
            result.patterns_explored += 1
            for code, (labeled, domain) in tables.items():
                if code in merged:
                    merged[code][1].merge_from(domain)
                else:
                    merged[code] = (labeled, domain)
        round_bytes = 0
        for labeled, domain in merged.values():
            result.domain_writes += domain.writes
            round_bytes += domain.memory_bytes()
            support = domain.support()
            if support >= threshold:
                frequent_here[labeled] = support
        result.domain_bytes = max(result.domain_bytes, round_bytes)
        result.frequent_by_size[size] = frequent_here
        if size == num_edges or not frequent_here:
            result.frequent = frequent_here
            break
        frontier = extend_by_edge(frequent_here.keys())
    return result
