"""Frequent Subgraph Mining with MNI support and label discovery (§3.2.1).

The FSM loop is the paper's Figure 4a program:

1. start from the unlabeled single-edge pattern;
2. ``match()`` it with *label discovery*: every match's data labels induce
   a labeled pattern, whose per-vertex domains are updated;
3. prune labeled patterns below the support threshold (MNI is
   anti-monotonic, so infrequent patterns cannot have frequent
   extensions);
4. extend the survivors by one edge (new vertices are label wildcards) and
   repeat until patterns have the requested number of edges.

Domains are folded into canonical coordinates via
:func:`~repro.pattern.canonical.canonical_permutation`, so matches of
isomorphic labeled patterns discovered through different extension paths
aggregate into one table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.api import match
from ..core.callbacks import Match
from ..core.symmetry import orbit_partition
from ..graph.graph import DataGraph
from ..pattern.canonical import canonical_form, canonical_permutation
from ..pattern.extend import extend_by_edge
from ..pattern.pattern import Pattern
from .support import Domain

__all__ = ["FSMResult", "fsm"]


@dataclass
class FSMResult:
    """Outcome of one FSM run.

    ``frequent`` maps each frequent labeled pattern (canonical form) at the
    final size to its MNI support; ``frequent_by_size[k]`` records the
    intermediate rounds.  ``domain_writes`` totals per-vertex domain
    insertions — the aggregation-write metric behind Figure 10's FSM bars —
    and ``domain_bytes`` the peak logical bitmap footprint (Figure 13).
    """

    threshold: int
    num_edges: int
    frequent: dict[Pattern, int] = field(default_factory=dict)
    frequent_by_size: dict[int, dict[Pattern, int]] = field(default_factory=dict)
    patterns_explored: int = 0
    domain_writes: int = 0
    domain_bytes: int = 0

    def total_frequent(self) -> int:
        return len(self.frequent)


def _discover(
    graph: DataGraph,
    structural: Pattern,
    symmetry_breaking: bool,
    bitset_factory=None,
    engine: str = "auto",
) -> dict[tuple, tuple[Pattern, Domain]]:
    """Match one (partially labeled) pattern, grouping by discovered labels.

    Returns ``{canonical code of labeled pattern: (pattern, domain)}``.
    The labeled pattern's canonical permutation is computed lazily per
    distinct labeling, and each match's vertices are written into the
    domains in canonical coordinates.
    """
    tables: dict[tuple, tuple[Pattern, Domain]] = {}
    # Cache per distinct label tuple: (code, order) of the labeled pattern.
    labeling_cache: dict[tuple, tuple[tuple, tuple[int, ...]]] = {}
    n = structural.num_vertices

    def on_match(m: Match) -> None:
        labels = tuple(graph.label(m.mapping[u]) for u in range(n))
        cached = labeling_cache.get(labels)
        if cached is None:
            labeled = structural.copy()
            for u, lab in enumerate(labels):
                labeled.set_label(u, lab)
            cached = canonical_permutation(labeled)
            labeling_cache[labels] = cached
            code, order = cached
            if code not in tables:
                canonical = canonical_form(labeled)
                orbits = (
                    orbit_partition(canonical) if symmetry_breaking else None
                )
                tables[code] = (canonical, Domain(n, orbits, bitset_factory=bitset_factory))
        code, order = cached
        domain = tables[code][1]
        domain.update([m.mapping[u] for u in order])

    match(
        graph,
        structural,
        callback=on_match,
        edge_induced=True,
        symmetry_breaking=symmetry_breaking,
        engine=engine,
    )
    return tables


def fsm(
    graph: DataGraph,
    num_edges: int,
    threshold: int,
    symmetry_breaking: bool = True,
    bitset_factory=None,
    engine: str = "auto",
) -> FSMResult:
    """Mine all frequent labeled patterns with up to ``num_edges`` edges.

    Parameters
    ----------
    graph: a *labeled* data graph.
    num_edges: pattern size in edges at the final round (the paper's
        "3-edge FSM" is ``num_edges=3``).
    threshold: MNI support threshold tau.
    symmetry_breaking: disable for the PRG-U ablation — every automorphic
        match then updates domains redundantly (Fig 10's FSM comparison).
    bitset_factory: backing store for domain bitmaps; defaults to the
        dense int-backed :class:`~repro.mining.support.Bitset`, and
        :class:`~repro.bitmap.RoaringBitmap` gives the paper's compressed
        behaviour (the two are compared in ``bench_ablations.py``).
    """
    result = FSMResult(threshold=threshold, num_edges=num_edges)
    seed = Pattern.from_edges([(0, 1)])
    frontier: list[Pattern] = [seed]
    for size in range(1, num_edges + 1):
        frequent_here: dict[Pattern, int] = {}
        merged: dict[tuple, tuple[Pattern, Domain]] = {}
        for structural in frontier:
            result.patterns_explored += 1
            tables = _discover(
                graph, structural, symmetry_breaking, bitset_factory, engine=engine
            )
            for code, (labeled, domain) in tables.items():
                if code in merged:
                    merged[code][1].merge_from(domain)
                else:
                    merged[code] = (labeled, domain)
        round_bytes = 0
        for labeled, domain in merged.values():
            result.domain_writes += domain.writes
            round_bytes += domain.memory_bytes()
            support = domain.support()
            if support >= threshold:
                frequent_here[labeled] = support
        result.domain_bytes = max(result.domain_bytes, round_bytes)
        result.frequent_by_size[size] = frequent_here
        if size == num_edges or not frequent_here:
            result.frequent = frequent_here
            break
        frontier = extend_by_edge(frequent_here.keys())
    return result
