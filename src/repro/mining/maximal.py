"""Clique-problem variations from §2.1: maximal, pseudo and frequent cliques.

The paper lists three variations of clique counting — *maximal* cliques
(cliques contained in no larger clique), *pseudo-cliques* (vertex sets whose
edge density exceeds a threshold), and *frequent* cliques (cliques whose
support exceeds a frequency threshold).  This module implements all three
on top of the pattern-aware engine, plus a classical Bron–Kerbosch
enumerator that serves as an exact cross-check baseline in tests.

Two routes to maximal cliques are provided:

* the *pattern-aware* route (:func:`maximal_cliques_of_size`) expresses
  "k-clique in no (k+1)-clique" with a fully-connected anti-vertex —
  the paper's pattern p7 generalized to any k — and lets the engine do
  the work;
* the *enumeration* route (:func:`bron_kerbosch`) lists all maximal
  cliques of every size with the pivoting variant of Bron–Kerbosch,
  which is what purpose-built tools do.

Both agree on every graph (tested property-style), which is itself a
strong correctness check of the anti-vertex machinery.

The pattern-aware routes accept a :class:`~repro.graph.graph.DataGraph`
or a :class:`~repro.core.session.MiningSession`; censuses and
density-threshold scans are multi-pattern workloads and share one
session per call.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from ..core.callbacks import Match
from ..core.session import MiningSession, as_session
from ..graph.graph import DataGraph
from ..mining.support import Domain
from ..core.symmetry import orbit_partition
from ..pattern.generators import generate_clique
from .cliques import maximal_clique_pattern

__all__ = [
    "bron_kerbosch",
    "maximal_cliques_of_size",
    "maximal_clique_census",
    "pseudo_clique_count",
    "pseudo_cliques",
    "frequent_clique_sizes",
]


# ----------------------------------------------------------------------
# Bron–Kerbosch with pivoting: the purpose-built baseline
# ----------------------------------------------------------------------

def bron_kerbosch(
    graph: DataGraph | MiningSession,
) -> Iterator[tuple[int, ...]]:
    """Yield every maximal clique of the graph as a sorted vertex tuple.

    Uses the pivoting variant: at each node of the recursion tree a pivot
    ``u`` maximizing ``|P ∩ adj(u)|`` is chosen and only non-neighbors of
    the pivot are branched on, which prunes the search exponentially on
    dense graphs.
    """
    if isinstance(graph, MiningSession):
        graph = graph.graph
    adj = [set(graph.neighbors(v)) for v in graph.vertices()]

    def expand(r: list[int], p: set[int], x: set[int]) -> Iterator[tuple[int, ...]]:
        if not p and not x:
            yield tuple(sorted(r))
            return
        pivot = max(p | x, key=lambda u: len(p & adj[u]))
        for v in list(p - adj[pivot]):
            yield from expand(r + [v], p & adj[v], x & adj[v])
            p.remove(v)
            x.add(v)

    yield from expand([], set(graph.vertices()), set())


# ----------------------------------------------------------------------
# Pattern-aware maximal cliques (anti-vertex route)
# ----------------------------------------------------------------------

def maximal_cliques_of_size(
    graph: DataGraph | MiningSession, k: int, engine: str | None = None
) -> list[tuple[int, ...]]:
    """All maximal cliques with exactly ``k`` vertices, via anti-vertex.

    A k-clique is maximal iff no data vertex is adjacent to all of its
    members — exactly the constraint a fully-connected anti-vertex
    enforces (pattern p7 for k = 3).  Isolated vertices are maximal
    1-cliques and are handled directly (a 1-vertex pattern core needs no
    exploration).
    """
    session = as_session(graph)
    data = session.graph
    if k == 1:
        return [(v,) for v in data.vertices() if data.degree(v) == 0]
    found: list[tuple[int, ...]] = []

    def on_match(m: Match) -> None:
        found.append(tuple(sorted(m.vertices())))

    session.match(maximal_clique_pattern(k), on_match, engine=engine)
    return sorted(found)


def maximal_clique_census(
    graph: DataGraph | MiningSession, max_k: int, engine: str | None = None
) -> dict[int, int]:
    """Count maximal cliques by size for sizes ``1..max_k``.

    The census over *all* sizes equals what :func:`bron_kerbosch` yields,
    grouped by clique size; this function computes it pattern-aware,
    one anti-vertex query per size over one shared session.
    """
    session = as_session(graph)
    return {
        k: len(maximal_cliques_of_size(session, k, engine=engine))
        for k in range(1, max_k + 1)
    }


# ----------------------------------------------------------------------
# Pseudo-cliques (density threshold)
# ----------------------------------------------------------------------

def _density_patterns(k: int, density: float):
    """All connected k-vertex patterns whose edge density >= ``density``."""
    from ..pattern.generators import generate_all_vertex_induced

    total_pairs = k * (k - 1) // 2
    out = []
    for p in generate_all_vertex_induced(k):
        if total_pairs and p.num_edges / total_pairs >= density:
            out.append(p)
    return out


def pseudo_clique_count(
    graph: DataGraph | MiningSession, k: int, density: float
) -> int:
    """Number of k-vertex induced subgraphs with edge density >= ``density``.

    A pseudo-clique (§2.1) relaxes the fully-connected requirement to a
    density threshold; ``density=1.0`` degenerates to exact k-cliques.
    Counting is vertex-induced so each vertex set is counted once, under
    its actual induced pattern.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    session = as_session(graph)
    return sum(
        session.count(p, edge_induced=False)
        for p in _density_patterns(k, density)
    )


def pseudo_cliques(
    graph: DataGraph | MiningSession, k: int, density: float
) -> list[tuple[int, ...]]:
    """List the vertex sets of k-pseudo-cliques (sorted tuples)."""
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    session = as_session(graph)
    found: list[tuple[int, ...]] = []

    def on_match(m: Match) -> None:
        found.append(tuple(sorted(m.vertices())))

    for p in _density_patterns(k, density):
        session.match(p, on_match, edge_induced=False)
    return sorted(found)


# ----------------------------------------------------------------------
# Frequent cliques (MNI support threshold)
# ----------------------------------------------------------------------

def frequent_clique_sizes(
    graph: DataGraph | MiningSession,
    threshold: int,
    max_k: int | None = None,
) -> dict[int, int]:
    """Map ``k -> MNI support`` for every clique size meeting ``threshold``.

    Follows FSM's anti-monotone pruning (§2.1): the MNI support of K_k is
    non-increasing in k, so the scan stops at the first infrequent size.
    Because a clique's vertices form one automorphism orbit, the MNI
    support of K_k is simply the number of distinct data vertices
    participating in any k-clique.
    """
    session = as_session(graph)
    out: dict[int, int] = {}
    k = 2
    while max_k is None or k <= max_k:
        pattern = generate_clique(k)
        domain = Domain(k, orbits=orbit_partition(pattern))

        def on_match(m: Match, _domain=domain) -> None:
            _domain.update(m.mapping)

        session.match(pattern, on_match)
        support = domain.support()
        if support < threshold:
            break
        out[k] = support
        k += 1
    return out
