"""Motif counting (Fig 4e): vertex-induced counts of all size-k patterns.

A motif is any connected unlabeled pattern; counting motifs of size ``k``
means counting the vertex-induced matches of every connected pattern with
``k`` vertices.  The pattern-aware way (this module) plans and counts each
motif pattern directly; there is no isomorphism classification of explored
subgraphs — but the census *is* the canonical multi-pattern workload, so
all patterns of one call go through the session's fused multi-pattern
runner (:meth:`~repro.core.session.MiningSession.count_many` /
:meth:`~repro.core.session.MiningSession.match_many`): one shared level-0
frontier walk, shared first-level gathers, and — for count-only censuses
— the shared non-induced basis of
:mod:`repro.core.multipattern`, with results demultiplexed back to
per-motif counts.  ``engine="fused"`` / ``engine="accel-batch"`` ablate
fused vs. sequential per-pattern execution.

Every entry point accepts either a :class:`~repro.graph.graph.DataGraph`
or a :class:`~repro.core.session.MiningSession`; a motif census run
through a session also shares its degree ordering, CSR view and plan
cache with every other query of that session.

``labeled_motif_counts`` additionally discovers labels: matches of each
structural motif are grouped by the labels of their data vertices, the
workload behind the paper's "labeled 3-/4-motifs" rows.
"""

from __future__ import annotations

from ..core.callbacks import Match
from ..core.session import MiningSession, as_session
from ..graph.graph import DataGraph
from ..pattern.canonical import automorphism_count, canonical_permutation
from ..pattern.generators import generate_all_vertex_induced
from ..pattern.pattern import Pattern

__all__ = ["motif_counts", "labeled_motif_counts", "motif_census_table"]


def motif_counts(
    graph: DataGraph | MiningSession,
    size: int,
    symmetry_breaking: bool = True,
    engine: str | None = None,
    num_processes: int = 1,
    schedule: str | None = None,
    chunk_hint: int | None = None,
) -> dict[Pattern, int]:
    """Count vertex-induced matches of every motif with ``size`` vertices.

    The whole census is issued as one
    :meth:`~repro.core.session.MiningSession.count_many`, so compatible
    motifs fuse onto a shared frontier walk (and, under the default
    dispatch, onto the shared non-induced basis).  With
    ``symmetry_breaking=False`` (the PRG-U ablation) the engine
    enumerates all automorphic copies; the counts are then corrected by
    dividing by |Aut(motif)| — the "multiplicity" post-processing systems
    like AutoMine push onto the user (§2.2.2).  ``engine=None`` inherits
    the session's default dispatch.

    ``num_processes > 1`` scales the census across worker processes:
    the fused frontier walk is cut into degree-weighted chunks pulled
    from a shared work queue
    (:func:`repro.runtime.parallel.process_count_many`;
    ``schedule``/``chunk_hint`` tune the placement).
    """
    session = as_session(graph)
    motifs = generate_all_vertex_induced(size)
    options = {}
    if schedule is not None:
        options["schedule"] = schedule
    if chunk_hint is not None:
        options["chunk_hint"] = chunk_hint
    found = session.count_many(
        motifs,
        edge_induced=False,
        symmetry_breaking=symmetry_breaking,
        engine=engine,
        num_processes=num_processes,
        **options,
    )
    results: dict[Pattern, int] = {}
    for motif in motifs:
        matches = found[motif]
        if not symmetry_breaking:
            matches //= automorphism_count(motif.vertex_induced_closure())
        results[motif] = matches
    return results


def labeled_motif_counts(
    graph: DataGraph | MiningSession, size: int, engine: str | None = None
) -> dict[tuple, int]:
    """Count vertex-induced motifs grouped by discovered vertex labels.

    Returns ``{(structural canonical code, label tuple): count}`` where
    the label tuple lists labels at the canonical ordering's positions.
    Requires a labeled data graph.  All motifs run through one
    :meth:`~repro.core.session.MiningSession.match_many`, so the
    censuses' structural matches come off a fused frontier walk.
    """
    session = as_session(graph)
    data = session.graph
    results: dict[tuple, int] = {}
    motifs = generate_all_vertex_induced(size)
    callbacks = []
    for motif in motifs:
        code, order = canonical_permutation(motif)

        def on_match(m: Match, _code=code, _order=order) -> None:
            labels = tuple(data.label(m.mapping[u]) for u in _order)
            key = (_code, labels)
            results[key] = results.get(key, 0) + 1

        callbacks.append(on_match)
    session.match_many(motifs, callbacks, edge_induced=False, engine=engine)
    return results


def motif_census_table(
    graph: DataGraph | MiningSession,
    size: int,
    engine: str | None = None,
    num_processes: int = 1,
    schedule: str | None = None,
    chunk_hint: int | None = None,
) -> str:
    """Human-readable motif census (used by the motif-census example)."""
    session = as_session(graph)
    rows = []
    for motif, found in sorted(
        motif_counts(
            session,
            size,
            engine=engine,
            num_processes=num_processes,
            schedule=schedule,
            chunk_hint=chunk_hint,
        ).items(),
        key=lambda kv: -kv[1],
    ):
        rows.append(
            f"  {motif.num_edges:>2} edges  {found:>12,}  {motif!r}"
        )
    header = f"{size}-motif census of {session.graph.name}:"
    return "\n".join([header, *rows])
