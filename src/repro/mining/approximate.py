"""Approximate pattern counting via sampled exploration (ASAP-style).

ASAP [Iyer et al., OSDI '18] trades exactness for speed: instead of
enumerating every match it samples partial embeddings, scales each sample
by the inverse of its sampling probability (a Horvitz–Thompson estimator),
and uses a pilot phase to build an *error–latency profile* that converts a
target error bound into a number of samples.  The paper lists ASAP as the
programmable approximate-mining alternative to Peregrine (§7); this module
implements the same estimator on top of our schedule machinery so the
exact and approximate systems can be compared on identical workloads.

The estimator samples one loop-nest path per trial through the pattern's
compiled schedule (:func:`repro.baselines.automine.compile_schedule` —
guided, but multiplicity-redundant):

1. the first pattern vertex is drawn uniformly from V (probability 1/|V|);
2. each subsequent vertex is drawn uniformly from the candidate set built
   by intersecting already-matched neighbors' adjacency lists
   (probability 1/|candidates|);
3. a dead end (empty candidates, injectivity or induced-check failure)
   contributes 0; a completed embedding contributes the product of the
   inverse probabilities.

Averaging over trials and dividing by the pattern's multiplicity gives an
unbiased estimate of the unique-match count (tested against exact counts).

.. note:: **Experimental.**  The estimator is correct (unbiased, tested
   against exact counts) but the surface is still settling: it samples
   through the baseline AutoMine schedules rather than the session's
   own plans, so it ignores ``ExecOptions`` and the label index, and
   its error profile has only been validated on the small synthetic
   workloads in the test suite.  The service tier deliberately does not
   expose it as a verb yet.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..baselines.automine import AutoMineSchedule, compile_schedule
from ..core.candidates import contains, intersect_many
from ..core.session import MiningSession, as_session
from ..graph.graph import DataGraph
from ..pattern.generators import generate_all_vertex_induced, generate_clique
from ..pattern.pattern import Pattern

__all__ = [
    "ApproxResult",
    "approximate_count",
    "approximate_motif_counts",
    "approximate_triangle_count",
    "trials_for_error",
]


@dataclass(frozen=True)
class ApproxResult:
    """Outcome of one approximate counting run.

    ``estimate`` is the unbiased count estimate; ``ci95`` the half-width
    of the normal-approximation 95% confidence interval; ``hit_rate`` the
    fraction of trials that completed an embedding (low hit rates mean
    more trials are needed for the same accuracy — the quantity ASAP's
    error-latency profile models).
    """

    estimate: float
    trials: int
    stddev: float
    ci95: float
    hit_rate: float

    @property
    def relative_ci(self) -> float:
        """ci95 / estimate (guarding zero); the ASAP-style error metric."""
        if self.estimate == 0:
            return float("inf") if self.ci95 else 0.0
        return self.ci95 / self.estimate

    def within(self, exact: float, slack: float = 1.0) -> bool:
        """Whether ``exact`` lies inside ``slack`` × the 95% interval."""
        return abs(self.estimate - exact) <= max(self.ci95 * slack, 1e-9)


def _sample_once(
    graph: DataGraph, schedule: AutoMineSchedule, rng: random.Random
) -> float:
    """One Horvitz–Thompson trial: inverse path probability or 0."""
    labels = graph.labels()
    assignment: list[int] = []
    weight = float(graph.num_vertices)
    first_label = schedule.labels[0]
    v0 = rng.randrange(graph.num_vertices)
    if first_label is not None and labels[v0] != first_label:
        return 0.0
    assignment.append(v0)
    for i in range(1, schedule.depth):
        nbr_depths = schedule.earlier_neighbors[i]
        lists = [graph.neighbors(assignment[j]) for j in nbr_depths]
        cands = intersect_many(lists) if len(lists) > 1 else lists[0]
        if len(cands) == 0:
            return 0.0
        v = int(cands[rng.randrange(len(cands))])
        # Rejected candidates keep the estimator unbiased: the trial
        # sampled them with probability 1/|cands| and they contribute 0.
        if v in assignment:
            return 0.0
        want = schedule.labels[i]
        if want is not None and labels[v] != want:
            return 0.0
        if any(
            contains(graph.neighbors(assignment[j]), v)
            for j in schedule.earlier_non_neighbors[i]
        ):
            return 0.0
        weight *= len(cands)
        assignment.append(v)
    return weight


def approximate_count(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    trials: int = 10_000,
    seed: int | None = None,
    edge_induced: bool = True,
) -> ApproxResult:
    """Estimate the number of unique matches of ``pattern`` in ``graph``.

    ``trials`` controls the accuracy/latency trade-off; use
    :func:`trials_for_error` to pick it from a target error.  The
    estimate is unbiased for any trial count; the confidence interval
    assumes trials are i.i.d. (they are) and approximately normal
    (reasonable once a few hundred trials hit).  Graph access routes
    through :func:`~repro.core.session.as_session`, so anything a
    session accepts works here — a bare :class:`DataGraph`, a
    :class:`~repro.core.session.MiningSession` (exact/approximate
    comparisons then share one session), an open ``GraphStore``, or a
    filesystem path.
    """
    graph = as_session(graph).graph
    if trials <= 0:
        raise ValueError("trials must be positive")
    if graph.num_vertices == 0:
        return ApproxResult(0.0, trials, 0.0, 0.0, 0.0)
    schedule = compile_schedule(pattern, vertex_induced=not edge_induced)
    rng = random.Random(seed)
    total = 0.0
    total_sq = 0.0
    hits = 0
    for _ in range(trials):
        w = _sample_once(graph, schedule, rng)
        total += w
        total_sq += w * w
        if w:
            hits += 1
    mean = total / trials
    variance = max(total_sq / trials - mean * mean, 0.0)
    # Ordered embeddings -> unique matches.
    m = schedule.multiplicity
    estimate = mean / m
    stddev = math.sqrt(variance / trials) / m
    return ApproxResult(
        estimate=estimate,
        trials=trials,
        stddev=stddev,
        ci95=1.96 * stddev,
        hit_rate=hits / trials,
    )


def approximate_motif_counts(
    graph: DataGraph | MiningSession,
    size: int,
    trials: int = 10_000,
    seed: int | None = None,
) -> dict[Pattern, ApproxResult]:
    """Approximate vertex-induced motif census (ASAP's headline use case)."""
    out: dict[Pattern, ApproxResult] = {}
    for i, motif in enumerate(generate_all_vertex_induced(size)):
        child_seed = None if seed is None else seed + i
        out[motif] = approximate_count(
            graph, motif, trials=trials, seed=child_seed, edge_induced=False
        )
    return out


def approximate_triangle_count(
    graph: DataGraph | MiningSession,
    trials: int = 10_000,
    seed: int | None = None,
) -> ApproxResult:
    """Convenience: approximate triangle count."""
    return approximate_count(graph, generate_clique(3), trials=trials, seed=seed)


def trials_for_error(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    target_relative_error: float,
    pilot_trials: int = 2_000,
    seed: int | None = None,
    edge_induced: bool = True,
) -> int:
    """Error–latency profile: trials needed for a target 95% relative error.

    Runs a pilot phase, measures the sample variance, and solves
    ``1.96 · sigma / (sqrt(T) · mean) <= target`` for ``T`` — the same
    extrapolation ASAP's profile performs.  Returns at least the pilot
    size; raises ``ValueError`` when the pilot saw no matches at all (no
    profile can be built from zero signal).
    """
    if not 0 < target_relative_error:
        raise ValueError("target_relative_error must be positive")
    pilot = approximate_count(
        graph, pattern, trials=pilot_trials, seed=seed, edge_induced=edge_induced
    )
    if pilot.estimate == 0:
        raise ValueError(
            "pilot phase found no matches; cannot build an error profile"
        )
    # pilot.stddev already includes the 1/sqrt(pilot_trials) factor.
    sigma_single = pilot.stddev * math.sqrt(pilot.trials)
    needed = (1.96 * sigma_single / (target_relative_error * pilot.estimate)) ** 2
    return max(pilot_trials, math.ceil(needed))
