"""Legacy approximate-counting surface — deprecation shims (PR 10).

This module used to carry its own Horvitz–Thompson estimator sampling
through the baseline AutoMine schedules.  That tier is retired: the
session verb ``count(approx=rel_err)`` (and ``count_many``) now runs
:mod:`repro.mining.sampling` — sampled level-0 frontiers through the
*real* execution core (``FrontierBatchedEngine`` / ``fused_run``) with
stratified hub-exhaust HT reweighting, adaptive sample growth, and
Student-t confidence intervals.

Every public name here still works but emits :class:`DeprecationWarning`
and forwards to the new tier:

- ``approximate_count(graph, p, trials=...)`` →
  ``session.count(p, approx=..., max_samples=trials)``, with the
  :class:`~repro.mining.sampling.ApproxCount` result repackaged into the
  frozen legacy :class:`ApproxResult` shape (``trials`` ← samples used,
  ``ci95`` ← the normal-approximation half width).
- ``approximate_motif_counts`` forwards to ``count_many(approx=...)`` so
  the census shares fused sampled walks.
- ``trials_for_error`` runs its pilot phase on the new estimator and
  performs the same ASAP-style extrapolation as before.

New code should call :func:`repro.mining.sampling.approx_count` or the
session verbs directly.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

from ..core.session import MiningSession, as_session
from ..graph.graph import DataGraph
from ..pattern.generators import generate_all_vertex_induced, generate_clique
from ..pattern.pattern import Pattern

__all__ = [
    "ApproxResult",
    "approximate_count",
    "approximate_motif_counts",
    "approximate_triangle_count",
    "trials_for_error",
]

# Normal 95% two-sided quantile, matching the legacy 1.96 intervals.
_Z95 = 1.959963984540054

# Relative-error target handed to the new tier when the legacy caller
# only specified a trial budget: generous enough that ``trials`` (as
# ``max_samples``) stays the binding knob, matching legacy semantics.
_SHIM_REL_ERR = 0.01


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.mining.approximate.{name} is deprecated; use {replacement} "
        "(the session-integrated sampling tier, repro.mining.sampling)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ApproxResult:
    """Outcome of one approximate counting run (legacy result shape).

    ``estimate`` is the unbiased count estimate; ``ci95`` the half-width
    of the normal-approximation 95% confidence interval; ``hit_rate`` the
    fraction of trials that completed an embedding (low hit rates mean
    more trials are needed for the same accuracy — the quantity ASAP's
    error-latency profile models).
    """

    estimate: float
    trials: int
    stddev: float
    ci95: float
    hit_rate: float

    @property
    def relative_ci(self) -> float:
        """ci95 / estimate (guarding zero); the ASAP-style error metric."""
        if self.estimate == 0:
            return float("inf") if self.ci95 else 0.0
        return self.ci95 / self.estimate

    def within(self, exact: float, slack: float = 1.0) -> bool:
        """Whether ``exact`` lies inside ``slack`` × the 95% interval."""
        return abs(self.estimate - exact) <= max(self.ci95 * slack, 1e-9)


def _to_legacy(result) -> ApproxResult:
    """Repackage an :class:`~repro.mining.sampling.ApproxCount`."""
    stderr = 0.0 if not math.isfinite(result.stderr) else result.stderr
    return ApproxResult(
        estimate=result.estimate,
        trials=result.samples,
        stddev=stderr,
        ci95=_Z95 * stderr,
        hit_rate=result.hit_rate,
    )


def _shim_count(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    trials: int,
    seed: int | None,
    edge_induced: bool,
) -> ApproxResult:
    """Shared forwarding body (public wrappers warn; this one doesn't)."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    session = as_session(graph)
    if session.graph.num_vertices == 0:
        return ApproxResult(0.0, trials, 0.0, 0.0, 0.0)
    result = session.count(
        pattern,
        approx=_SHIM_REL_ERR,
        max_samples=trials,
        seed=seed,
        edge_induced=edge_induced,
    )
    return _to_legacy(result)


def approximate_count(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    trials: int = 10_000,
    seed: int | None = None,
    edge_induced: bool = True,
) -> ApproxResult:
    """Deprecated: use ``session.count(pattern, approx=rel_err)``.

    Forwards to the sampling tier with ``max_samples=trials``; the
    result is repackaged into the legacy :class:`ApproxResult` shape
    (``trials`` reports samples actually spent, which may be fewer than
    requested when the adaptive estimator meets its target early or the
    frontier is exhausted exactly).
    """
    _deprecated("approximate_count", "MiningSession.count(pattern, approx=...)")
    return _shim_count(graph, pattern, trials, seed, edge_induced)


def approximate_motif_counts(
    graph: DataGraph | MiningSession,
    size: int,
    trials: int = 10_000,
    seed: int | None = None,
) -> dict[Pattern, ApproxResult]:
    """Deprecated: use ``session.count_many(motifs, approx=rel_err)``.

    Forwards the whole census to ``count_many(approx=...)`` so motif
    groups share fused sampled walks (one frontier sample per group
    instead of one per motif).
    """
    _deprecated(
        "approximate_motif_counts",
        "MiningSession.count_many(motifs, approx=...)",
    )
    if trials <= 0:
        raise ValueError("trials must be positive")
    motifs = list(generate_all_vertex_induced(size))
    session = as_session(graph)
    if session.graph.num_vertices == 0:
        return {m: ApproxResult(0.0, trials, 0.0, 0.0, 0.0) for m in motifs}
    results = session.count_many(
        motifs,
        approx=_SHIM_REL_ERR,
        max_samples=trials,
        seed=seed,
        edge_induced=False,
    )
    return {m: _to_legacy(results[m]) for m in motifs}


def approximate_triangle_count(
    graph: DataGraph | MiningSession,
    trials: int = 10_000,
    seed: int | None = None,
) -> ApproxResult:
    """Deprecated convenience: approximate triangle count."""
    _deprecated(
        "approximate_triangle_count",
        "MiningSession.count(generate_clique(3), approx=...)",
    )
    return _shim_count(graph, generate_clique(3), trials, seed, True)


def trials_for_error(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    target_relative_error: float,
    pilot_trials: int = 2_000,
    seed: int | None = None,
    edge_induced: bool = True,
) -> int:
    """Deprecated: ``count(approx=rel_err)`` grows samples adaptively.

    The new tier makes the error–latency profile obsolete — it *is* the
    adaptive loop.  For callers still budgeting up front, this shim runs
    the pilot phase on the new estimator and performs the same
    extrapolation as before: measure the per-sample deviation, solve
    ``1.96 · sigma / (sqrt(T) · mean) <= target`` for ``T``.  Returns at
    least the pilot size; raises ``ValueError`` when the pilot saw no
    matches at all (no profile can be built from zero signal).
    """
    _deprecated(
        "trials_for_error",
        "MiningSession.count(pattern, approx=target_rel_err)",
    )
    if not 0 < target_relative_error:
        raise ValueError("target_relative_error must be positive")
    pilot = _shim_count(graph, pattern, pilot_trials, seed, edge_induced)
    if pilot.estimate == 0:
        raise ValueError(
            "pilot phase found no matches; cannot build an error profile"
        )
    if pilot.stddev == 0.0:
        # The pilot covered the frontier exactly — the answer is already
        # error-free at pilot size.
        return pilot_trials
    sigma_single = pilot.stddev * math.sqrt(max(pilot.trials, 1))
    needed = (_Z95 * sigma_single / (target_relative_error * pilot.estimate)) ** 2
    return max(pilot_trials, math.ceil(needed))
