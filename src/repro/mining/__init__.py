"""Mining applications built on the pattern-aware core (Figure 4)."""

from .support import Bitset, Domain
from .motifs import motif_counts, labeled_motif_counts, motif_census_table
from .cliques import (
    clique_count,
    clique_exists,
    list_cliques,
    maximal_clique_pattern,
    maximal_clique_count,
)
from .fsm import FSMResult, fsm
from .existence import (
    clique_existence,
    GccBoundResult,
    gcc_exceeds_bound,
    global_clustering_coefficient,
)
from .approximate import (
    ApproxResult,
    approximate_count,
    approximate_motif_counts,
    approximate_triangle_count,
    trials_for_error,
)
from .sampling import (
    ApproxCount,
    approx_count,
    approx_count_many,
    color_coding_count,
)
from .matching import (
    count_pattern,
    enumerate_matches,
    match_and_write,
    count_unique_subgraphs,
)

__all__ = [
    "ApproxCount",
    "approx_count",
    "approx_count_many",
    "color_coding_count",
    "ApproxResult",
    "approximate_count",
    "approximate_motif_counts",
    "approximate_triangle_count",
    "trials_for_error",
    "Bitset",
    "Domain",
    "motif_counts",
    "labeled_motif_counts",
    "motif_census_table",
    "clique_count",
    "clique_exists",
    "list_cliques",
    "maximal_clique_pattern",
    "maximal_clique_count",
    "FSMResult",
    "fsm",
    "clique_existence",
    "GccBoundResult",
    "gcc_exceeds_bound",
    "global_clustering_coefficient",
    "count_pattern",
    "enumerate_matches",
    "match_and_write",
    "count_unique_subgraphs",
]
