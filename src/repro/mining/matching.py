"""Pattern-matching workloads (Fig 4c): count, enumerate, stream matches.

Each function accepts a :class:`~repro.graph.graph.DataGraph` or a
:class:`~repro.core.session.MiningSession`.
"""

from __future__ import annotations

from typing import Callable

from ..core.callbacks import ExplorationControl, Match
from ..core.session import MiningSession, as_session
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern

__all__ = [
    "count_pattern",
    "enumerate_matches",
    "match_and_write",
    "count_unique_subgraphs",
]


def count_pattern(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    edge_induced: bool = True,
    engine: str | None = None,
) -> int:
    """Number of canonical matches of ``pattern``."""
    return as_session(graph).count(
        pattern, edge_induced=edge_induced, engine=engine
    )


def enumerate_matches(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    edge_induced: bool = True,
    limit: int | None = None,
) -> list[Match]:
    """Materialize matches as a list (optionally capped at ``limit``)."""
    out: list[Match] = []
    control = ExplorationControl()

    def collect(m: Match) -> None:
        out.append(m)
        if limit is not None and len(out) >= limit:
            control.stop()

    as_session(graph).match(
        pattern, collect, edge_induced=edge_induced, control=control
    )
    return out


def match_and_write(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    write: Callable[[Match], None],
    edge_induced: bool = True,
    engine: str | None = None,
) -> int:
    """The paper's Fig 4c program: stream every match to ``write``."""
    return as_session(graph).match(
        pattern, write, edge_induced=edge_induced, engine=engine
    )


def count_unique_subgraphs(
    graph: DataGraph | MiningSession,
    pattern: Pattern,
    edge_induced: bool = True,
    engine: str | None = None,
) -> int:
    """Count distinct data-vertex *sets* matched (collapses automorphism-
    inequivalent assignments over the same vertices, e.g. for reporting)."""
    seen: set[tuple[int, ...]] = set()

    def collect(m: Match) -> None:
        seen.add(tuple(sorted(m.vertices())))

    as_session(graph).match(
        pattern, collect, edge_induced=edge_induced, engine=engine
    )
    return len(seen)
