"""Pattern-matching workloads (Fig 4c): count, enumerate, stream matches."""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.api import count, match
from ..core.callbacks import ExplorationControl, Match
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern

__all__ = [
    "count_pattern",
    "enumerate_matches",
    "match_and_write",
    "count_unique_subgraphs",
]


def count_pattern(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    engine: str = "auto",
) -> int:
    """Number of canonical matches of ``pattern``."""
    return count(graph, pattern, edge_induced=edge_induced, engine=engine)


def enumerate_matches(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    limit: int | None = None,
) -> list[Match]:
    """Materialize matches as a list (optionally capped at ``limit``)."""
    out: list[Match] = []
    control = ExplorationControl()

    def collect(m: Match) -> None:
        out.append(m)
        if limit is not None and len(out) >= limit:
            control.stop()

    match(graph, pattern, callback=collect, edge_induced=edge_induced,
          control=control)
    return out


def match_and_write(
    graph: DataGraph,
    pattern: Pattern,
    write: Callable[[Match], None],
    edge_induced: bool = True,
    engine: str = "auto",
) -> int:
    """The paper's Fig 4c program: stream every match to ``write``."""
    return match(
        graph, pattern, callback=write, edge_induced=edge_induced, engine=engine
    )


def count_unique_subgraphs(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    engine: str = "auto",
) -> int:
    """Count distinct data-vertex *sets* matched (collapses automorphism-
    inequivalent assignments over the same vertices, e.g. for reporting)."""
    seen: set[tuple[int, ...]] = set()

    def collect(m: Match) -> None:
        seen.add(tuple(sorted(m.vertices())))

    match(graph, pattern, callback=collect, edge_induced=edge_induced,
          engine=engine)
    return len(seen)
