"""Existence queries with early termination (§3.2.2, §5.3).

Two programs from the paper: the k-clique existence check (Fig 4f) and the
global-clustering-coefficient bound (Fig 4b), which counts 3-stars, then
counts triangles only until the bound is provably exceeded.

Each function accepts a :class:`~repro.graph.graph.DataGraph` or a
:class:`~repro.core.session.MiningSession`; the GCC queries issue two
pattern queries over one session.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.callbacks import ExplorationControl, Match
from ..core.session import MiningSession, as_session
from ..graph.graph import DataGraph
from ..pattern.generators import generate_clique, generate_star

__all__ = ["clique_existence", "GccBoundResult", "gcc_exceeds_bound", "global_clustering_coefficient"]


def clique_existence(graph: DataGraph | MiningSession, k: int) -> bool:
    """Whether a k-clique exists; terminates exploration at the first match.

    This is the paper's 14-clique existence query (Table 6): on graphs
    that contain one, only a tiny fraction of the search space is touched.
    """
    return as_session(graph).exists(generate_clique(k))


@dataclass(frozen=True)
class GccBoundResult:
    """Outcome of the clustering-coefficient bound query."""

    exceeded: bool
    wedges: int
    triangles_seen: int  # triangles counted before termination
    bound: float


def gcc_exceeds_bound(
    graph: DataGraph | MiningSession, bound: float
) -> GccBoundResult:
    """Check whether the global clustering coefficient exceeds ``bound``.

    GCC = 3 * (#triangles) / (#connected triples).  The number of
    connected triples equals the number of edge-induced 3-star matches
    (each unordered wedge is one canonical match).  Triangle counting
    stops as soon as the bound is provably exceeded (Fig 4b).
    """
    session = as_session(graph)
    wedges = session.count(generate_star(3))
    if wedges == 0:
        return GccBoundResult(False, 0, 0, bound)
    control = ExplorationControl()
    state = {"triangles": 0}
    needed = bound * wedges / 3.0

    def count_and_check(m: Match) -> None:
        state["triangles"] += 1
        if state["triangles"] > needed:
            control.stop()

    session.match(generate_clique(3), count_and_check, control=control)
    exceeded = state["triangles"] > needed
    return GccBoundResult(exceeded, wedges, state["triangles"], bound)


def global_clustering_coefficient(graph: DataGraph | MiningSession) -> float:
    """Exact GCC (no early termination), for tests and examples."""
    session = as_session(graph)
    wedges = session.count(generate_star(3))
    if wedges == 0:
        return 0.0
    triangles = session.count(generate_clique(3))
    return 3.0 * triangles / wedges
