"""MNI support computation: bitset-backed pattern domains (§5.5).

FSM measures pattern frequency with the *minimum node image* (MNI) support:
the minimum, over pattern vertices, of how many distinct data vertices
appear at that vertex across all matches.  MNI is anti-monotonic, which is
what lets FSM prune extension candidates (§2.1).

Peregrine implements domains as vectors of compressed (Roaring) bitmaps.
Our :class:`Bitset` wraps an arbitrary-precision integer — CPython's
fastest exact-set union primitive — with the same logical interface:
set bit, or-merge, popcount.  Domains are engine-agnostic sinks: FSM
feeds them whole match arrays from
:meth:`repro.core.session.MiningSession.match_batches` (vectorized
:meth:`Domain.update_batch`) with the per-match :meth:`Domain.update`
path as the numpy-free fallback.

Symmetry breaking interaction (§6.6): with symmetry breaking, each
automorphism class of matches is seen once, so the raw per-vertex domains
are projections onto canonical matches.  The *full* domain of a vertex is
the union of raw domains across its automorphism orbit (for any match m
and automorphism sigma, m∘sigma is a match), so :meth:`Domain.support`
merges orbits once at the end — one domain write per unique match during
matching, exactly the property Figure 10 credits for FSM's 3x win.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

__all__ = ["Bitset", "Domain"]


class Bitset:
    """Dynamic bitset over non-negative integers, backed by a Python int."""

    __slots__ = ("_bits",)

    def __init__(self, values: Iterable[int] = ()):
        bits = 0
        for v in values:
            bits |= 1 << v
        self._bits = bits

    def add(self, value: int) -> None:
        """Set one bit."""
        self._bits |= 1 << value

    def __contains__(self, value: int) -> bool:
        return value >= 0 and (self._bits >> value) & 1 == 1

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __or__(self, other: "Bitset") -> "Bitset":
        out = Bitset()
        out._bits = self._bits | other._bits
        return out

    def __ior__(self, other: "Bitset") -> "Bitset":
        self._bits |= other._bits
        return self

    def __and__(self, other: "Bitset") -> "Bitset":
        out = Bitset()
        out._bits = self._bits & other._bits
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def to_list(self) -> list[int]:
        """Sorted member list (tests / small domains only)."""
        out = []
        bits = self._bits
        v = 0
        while bits:
            if bits & 1:
                out.append(v)
            bits >>= 1
            v += 1
        return out

    def memory_bytes(self) -> int:
        """Logical footprint: one bit per position up to the highest set."""
        return max(1, self._bits.bit_length() // 8 + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitset({self.to_list()!r})"


class Domain:
    """Per-pattern-vertex domains of one pattern; yields MNI support.

    ``orbits`` partitions the pattern's vertices into automorphism orbits
    (see :func:`repro.core.symmetry.orbit_partition`); pass the trivial
    partition (singletons) when matches already include all automorphic
    copies (the PRG-U mode).
    """

    __slots__ = ("_domains", "_orbits", "_factory", "writes")

    def __init__(
        self,
        num_vertices: int,
        orbits: Sequence[Sequence[int]] | None = None,
        bitset_factory: Callable[[], "Bitset"] = None,
    ):
        factory = bitset_factory if bitset_factory is not None else Bitset
        self._factory = factory
        self._domains = [factory() for _ in range(num_vertices)]
        if orbits is None:
            orbits = [[u] for u in range(num_vertices)]
        self._orbits = [list(orbit) for orbit in orbits]
        self.writes = 0  # total domain insertions (the Fig 10 FSM metric)

    def update(self, mapping: Sequence[int]) -> None:
        """Record one match: ``mapping[u]`` is the data vertex at ``u``."""
        domains = self._domains
        for u, v in enumerate(mapping):
            if v >= 0:
                domains[u].add(v)
        self.writes += len(mapping)

    def update_batch(self, mappings) -> None:
        """Record a batch of matches from a ``(rows, vertices)`` array.

        The batched counterpart of :meth:`update` for the frontier
        engine's match arrays: each column is group-reduced to its
        distinct vertices first (``np.unique``), so the per-bit Python
        work is one call per *distinct* vertex instead of one per match
        row.  ``writes`` advances by ``rows * vertices`` — the same
        logical insertion count the per-match path records — keeping the
        Figure 10 aggregation-write metric engine-independent.
        """
        import numpy as np

        rows, width = mappings.shape
        if rows == 0:
            return
        domains = self._domains
        if rows < 16:
            # Tiny groups: per-row insertion beats numpy setup costs.
            for row in mappings.tolist():
                for u, v in enumerate(row):
                    if v >= 0:
                        domains[u].add(v)
        else:
            for u in range(width):
                column = mappings[:, u]
                add = domains[u].add
                for v in np.unique(column[column >= 0]).tolist():
                    add(v)
        self.writes += rows * width

    def vertex_domain(self, u: int) -> Bitset:
        """Full domain of vertex ``u``: orbit-merged raw domains."""
        for orbit in self._orbits:
            if u in orbit:
                merged = self._factory()
                for w in orbit:
                    merged |= self._domains[w]
                return merged
        return self._domains[u]

    def support(self) -> int:
        """MNI support: minimum full-domain size over pattern vertices."""
        if not self._domains:
            return 0
        sizes = []
        for orbit in self._orbits:
            merged = self._factory()
            for w in orbit:
                merged |= self._domains[w]
            size = len(merged)
            sizes.extend(size for _ in orbit)
        return min(sizes) if sizes else 0

    def merge_from(self, other: "Domain") -> None:
        """Or-merge another domain table (thread-local aggregation, §5.4)."""
        for mine, theirs in zip(self._domains, other._domains):
            mine |= theirs
        self.writes += other.writes

    def memory_bytes(self) -> int:
        """Logical bitmap footprint (feeds the Fig 13 FSM memory bars)."""
        return sum(d.memory_bytes() for d in self._domains)

    def __len__(self) -> int:
        return len(self._domains)
