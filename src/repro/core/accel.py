"""NumPy-vectorized candidate kernels (the C++-fidelity substitute).

Peregrine's hot loop is adjacency-list intersection on a 16-core C++
machine; CPython cannot match that with interpreted merge loops.  This
module provides drop-in vectorized versions of the
:mod:`repro.core.candidates` kernels operating on sorted ``numpy`` arrays
— the closest offline-available stand-in for the paper's compiled set
operations (the calibration notes call for Cython/numba; ``numpy``'s
``intersect1d``/``searchsorted`` are the same order of improvement for
the large-adjacency regime).

:class:`AcceleratedGraphView` wraps a :class:`~repro.graph.graph.DataGraph`
with per-vertex ``numpy`` adjacency arrays so kernels run allocation-free
on views.  ``accelerated_count`` is a fully-vectorized counting engine for
the common case (edge-induced, symmetry-broken, no anti-constraints,
no callback); it must agree exactly with the reference engine —
``tests/test_accel.py`` fuzzes that equivalence — and the speedup is
measured in ``bench_ablations.py``.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatchingError
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .plan import ExplorationPlan, generate_plan

__all__ = [
    "np_bounded",
    "np_intersect",
    "np_intersect_many",
    "np_difference",
    "AcceleratedGraphView",
    "accelerated_count",
]


def np_bounded(values: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Elements v of a sorted array with ``lo < v < hi`` (exclusive)."""
    left = np.searchsorted(values, lo, side="right")
    right = np.searchsorted(values, hi, side="left")
    return values[left:right]


def np_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays.

    ``searchsorted``-based membership of the smaller array in the larger —
    the vectorized equivalent of the galloping merge in
    :func:`repro.core.candidates.intersect`.
    """
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return a[:0]
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    return a[b[idx] == a]


def np_intersect_many(lists: list[np.ndarray]) -> np.ndarray:
    """Intersection of any number of sorted unique arrays, smallest first."""
    if not lists:
        return np.empty(0, dtype=np.int64)
    ordered = sorted(lists, key=lambda arr: arr.size)
    result = ordered[0]
    for other in ordered[1:]:
        if result.size == 0:
            break
        result = np_intersect(result, other)
    return result


def np_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted array difference ``a \\ b``."""
    if a.size == 0 or b.size == 0:
        return a
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    return a[b[idx] != a]


class AcceleratedGraphView:
    """Per-vertex ``numpy`` adjacency views over a degree-ordered graph."""

    __slots__ = ("graph", "_flat", "_offsets")

    def __init__(self, graph: DataGraph):
        self.graph = graph
        degrees = [graph.degree(v) for v in graph.vertices()]
        self._offsets = np.zeros(graph.num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._offsets[1:])
        self._flat = np.empty(int(self._offsets[-1]), dtype=np.int64)
        for v in graph.vertices():
            lo, hi = self._offsets[v], self._offsets[v + 1]
            self._flat[lo:hi] = graph.neighbors(v)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a zero-copy view)."""
        return self._flat[self._offsets[v]: self._offsets[v + 1]]

    def memory_bytes(self) -> int:
        return self._flat.nbytes + self._offsets.nbytes


def _plan_supported(plan: ExplorationPlan) -> bool:
    return (
        not plan.anti_vertex_checks
        and not plan.has_anti_edges
        and all(oc.labels.count(None) == oc.size for oc in plan.ordered_cores)
        and all(step.label is None for step in plan.noncore_steps)
    )


def accelerated_count(
    graph: DataGraph,
    pattern: Pattern,
    plan: ExplorationPlan | None = None,
    view: AcceleratedGraphView | None = None,
) -> int:
    """Vectorized match counting for unlabeled, anti-free patterns.

    Semantically identical to ``repro.core.count`` on its supported
    subset; raises :class:`~repro.errors.MatchingError` outside it (the
    caller should fall back to the reference engine).  The final
    completion step is counted via array lengths, and the partial-order
    bound restriction uses ``searchsorted`` windows.
    """
    if plan is None:
        plan = generate_plan(pattern)
    if not _plan_supported(plan):
        raise MatchingError(
            "accelerated_count supports unlabeled patterns without "
            "anti-edges/anti-vertices; use repro.core.count instead"
        )
    ordered, _ = graph.degree_ordered()
    if view is None or view.graph is not ordered:
        view = AcceleratedGraphView(ordered)
    n = ordered.num_vertices
    total = 0
    steps = plan.noncore_steps
    num_steps = len(steps)

    # Precompute per-step bound vertex lists once.
    for oc in plan.ordered_cores:
        top = oc.size - 1
        pos_map = [-1] * oc.size

        def match_core(i: int) -> None:
            nonlocal total
            later = oc.later_neighbors(i)
            upper = pos_map[i + 1]
            if later:
                base = np_intersect_many([view.neighbors(pos_map[j]) for j in later])
                cands = np_bounded(base, -1, upper)
            else:
                cands = np.arange(0, upper, dtype=np.int64)
            for v in cands.tolist():
                pos_map[i] = v
                if i == 0:
                    for seq in oc.sequences:
                        mapping = [-1] * plan.matched_pattern.num_vertices
                        for position, pattern_vertex in enumerate(seq):
                            mapping[pattern_vertex] = pos_map[position]
                        complete(0, mapping)
                else:
                    match_core(i - 1)
            pos_map[i] = -1

        def complete(step_index: int, mapping: list[int]) -> None:
            nonlocal total
            step = steps[step_index]
            cands = np_intersect_many(
                [view.neighbors(mapping[v]) for v in step.neighbors]
            )
            lo = -1
            for w in step.lower_bounds:
                mw = mapping[w]
                if mw > lo:
                    lo = mw
            hi = n
            for w in step.upper_bounds:
                mw = mapping[w]
                if mw < hi:
                    hi = mw
            if lo >= 0 or hi < n:
                cands = np_bounded(cands, lo, hi)
            if step_index + 1 == num_steps:
                # Tail count: subtract already-used candidates (injectivity).
                used = [m for m in mapping if m >= 0]
                overlap = 0
                for m in used:
                    idx = np.searchsorted(cands, m)
                    if idx < cands.size and cands[idx] == m:
                        overlap += 1
                total += int(cands.size) - overlap
                return
            u = step.vertex
            used_set = {m for m in mapping if m >= 0}
            for v in cands.tolist():
                if v in used_set:
                    continue
                mapping[u] = v
                complete(step_index + 1, mapping)
                mapping[u] = -1

        if not steps:
            # Core-only pattern: count completed cores directly.
            def complete_core_only() -> None:
                pass

        if num_steps == 0:
            # Count core matches: each full pos_map yields len(sequences).
            def match_core_count(i: int) -> None:
                nonlocal total
                later = oc.later_neighbors(i)
                upper = pos_map[i + 1]
                if later:
                    base = np_intersect_many(
                        [view.neighbors(pos_map[j]) for j in later]
                    )
                    cands = np_bounded(base, -1, upper)
                else:
                    cands = np.arange(0, upper, dtype=np.int64)
                if i == 0:
                    total += int(len(cands)) * len(oc.sequences)
                    return
                for v in cands.tolist():
                    pos_map[i] = v
                    match_core_count(i - 1)
                pos_map[i] = -1

            for start in range(n - 1, -1, -1):
                pos_map[top] = start
                if oc.size == 1:
                    total += len(oc.sequences)
                else:
                    match_core_count(top - 1)
                pos_map[top] = -1
            continue

        for start in range(n - 1, -1, -1):
            pos_map[top] = start
            if oc.size == 1:
                for seq in oc.sequences:
                    mapping = [-1] * plan.matched_pattern.num_vertices
                    mapping[seq[0]] = start
                    complete(0, mapping)
            else:
                match_core(top - 1)
            pos_map[top] = -1
    return total
