"""NumPy-vectorized matching engine (the C++-fidelity substitute).

Peregrine's hot loop is adjacency-list intersection on a 16-core C++
machine; CPython cannot match that with interpreted merge loops.  This
module provides vectorized versions of the :mod:`repro.core.candidates`
kernels operating on sorted ``numpy`` arrays — the closest
offline-available stand-in for the paper's compiled set operations — and
builds them into :class:`AcceleratedEngine`, a drop-in vectorized
analogue of :func:`repro.core.engine.run_tasks`.

The engine covers the **full pattern-feature matrix** of the paper:

* edge-induced and vertex-induced matching (anti-edge difference
  kernels via :func:`np_difference`, Theorem 3.1);
* anti-edges and anti-vertices (§4.3) — core anti-edges subtract
  neighbor arrays during core matching, non-core anti-neighbors subtract
  during completion, anti-vertex checks run on materialized matches;
* labeled patterns — :class:`AcceleratedGraphView` keeps a label array
  plus label-partitioned vertex arrays, so label constraints become
  boolean masks and label-restricted range scans instead of per-vertex
  Python comparisons;
* per-match callbacks via batched final-step match materialization, and
  the enumeration-free tail count when no callback needs the matches.

Counts must agree **exactly** with the reference engine on every
feature combination — ``tests/test_accel.py`` fuzzes that equivalence
against both the reference engine and the networkx oracles.
:mod:`repro.core.api` auto-dispatches here when a run qualifies (no
stats / timer / control attached) *and* sits in the vectorized winning
regime (dense graph, multi-vertex core — see
:func:`repro.core.api.accel_preferred`): numpy per-call overhead beats
bisect loops only once adjacency arrays are large.  The crossover is
measured in ``benchmarks/bench_ablations.py::test_engine_dispatch``.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..errors import MatchingError
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .callbacks import Match
from .matching_order import OrderedCore
from .plan import ExplorationPlan, generate_plan

__all__ = [
    "np_bounded",
    "np_intersect",
    "np_intersect_many",
    "np_difference",
    "AcceleratedGraphView",
    "AcceleratedEngine",
    "shared_view",
    "accelerated_count",
]


def np_bounded(values: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Elements v of a sorted array with ``lo < v < hi`` (exclusive)."""
    left = np.searchsorted(values, lo, side="right")
    right = np.searchsorted(values, hi, side="left")
    return values[left:right]


def np_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays.

    ``searchsorted``-based membership of the smaller array in the larger —
    the vectorized equivalent of the galloping merge in
    :func:`repro.core.candidates.intersect`.
    """
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return a[:0]
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    return a[b[idx] == a]


def np_intersect_many(lists: list[np.ndarray]) -> np.ndarray:
    """Intersection of any number of sorted unique arrays, smallest first."""
    if not lists:
        return np.empty(0, dtype=np.int64)
    ordered = sorted(lists, key=lambda arr: arr.size)
    result = ordered[0]
    for other in ordered[1:]:
        if result.size == 0:
            break
        result = np_intersect(result, other)
    return result


def np_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted array difference ``a \\ b``."""
    if a.size == 0 or b.size == 0:
        return a
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    return a[b[idx] != a]


class AcceleratedGraphView:
    """CSR ``numpy`` adjacency (+ label) views over a degree-ordered graph.

    The flat/offset arrays are plain contiguous ``int64`` buffers, which
    makes the view cheap to share: fork-inherited copy-on-write pages or
    ``multiprocessing.shared_memory`` segments both work without pickling
    a single adjacency list (see :func:`repro.runtime.parallel.process_count`).
    """

    __slots__ = ("graph", "_flat", "_offsets", "_labels", "_label_arrays")

    def __init__(self, graph: DataGraph):
        self.graph = graph
        degrees = [graph.degree(v) for v in graph.vertices()]
        self._offsets = np.zeros(graph.num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._offsets[1:])
        self._flat = np.empty(int(self._offsets[-1]), dtype=np.int64)
        for v in graph.vertices():
            lo, hi = self._offsets[v], self._offsets[v + 1]
            self._flat[lo:hi] = graph.neighbors(v)
        labels = graph.labels()
        self._labels = (
            np.asarray(labels, dtype=np.int64) if labels is not None else None
        )
        self._label_arrays: dict[int, np.ndarray] | None = None

    @classmethod
    def from_csr(
        cls,
        flat: np.ndarray,
        offsets: np.ndarray,
        labels: np.ndarray | None = None,
        graph: DataGraph | None = None,
    ) -> "AcceleratedGraphView":
        """Wrap pre-built CSR buffers (e.g. shared-memory segments)."""
        view = cls.__new__(cls)
        view.graph = graph
        view._flat = flat
        view._offsets = offsets
        view._labels = labels
        view._label_arrays = None
        return view

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """The raw ``(flat, offsets, labels)`` buffers (do not mutate)."""
        return self._flat, self._offsets, self._labels

    @property
    def num_vertices(self) -> int:
        return int(self._offsets.size - 1)

    @property
    def labels(self) -> np.ndarray | None:
        """Per-vertex label array (``None`` for unlabeled graphs)."""
        return self._labels

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a zero-copy view)."""
        return self._flat[self._offsets[v]: self._offsets[v + 1]]

    def vertices_with_label(self, label: int) -> np.ndarray:
        """Sorted vertex-id array carrying ``label`` (lazily partitioned)."""
        if self._labels is None:
            return np.empty(0, dtype=np.int64)
        if self._label_arrays is None:
            self._label_arrays = {
                int(lab): np.flatnonzero(self._labels == lab).astype(np.int64)
                for lab in np.unique(self._labels)
            }
        return self._label_arrays.get(label, np.empty(0, dtype=np.int64))

    def memory_bytes(self) -> int:
        total = self._flat.nbytes + self._offsets.nbytes
        if self._labels is not None:
            total += self._labels.nbytes
        return total


def shared_view(ordered: DataGraph) -> AcceleratedGraphView:
    """The (cached) CSR view of a degree-ordered graph.

    Graphs are immutable, so the view is built once and reused across
    every accelerated run — motif censuses and FSM rounds issue hundreds
    of counts against one graph.
    """
    view = ordered._accel_view
    if view is None:
        view = AcceleratedGraphView(ordered)
        ordered._accel_view = view
    return view


class AcceleratedEngine:
    """Vectorized analogue of the reference engine over a CSR view.

    Semantics mirror :class:`repro.core.engine._Run` exactly — same task
    order, same candidate order, same injectivity and partial-order
    handling — so counts *and* callback invocation order are identical.
    The engine does not track :class:`~repro.core.engine.EngineStats` or
    stage timers; runs that need profiling use the reference engine
    (api dispatch enforces this).
    """

    __slots__ = (
        "view",
        "labels",
        "n",
        "plan",
        "steps",
        "on_match",
        "count_only",
        "can_count_tail",
        "mapping",
        "used",
        "total",
    )

    def __init__(self, view: AcceleratedGraphView):
        self.view = view
        self.labels = view.labels
        self.n = view.num_vertices

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        plan: ExplorationPlan,
        start_vertices: Iterable[int] | None = None,
        on_match: Callable[[Match], None] | None = None,
        count_only: bool = False,
    ) -> int:
        """Run matching tasks over ``start_vertices``; return the count.

        Vertex ids (tasks, matches) are in the degree-ordered graph's
        numbering, exactly like :func:`repro.core.engine.run_tasks`.
        """
        pattern = plan.matched_pattern
        if pattern.is_labeled and self.labels is None:
            raise MatchingError(
                "pattern has label constraints but the data graph is unlabeled"
            )
        self.plan = plan
        self.steps = plan.noncore_steps
        self.on_match = on_match
        self.count_only = count_only and on_match is None
        self.can_count_tail = self.count_only and not plan.anti_vertex_checks
        self.mapping = [-1] * pattern.num_vertices
        self.used = set()
        self.total = 0
        if start_vertices is None:
            start_vertices = range(self.n - 1, -1, -1)
        labels = self.labels
        for start in start_vertices:
            for oc in plan.ordered_cores:
                top = oc.size - 1
                label = oc.labels[top]
                if label is not None and labels[start] != label:
                    continue
                pos_map = [-1] * oc.size
                pos_map[top] = start
                if oc.size == 1:
                    self._core_matched(oc, pos_map)
                else:
                    self._match_core(oc, pos_map, top - 1)
        return self.total

    # ------------------------------------------------------------------
    # Core matching (high-to-low over one ordered core)
    # ------------------------------------------------------------------

    def _core_candidates(self, oc: OrderedCore, pos_map: list[int], i: int) -> np.ndarray:
        view = self.view
        upper = pos_map[i + 1]
        later = oc.later_neighbors(i)
        label = oc.labels[i]
        if later:
            base = np_intersect_many([view.neighbors(pos_map[j]) for j in later])
            cands = np_bounded(base, -1, upper)
        elif label is not None:
            # Position with no later core neighbor but a label: scan the
            # label partition instead of every vertex below the bound.
            cands = np_bounded(view.vertices_with_label(label), -1, upper)
            label = None
        else:
            cands = np.arange(upper, dtype=np.int64)
        for j in (b for a, b in oc.anti_edges if a == i):
            cands = np_difference(cands, view.neighbors(pos_map[j]))
        if label is not None and cands.size:
            cands = cands[self.labels[cands] == label]
        return cands

    def _match_core(self, oc: OrderedCore, pos_map: list[int], i: int) -> None:
        cands = self._core_candidates(oc, pos_map, i)
        if i == 0:
            if self.count_only and not self.steps and not self.plan.anti_vertex_checks:
                # Core-only count: each completed core yields one match
                # per collapsed sequence, counted by array length.
                self.total += int(cands.size) * len(oc.sequences)
                return
            for v in cands.tolist():
                pos_map[0] = v
                self._core_matched(oc, pos_map)
            pos_map[0] = -1
            return
        for v in cands.tolist():
            pos_map[i] = v
            self._match_core(oc, pos_map, i - 1)
        pos_map[i] = -1

    def _core_matched(self, oc: OrderedCore, pos_map: list[int]) -> None:
        """Remap a fully-assigned ordered core through each sequence."""
        mapping = self.mapping
        used = self.used
        for seq in oc.sequences:
            for position, pattern_vertex in enumerate(seq):
                mapping[pattern_vertex] = pos_map[position]
            used.update(pos_map)
            self._complete(0)
            used.difference_update(pos_map)
            for pattern_vertex in seq:
                mapping[pattern_vertex] = -1

    # ------------------------------------------------------------------
    # Completion (non-core vertices, then anti-vertex checks)
    # ------------------------------------------------------------------

    def _complete(self, step_index: int) -> None:
        steps = self.steps
        if step_index == len(steps):
            self._report()
            return
        step = steps[step_index]
        view = self.view
        mapping = self.mapping
        cands = np_intersect_many(
            [view.neighbors(mapping[v]) for v in step.neighbors]
        )
        for a in step.anti_neighbors:
            cands = np_difference(cands, view.neighbors(mapping[a]))
        lo = -1
        for w in step.lower_bounds:
            mw = mapping[w]
            if mw > lo:
                lo = mw
        hi = self.n
        for w in step.upper_bounds:
            mw = mapping[w]
            if mw < hi:
                hi = mw
        if lo >= 0 or hi < self.n:
            cands = np_bounded(cands, lo, hi)
        if step.label is not None and cands.size:
            cands = cands[self.labels[cands] == step.label]

        used = self.used
        is_last = step_index + 1 == len(steps)
        if is_last and self.can_count_tail:
            # Tail count: subtract already-used candidates (injectivity).
            overlap = 0
            for m in used:
                idx = int(np.searchsorted(cands, m))
                if idx < cands.size and cands[idx] == m:
                    overlap += 1
            self.total += int(cands.size) - overlap
            return
        if used and cands.size:
            cands = np_difference(
                cands, np.fromiter(sorted(used), dtype=np.int64, count=len(used))
            )
        u = step.vertex
        if is_last and not self.plan.anti_vertex_checks:
            # Batched match materialization: the final candidate array is
            # the match set; fill the last slot per candidate and emit.
            self.total += int(cands.size)
            on_match = self.on_match
            if on_match is not None:
                pattern = self.plan.pattern
                for v in cands.tolist():
                    mapping[u] = v
                    on_match(Match(pattern, tuple(mapping)))
                mapping[u] = -1
            return
        for v in cands.tolist():
            mapping[u] = v
            used.add(v)
            self._complete(step_index + 1)
            used.discard(v)
            mapping[u] = -1

    def _report(self) -> None:
        """A full regular-vertex assignment: verify anti-vertices, emit."""
        mapping = self.mapping
        checks = self.plan.anti_vertex_checks
        if checks:
            view = self.view
            used = self.used
            for check in checks:
                common = np_intersect_many(
                    [view.neighbors(mapping[v]) for v in check.neighbors]
                )
                for x in common.tolist():
                    if x not in used:
                        return  # a forbidden common neighbor exists
        self.total += 1
        if self.on_match is not None:
            self.on_match(Match(self.plan.pattern, tuple(mapping)))


def accelerated_count(
    graph: DataGraph,
    pattern: Pattern,
    plan: ExplorationPlan | None = None,
    view: AcceleratedGraphView | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
) -> int:
    """Vectorized match counting across the full pattern-feature matrix.

    Semantically identical to ``repro.core.count`` — labeled patterns,
    vertex-induced matching, anti-edges and anti-vertices included.
    Raises :class:`~repro.errors.MatchingError` only where the reference
    engine would (labeled pattern on an unlabeled graph).
    """
    if plan is None:
        plan = generate_plan(
            pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
    ordered, _ = graph.degree_ordered()
    # A caller-supplied view is only trusted when it was built for this
    # graph's degree ordering; anything else would silently count over
    # the wrong adjacency.
    if view is None or view.graph is not ordered:
        view = shared_view(ordered)
    return AcceleratedEngine(view).run(plan, count_only=True)
