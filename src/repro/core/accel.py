"""NumPy-vectorized matching engine (the C++-fidelity substitute).

Peregrine's hot loop is adjacency-list intersection on a 16-core C++
machine; CPython cannot match that with interpreted merge loops.  This
module provides vectorized versions of the :mod:`repro.core.candidates`
kernels operating on sorted ``numpy`` arrays — the closest
offline-available stand-in for the paper's compiled set operations — and
builds them into :class:`AcceleratedEngine`, a drop-in vectorized
analogue of :func:`repro.core.engine.run_tasks`.

The engine covers the **full pattern-feature matrix** of the paper:

* edge-induced and vertex-induced matching (anti-edge difference
  kernels via :func:`np_difference`, Theorem 3.1);
* anti-edges and anti-vertices (§4.3) — core anti-edges subtract
  neighbor arrays during core matching, non-core anti-neighbors subtract
  during completion, anti-vertex checks run on materialized matches;
* labeled patterns — :class:`AcceleratedGraphView` keeps a label array
  plus label-partitioned vertex arrays, so label constraints become
  boolean masks and label-restricted range scans instead of per-vertex
  Python comparisons;
* per-match callbacks via batched final-step match materialization, and
  the enumeration-free tail count when no callback needs the matches.

Counts must agree **exactly** with the reference engine on every
feature combination — ``tests/test_accel.py`` fuzzes that equivalence
against both the reference engine and the networkx oracles.
:mod:`repro.core.session` auto-dispatches here when a run qualifies (no
stats / timer attached; an early-termination control additionally rules
out the per-match engine, which has no polling hook) *and* sits in the
vectorized winning regime (dense graph, multi-vertex core — see
:func:`repro.core.session.accel_preferred`): numpy per-call overhead
beats bisect loops only once adjacency arrays are large.  The crossover
is measured in ``benchmarks/bench_ablations.py::test_engine_dispatch``.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..errors import BudgetExceededError, MatchingError, PartialResult
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .callbacks import ExplorationControl, Match
from .matching_order import OrderedCore
from .plan import ExplorationPlan, NonCoreStep, generate_plan

__all__ = [
    "bounded_slices",
    "np_bounded",
    "np_intersect",
    "np_intersect_many",
    "np_difference",
    "AcceleratedGraphView",
    "AcceleratedEngine",
    "FrontierBatchedEngine",
    "HubMembershipIndex",
    "ROARING_HUB_MIN_DEGREE",
    "hub_degree_threshold",
    "SharedFrontierGathers",
    "ACCEL_FRONTIER_CHUNK",
    "frontier_start_order",
    "shared_view",
    "accelerated_count",
    "frontier_count",
    "fused_run",
]

# Frontier rows expanded per kernel dispatch.  Each expansion touches
# O(rows * avg_degree) intermediate elements, so the default bounds peak
# memory to a few tens of MB on dense graphs while still amortizing
# numpy call overhead across thousands of partial matches.  Tunable per
# run via the ``frontier_chunk`` knob on :func:`repro.core.api.match`.
ACCEL_FRONTIER_CHUNK = 16_384

# Hub membership (the roaring second tier): a vertex qualifies for a
# packed dense bit row when its degree reaches both this floor and
# n / 64.  The floor keeps tiny graphs on pure searchsorted (row builds
# are not free); the density cut bounds the index at 8x the hubs' own
# adjacency bytes (a row costs n/8 bytes vs >= 8 * n/64 adjacency).
# ``benchmarks/bench_storage.py`` measures the membership crossover.
ROARING_HUB_MIN_DEGREE = 128


def hub_degree_threshold(num_vertices: int) -> int:
    """Minimum degree for a vertex to earn a dense membership row."""
    return max(ROARING_HUB_MIN_DEGREE, num_vertices >> 6)


def bounded_slices(weights: np.ndarray, cap: int):
    """Consecutive slices of ``weights`` whose sums stay near ``cap``.

    The chunking rule shared by :meth:`FrontierBatchedEngine._row_groups`
    (candidate totals per gather), :func:`_frontier_slices` (fused
    frontier walks) and — in its pure-Python mirror
    :func:`repro.runtime.scheduler.weighted_boundaries` — the concurrent
    runtimes' degree-weighted work chunks: a slice closes as soon as its
    cumulative weight reaches ``cap``, and a lone over-cap element still
    forms a slice of its own, so progress is guaranteed and the worst
    case is one element's weight, not ``rows * max_weight``.
    """
    if weights.size == 0:
        return
    cum = np.cumsum(weights)
    if int(cum[-1]) <= cap:
        yield slice(0, weights.size)
        return
    start = 0
    while start < weights.size:
        base = int(cum[start - 1]) if start else 0
        end = int(np.searchsorted(cum, base + cap, side="left")) + 1
        end = min(max(end, start + 1), weights.size)
        yield slice(start, end)
        start = end


def np_bounded(values: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Elements v of a sorted array with ``lo < v < hi`` (exclusive)."""
    left = np.searchsorted(values, lo, side="right")
    right = np.searchsorted(values, hi, side="left")
    return values[left:right]


def np_intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays.

    ``searchsorted``-based membership of the smaller array in the larger —
    the vectorized equivalent of the galloping merge in
    :func:`repro.core.candidates.intersect`.
    """
    if a.size > b.size:
        a, b = b, a
    if a.size == 0 or b.size == 0:
        return a[:0]
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    return a[b[idx] == a]


def np_intersect_many(lists: list[np.ndarray]) -> np.ndarray:
    """Intersection of any number of sorted unique arrays, smallest first."""
    if not lists:
        return np.empty(0, dtype=np.int64)
    ordered = sorted(lists, key=lambda arr: arr.size)
    result = ordered[0]
    for other in ordered[1:]:
        if result.size == 0:
            break
        result = np_intersect(result, other)
    return result


def np_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sorted array difference ``a \\ b``."""
    if a.size == 0 or b.size == 0:
        return a
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    return a[b[idx] != a]


class AcceleratedGraphView:
    """CSR ``numpy`` adjacency (+ label) views over a degree-ordered graph.

    The flat/offset arrays are plain contiguous ``int64`` buffers, which
    makes the view cheap to share: fork-inherited copy-on-write pages or
    ``multiprocessing.shared_memory`` segments both work without pickling
    a single adjacency list (see :func:`repro.runtime.parallel.process_count`).
    """

    __slots__ = (
        "graph",
        "_flat",
        "_offsets",
        "_labels",
        "_label_arrays",
        "_adj_keys",
        "_degrees",
        "_hub_index",
    )

    def __init__(self, graph: DataGraph):
        self.graph = graph
        arrays = graph.csr_arrays()
        if arrays is not None:
            # Array-backed graph (mmap store / .npz load): alias its CSR
            # sections zero-copy — cold start is the mmap call the loader
            # already made, not an O(E) rebuild.
            offsets, flat, labels = arrays
            self._offsets = offsets
            self._flat = flat
            self._labels = labels
        else:
            degrees = [graph.degree(v) for v in graph.vertices()]
            self._offsets = np.zeros(graph.num_vertices + 1, dtype=np.int64)
            np.cumsum(degrees, out=self._offsets[1:])
            self._flat = np.empty(int(self._offsets[-1]), dtype=np.int64)
            for v in graph.vertices():
                lo, hi = self._offsets[v], self._offsets[v + 1]
                self._flat[lo:hi] = graph.neighbors(v)
            labels = graph.labels()
            self._labels = (
                np.asarray(labels, dtype=np.int64) if labels is not None else None
            )
        self._label_arrays: dict[int, np.ndarray] | None = None
        self._adj_keys: np.ndarray | None = None
        self._degrees: np.ndarray | None = None
        self._hub_index = None

    @classmethod
    def from_csr(
        cls,
        flat: np.ndarray,
        offsets: np.ndarray,
        labels: np.ndarray | None = None,
        graph: DataGraph | None = None,
    ) -> "AcceleratedGraphView":
        """Wrap pre-built CSR buffers (e.g. shared-memory segments)."""
        view = cls.__new__(cls)
        view.graph = graph
        view._flat = flat
        view._offsets = offsets
        view._labels = labels
        view._label_arrays = None
        view._adj_keys = None
        view._degrees = None
        view._hub_index = None
        return view

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """The raw ``(flat, offsets, labels)`` buffers (do not mutate)."""
        return self._flat, self._offsets, self._labels

    @property
    def num_vertices(self) -> int:
        return int(self._offsets.size - 1)

    @property
    def labels(self) -> np.ndarray | None:
        """Per-vertex label array (``None`` for unlabeled graphs)."""
        return self._labels

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a zero-copy view)."""
        return self._flat[self._offsets[v]: self._offsets[v + 1]]

    def vertices_with_label(self, label: int) -> np.ndarray:
        """Sorted vertex-id array carrying ``label`` (lazily partitioned)."""
        if self._labels is None:
            return np.empty(0, dtype=np.int64)
        if self._label_arrays is None:
            self._label_arrays = {
                int(lab): np.flatnonzero(self._labels == lab).astype(np.int64)
                for lab in np.unique(self._labels)
            }
        return self._label_arrays.get(label, np.empty(0, dtype=np.int64))

    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (lazy ``diff(offsets)``, cached).

        Every :class:`FrontierBatchedEngine` instance needs it for its
        min-degree pivot picks; caching it on the view means multi-pattern
        workloads (censuses, FSM rounds, fused runs) pay the O(E) diff
        once per graph rather than once per engine construction.
        """
        if self._degrees is None:
            self._degrees = np.diff(self._offsets)
        return self._degrees

    def adjacency_keys(self) -> np.ndarray:
        """Globally sorted ``owner * (n + 1) + neighbor`` keys (lazy).

        The flat CSR array is sorted *per segment* only; fusing the owner
        into each entry yields one globally sorted array, so a single
        ``searchsorted`` answers per-element queries over *different*
        adjacency lists at once — the primitive every frontier-batched
        membership test and bound rank is built on.  The ``n + 1``
        multiplier leaves headroom for queries with the sentinel bounds
        ``-1`` and ``n`` without colliding into adjacent segments.
        """
        if self._adj_keys is None:
            n = self.num_vertices
            owners = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self._offsets)
            )
            self._adj_keys = owners * (n + 1) + self._flat
        return self._adj_keys

    def hub_index(self, min_degree: int | None = None):
        """The view's :class:`HubMembershipIndex`, or ``None``.

        Built lazily at first request (i.e. at view-build time of the
        first batched engine) and cached; ``None`` when no vertex clears
        the degree threshold, so sparse graphs pay one ``max`` on the
        cached degree array and nothing else.
        """
        if self._hub_index is None:
            threshold = (
                hub_degree_threshold(self.num_vertices)
                if min_degree is None
                else min_degree
            )
            degrees = self.degrees()
            if degrees.size and int(degrees.max()) >= threshold:
                self._hub_index = HubMembershipIndex(self, threshold)
            else:
                self._hub_index = False  # checked: no hubs
        return self._hub_index or None

    def memory_bytes(self) -> int:
        total = self._flat.nbytes + self._offsets.nbytes
        if self._labels is not None:
            total += self._labels.nbytes
        return total


class HubMembershipIndex:
    """Roaring-compiled dense membership rows for hub neighborhoods.

    ``searchsorted`` over the global adjacency keys answers a membership
    query in O(log E) — unbeatable for sparse rows, but on power-law
    hubs the same dense row is probed over and over and every probe
    repays the full binary search.  This index gives each vertex whose
    degree clears the threshold a packed bit row: its CSR row is
    bulk-compiled into a :class:`~repro.bitmap.roaring.RoaringBitmap`
    (array/bitmap/run containers chosen per 65536-value chunk) and
    flattened into one ``(num_hubs, ceil(n / 8))`` uint8 matrix, so a
    batched query against hub owners is two vectorized lookups —
    ``bits[row, v >> 3] >> (v & 7)`` — with no search at all.  Non-hub
    owners fall through to the caller's searchsorted kernel; the split
    is decided per *vertex* at build time, per *query element* at run
    time.
    """

    __slots__ = ("num_vertices", "hubs", "row_of", "bits", "bitmaps")

    def __init__(self, view: "AcceleratedGraphView", min_degree: int):
        from ..bitmap.roaring import RoaringBitmap

        n = view.num_vertices
        self.num_vertices = n
        self.hubs = np.flatnonzero(view.degrees() >= min_degree).astype(
            np.int64
        )
        self.row_of = np.full(n, -1, dtype=np.int64)
        self.row_of[self.hubs] = np.arange(self.hubs.size, dtype=np.int64)
        row_bytes = (n + 7) >> 3
        self.bits = np.zeros((self.hubs.size, row_bytes), dtype=np.uint8)
        self.bitmaps: list = []
        for row, hub in enumerate(self.hubs):
            bitmap = RoaringBitmap.from_sorted(view.neighbors(int(hub)))
            self.bitmaps.append(bitmap)
            self.bits[row] = np.frombuffer(
                bitmap.to_dense_bytes(n), dtype=np.uint8
            )

    def member(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        fallback: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Elementwise membership, hub rows via bits, the rest via ``fallback``."""
        rows = self.row_of[owners]
        on_hub = rows >= 0
        if not on_hub.any():
            return fallback(owners, values)
        if on_hub.all():
            return (
                self.bits[rows, values >> 3] >> (values & 7) & 1
            ).astype(bool)
        out = np.empty(owners.size, dtype=bool)
        hub_values = values[on_hub]
        out[on_hub] = (
            self.bits[rows[on_hub], hub_values >> 3] >> (hub_values & 7) & 1
        ).astype(bool)
        rest = ~on_hub
        out[rest] = fallback(owners[rest], values[rest])
        return out

    def memory_bytes(self) -> int:
        """Roaring payloads + the packed matrix + the row map."""
        return (
            sum(b.memory_bytes() for b in self.bitmaps)
            + self.bits.nbytes
            + self.row_of.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HubMembershipIndex({self.hubs.size} hubs, "
            f"{self.memory_bytes()} bytes)"
        )


def shared_view(ordered: DataGraph) -> AcceleratedGraphView:
    """The (cached) CSR view of a degree-ordered graph.

    Graphs are immutable, so the view is built once and reused across
    every accelerated run — motif censuses and FSM rounds issue hundreds
    of counts against one graph.
    """
    view = ordered._accel_view
    if view is None:
        view = AcceleratedGraphView(ordered)
        ordered._accel_view = view
    return view


class AcceleratedEngine:
    """Vectorized analogue of the reference engine over a CSR view.

    Semantics mirror :class:`repro.core.engine._Run` exactly — same task
    order, same candidate order, same injectivity and partial-order
    handling — so counts *and* callback invocation order are identical.
    The engine does not track :class:`~repro.core.engine.EngineStats` or
    stage timers; runs that need profiling use the reference engine
    (api dispatch enforces this).
    """

    __slots__ = (
        "view",
        "labels",
        "n",
        "plan",
        "steps",
        "on_match",
        "count_only",
        "can_count_tail",
        "mapping",
        "used",
        "total",
        "control",
        "budget",
    )

    def __init__(self, view: AcceleratedGraphView):
        self.view = view
        self.labels = view.labels
        self.n = view.num_vertices
        self.control = None
        self.budget = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        plan: ExplorationPlan,
        start_vertices: Iterable[int] | None = None,
        on_match: Callable[[Match], None] | None = None,
        count_only: bool = False,
        control=None,
        budget=None,
    ) -> int:
        """Run matching tasks over ``start_vertices``; return the count.

        Vertex ids (tasks, matches) are in the degree-ordered graph's
        numbering, exactly like :func:`repro.core.engine.run_tasks`.
        ``control`` is polled once per start task and inside
        ``_core_matched`` (reference parity: a stop mid-task skips
        remaining completions but finishes nothing extra); ``budget`` is
        an armed :class:`~repro.core.callbacks.BudgetMeter` polled once
        per start task.
        """
        pattern = plan.matched_pattern
        if pattern.is_labeled and self.labels is None:
            raise MatchingError(
                "pattern has label constraints but the data graph is unlabeled"
            )
        self.plan = plan
        self.steps = plan.noncore_steps
        self.on_match = on_match
        self.count_only = count_only and on_match is None
        self.can_count_tail = self.count_only and not plan.anti_vertex_checks
        self.mapping = [-1] * pattern.num_vertices
        self.used = set()
        self.total = 0
        self.control = control
        self.budget = budget
        if start_vertices is None:
            start_vertices = range(self.n - 1, -1, -1)
        labels = self.labels
        for start in start_vertices:
            if control is not None and control.stopped:
                break
            if budget is not None:
                budget.charge_rows(1)
                budget.check(self.total)
            for oc in plan.ordered_cores:
                top = oc.size - 1
                label = oc.labels[top]
                if label is not None and labels[start] != label:
                    continue
                pos_map = [-1] * oc.size
                pos_map[top] = start
                if oc.size == 1:
                    self._core_matched(oc, pos_map)
                else:
                    self._match_core(oc, pos_map, top - 1)
            if budget is not None:
                budget.levels_completed += 1
        return self.total

    # ------------------------------------------------------------------
    # Core matching (high-to-low over one ordered core)
    # ------------------------------------------------------------------

    def _core_candidates(self, oc: OrderedCore, pos_map: list[int], i: int) -> np.ndarray:
        view = self.view
        upper = pos_map[i + 1]
        later = oc.later_neighbors(i)
        label = oc.labels[i]
        if later:
            base = np_intersect_many([view.neighbors(pos_map[j]) for j in later])
            cands = np_bounded(base, -1, upper)
        elif label is not None:
            # Position with no later core neighbor but a label: scan the
            # label partition instead of every vertex below the bound.
            cands = np_bounded(view.vertices_with_label(label), -1, upper)
            label = None
        else:
            cands = np.arange(upper, dtype=np.int64)
        for j in (b for a, b in oc.anti_edges if a == i):
            cands = np_difference(cands, view.neighbors(pos_map[j]))
        if label is not None and cands.size:
            cands = cands[self.labels[cands] == label]
        return cands

    def _match_core(self, oc: OrderedCore, pos_map: list[int], i: int) -> None:
        cands = self._core_candidates(oc, pos_map, i)
        if i == 0:
            if self.count_only and not self.steps and not self.plan.anti_vertex_checks:
                # Core-only count: each completed core yields one match
                # per collapsed sequence, counted by array length.
                self.total += int(cands.size) * len(oc.sequences)
                return
            for v in cands.tolist():
                pos_map[0] = v
                self._core_matched(oc, pos_map)
            pos_map[0] = -1
            return
        for v in cands.tolist():
            pos_map[i] = v
            self._match_core(oc, pos_map, i - 1)
        pos_map[i] = -1

    def _core_matched(self, oc: OrderedCore, pos_map: list[int]) -> None:
        """Remap a fully-assigned ordered core through each sequence."""
        if self.control is not None and self.control.stopped:
            return
        mapping = self.mapping
        used = self.used
        for seq in oc.sequences:
            for position, pattern_vertex in enumerate(seq):
                mapping[pattern_vertex] = pos_map[position]
            used.update(pos_map)
            self._complete(0)
            used.difference_update(pos_map)
            for pattern_vertex in seq:
                mapping[pattern_vertex] = -1

    # ------------------------------------------------------------------
    # Completion (non-core vertices, then anti-vertex checks)
    # ------------------------------------------------------------------

    def _complete(self, step_index: int) -> None:
        steps = self.steps
        if step_index == len(steps):
            self._report()
            return
        step = steps[step_index]
        view = self.view
        mapping = self.mapping
        cands = np_intersect_many(
            [view.neighbors(mapping[v]) for v in step.neighbors]
        )
        for a in step.anti_neighbors:
            cands = np_difference(cands, view.neighbors(mapping[a]))
        lo = -1
        for w in step.lower_bounds:
            mw = mapping[w]
            if mw > lo:
                lo = mw
        hi = self.n
        for w in step.upper_bounds:
            mw = mapping[w]
            if mw < hi:
                hi = mw
        if lo >= 0 or hi < self.n:
            cands = np_bounded(cands, lo, hi)
        if step.label is not None and cands.size:
            cands = cands[self.labels[cands] == step.label]

        used = self.used
        is_last = step_index + 1 == len(steps)
        if is_last and self.can_count_tail:
            # Tail count: subtract already-used candidates (injectivity).
            overlap = 0
            for m in used:
                idx = int(np.searchsorted(cands, m))
                if idx < cands.size and cands[idx] == m:
                    overlap += 1
            self.total += int(cands.size) - overlap
            return
        if used and cands.size:
            cands = np_difference(
                cands, np.fromiter(sorted(used), dtype=np.int64, count=len(used))
            )
        u = step.vertex
        if is_last and not self.plan.anti_vertex_checks:
            # Batched match materialization: the final candidate array is
            # the match set; fill the last slot per candidate and emit.
            self.total += int(cands.size)
            on_match = self.on_match
            if on_match is not None:
                pattern = self.plan.pattern
                for v in cands.tolist():
                    mapping[u] = v
                    on_match(Match(pattern, tuple(mapping)))
                mapping[u] = -1
            return
        for v in cands.tolist():
            mapping[u] = v
            used.add(v)
            self._complete(step_index + 1)
            used.discard(v)
            mapping[u] = -1

    def _report(self) -> None:
        """A full regular-vertex assignment: verify anti-vertices, emit."""
        mapping = self.mapping
        checks = self.plan.anti_vertex_checks
        if checks:
            view = self.view
            used = self.used
            for check in checks:
                common = np_intersect_many(
                    [view.neighbors(mapping[v]) for v in check.neighbors]
                )
                for x in common.tolist():
                    if x not in used:
                        return  # a forbidden common neighbor exists
        self.total += 1
        if self.on_match is not None:
            self.on_match(Match(self.plan.pattern, tuple(mapping)))


def accelerated_count(
    graph: DataGraph,
    pattern: Pattern,
    plan: ExplorationPlan | None = None,
    view: AcceleratedGraphView | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
) -> int:
    """Vectorized match counting across the full pattern-feature matrix.

    Semantically identical to ``repro.core.count`` — labeled patterns,
    vertex-induced matching, anti-edges and anti-vertices included.
    Raises :class:`~repro.errors.MatchingError` only where the reference
    engine would (labeled pattern on an unlabeled graph).
    """
    if plan is None:
        plan = generate_plan(
            pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
    ordered, _ = graph.degree_ordered()
    # A caller-supplied view is only trusted when it was built for this
    # graph's degree ordering; anything else would silently count over
    # the wrong adjacency.
    if view is None or view.graph is not ordered:
        view = shared_view(ordered)
    return AcceleratedEngine(view).run(plan, count_only=True)


def frontier_start_order(
    labels: np.ndarray | None, num_vertices: int, plan: ExplorationPlan
) -> np.ndarray:
    """The level-0 frontier: hub-first start vertices, label-filtered.

    The array form of the pruning rule
    :meth:`~repro.core.plan.ExplorationPlan.pinned_start_labels`
    defines (and :func:`repro.core.session._label_filtered_starts` applies
    to list-based runs), so the concurrent runtimes can partition one
    shared frontier instead of raw vertex-id ranges — workers then
    split *live* tasks, not vertices a label constraint would discard.
    """
    starts = np.arange(num_vertices - 1, -1, -1, dtype=np.int64)
    if labels is None:
        return starts
    top_labels = plan.pinned_start_labels()
    if top_labels is None:
        return starts
    wanted = np.fromiter(sorted(top_labels), dtype=np.int64)
    return starts[np.isin(labels[starts], wanted)]


class FrontierBatchedEngine:
    """Level-synchronous batched analogue of :class:`AcceleratedEngine`.

    Where :class:`AcceleratedEngine` vectorizes one candidate computation
    at a time and recurses per partial match, this engine holds *all*
    live partial matches of a matching-order level in one
    ``(n_partials, level)`` array and extends the whole level per numpy
    dispatch:

    * candidate neighborhoods are gathered with a CSR degree-prefix
      gather from each row's cheapest (min-degree) constraint vertex,
      pre-clipped to the symmetry bound by a rank query;
    * remaining edge constraints, anti-edge differences, label
      constraints and injectivity become boolean masks over the
      concatenated candidate segments (membership via one
      ``searchsorted`` over the view's :meth:`adjacency_keys`);
    * the final completion step is counted with per-row arithmetic
      instead of enumerated (the vectorized tail count), which is why the
      batched engine also wins on single-vertex-core patterns that the
      per-match engine's dispatch excludes.

    Exploration order is the reference engine's DFS order: expansion
    preserves row order and candidate order, so leaves surface in DFS
    preorder; with several ordered cores, start vertices are walked in
    ``chunk``-sized slices through every core and each slice's per-core
    match batches are merge-sorted (keyed by level-0 origin) back into
    the reference interleaving before callbacks fire, so the merge
    buffer never holds more than one slice's matches.  Counts *and*
    callback order are therefore identical to
    :func:`repro.core.engine.run_tasks`.

    Memory is bounded two ways (default :data:`ACCEL_FRONTIER_CHUNK`):
    oversized frontiers are split into ``chunk``-row blocks exhausted
    depth-first, and each expansion gathers its candidate segments in
    groups capped near ``chunk`` *candidates* (:meth:`_row_groups`), so
    peak intermediates stay ~``O(chunk)`` per level regardless of graph
    density — a single row's segment (at most one adjacency list or one
    ``arange(bound)``) is the only irreducible allocation.
    """

    __slots__ = (
        "view",
        "labels",
        "n",
        "flat",
        "offsets",
        "degrees",
        "keys",
        "stride",
        "hubs",
        "plan",
        "steps",
        "on_match",
        "on_batch",
        "count_only",
        "can_count_tail",
        "chunk",
        "width",
        "total",
        "control",
        "budget",
        "shared",
        "_cur_oc",
        "_cur_rank",
        "_pending",
        "_ordered_emit",
    )

    def __init__(self, view: AcceleratedGraphView):
        self.view = view
        self.labels = view.labels
        self.n = view.num_vertices
        flat, offsets, _ = view.csr()
        self.flat = flat
        self.offsets = offsets
        self.degrees = view.degrees()
        self.keys = view.adjacency_keys()
        self.stride = self.n + 1
        self.hubs = view.hub_index()
        # A fused multi-pattern run attaches a SharedFrontierGathers here
        # so level-1 expansions reuse one neighbor gather across member
        # patterns; standalone runs leave it None.
        self.shared: SharedFrontierGathers | None = None

    # ------------------------------------------------------------------
    # Batched kernels over concatenated candidate segments
    # ------------------------------------------------------------------

    def _member(self, owners: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Elementwise ``values[k] in neighbors(owners[k])``.

        Queries whose owner is a hub route through the view's packed
        roaring rows (two array lookups); the rest binary-search the
        global adjacency keys.  Anti-edge checks and injectivity masks
        — the dense-row-heavy membership consumers — all flow through
        here.
        """
        if self.keys.size == 0 or owners.size == 0:
            return np.zeros(owners.size, dtype=bool)
        if self.hubs is not None:
            return self.hubs.member(owners, values, self._member_sorted)
        return self._member_sorted(owners, values)

    def _member_sorted(
        self, owners: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """The searchsorted membership kernel (non-hub / fallback path)."""
        queries = owners * self.stride + values
        pos = np.searchsorted(self.keys, queries)
        pos[pos == self.keys.size] = 0
        return self.keys[pos] == queries

    def _rank(self, owners: np.ndarray, bounds: np.ndarray, side: str) -> np.ndarray:
        """Per-element rank of ``bounds[k]`` within ``neighbors(owners[k])``.

        ``side="left"`` counts neighbors strictly below the bound,
        ``side="right"`` neighbors at or below it.
        """
        queries = owners * self.stride + bounds
        return (
            np.searchsorted(self.keys, queries, side=side)
            - self.offsets[owners]
        )

    @staticmethod
    def _gather(lens: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row ids and within-segment offsets for concatenated segments."""
        lens = lens.astype(np.int64, copy=False)
        row_ids = np.repeat(np.arange(lens.size, dtype=np.int64), lens)
        total = row_ids.size
        if total == 0:
            return row_ids, np.empty(0, dtype=np.int64)
        seg_starts = np.cumsum(lens) - lens
        local = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, lens)
        return row_ids, local

    def _row_groups(self, lens: np.ndarray):
        """Split rows so each group's *candidate total* stays near ``chunk``.

        Input-row chunking alone cannot bound an expansion: a single
        level can fan ``chunk`` rows out to ``chunk * n`` candidates
        (e.g. an unconstrained core position whose candidates are
        ``arange(bound)``).  Capping the cumulative candidate count per
        gather keeps every intermediate allocation near the chunk size;
        a lone row whose own segment exceeds the cap still goes through
        whole (one segment is one gather), which bounds the worst case
        at ``O(max_segment)``, not ``O(rows * max_segment)``.
        """
        return bounded_slices(lens, self.chunk)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        plan: ExplorationPlan,
        start_vertices: Iterable[int] | None = None,
        on_match: Callable[[Match], None] | None = None,
        on_batch: Callable[[np.ndarray], None] | None = None,
        count_only: bool = False,
        chunk: int | None = None,
        control: ExplorationControl | None = None,
        budget=None,
    ) -> int:
        """Run matching tasks over ``start_vertices``; return the count.

        ``on_batch`` is the array-native alternative to ``on_match``: it
        receives ``(rows, num_pattern_vertices)`` int64 arrays (column
        ``u`` holds the data vertex matched to pattern vertex ``u``,
        ``-1`` for anti-vertices) in degree-ordered ids, without
        per-match Python object construction.  Batch boundaries and
        inter-batch order are an implementation detail; the row multiset
        equals the reference engine's match multiset.

        ``control`` enables cooperative early termination (§5.3): the
        flag is polled before every frontier block and before each
        ``on_match`` callback, so a stop lands within one block's worth
        of work — or one *task's* worth when several ordered cores
        require order-merged emission (start slices shrink to single
        vertices so buffered matches can't defer the stopping callback).
        With ``on_match``, the returned count equals the callbacks
        actually fired; batch/count-only runs wind down at block
        granularity and may include the stopping block in full.

        ``budget`` is an armed :class:`~repro.core.callbacks.BudgetMeter`
        polled at the same block boundaries the control is (one cheap
        check per frontier chunk); exhaustion raises
        :class:`~repro.errors.BudgetExceededError` carrying the count
        accumulated so far.
        """
        pattern = plan.matched_pattern
        if pattern.is_labeled and self.labels is None:
            raise MatchingError(
                "pattern has label constraints but the data graph is unlabeled"
            )
        if on_match is not None and on_batch is not None:
            raise ValueError("pass on_match or on_batch, not both")
        self.plan = plan
        self.steps = plan.noncore_steps
        self.on_match = on_match
        self.on_batch = on_batch
        self.count_only = count_only and on_match is None and on_batch is None
        self.can_count_tail = self.count_only and not plan.anti_vertex_checks
        self.chunk = ACCEL_FRONTIER_CHUNK if chunk is None else max(1, int(chunk))
        self.width = pattern.num_vertices
        self.total = 0
        self.control = control
        self.budget = budget
        if start_vertices is None:
            starts = np.arange(self.n - 1, -1, -1, dtype=np.int64)
        elif isinstance(start_vertices, np.ndarray):
            starts = start_vertices.astype(np.int64, copy=False)
        else:
            starts = np.fromiter(start_vertices, dtype=np.int64)
        # Several ordered cores interleave per start vertex in the
        # reference order; exact callback order then needs a merge keyed
        # by each match's level-0 origin.  The merge buffer is bounded by
        # walking start *slices* through every core and emitting after
        # each slice — pending matches never exceed one slice's yield.
        self._ordered_emit = (
            on_match is not None and len(plan.ordered_cores) > 1
        )
        self._pending = [] if self._ordered_emit else None
        if self._ordered_emit and control is not None:
            # Ordered emission defers callbacks until a slice is fully
            # explored, and callbacks are the only place this control
            # can be stopped in a single-threaded run — so walk one
            # start vertex per slice: a stop then lands within one
            # task's work, mirroring the reference engine's per-task
            # control checks, instead of after a whole chunk of starts.
            slice_size = 1
        elif self._ordered_emit:
            slice_size = self.chunk
        else:
            slice_size = starts.size
        for lo in range(0, starts.size, max(1, slice_size)):
            if self._stopped():
                break
            sl = starts[lo: lo + max(1, slice_size)]
            if budget is not None:
                budget.charge_rows(int(sl.size))
                budget.check(self.total)
            self._run_cores(sl)
            if budget is not None:
                budget.levels_completed += 1
            if self._ordered_emit:
                self._emit_pending()
                self._pending = []
        return self.total

    def _stopped(self) -> bool:
        """Whether a caller-supplied control has requested termination."""
        return self.control is not None and self.control.stopped

    def _run_cores(self, starts: np.ndarray) -> None:
        """Run every ordered core over one slice of start vertices."""
        for rank, oc in enumerate(self.plan.ordered_cores):
            if self._stopped():
                return
            self._cur_oc = oc
            self._cur_rank = rank
            top_label = oc.labels[oc.size - 1]
            if top_label is not None:
                keep = self.labels[starts] == top_label
                oc_starts = starts[keep]
                origin = np.flatnonzero(keep).astype(np.int64)
            else:
                oc_starts = starts
                origin = np.arange(starts.size, dtype=np.int64)
            self._process_core(oc_starts[:, None], origin, 1)

    # ------------------------------------------------------------------
    # Core matching (high-to-low over one ordered core, level-batched)
    # ------------------------------------------------------------------

    def _process_core(
        self, block: np.ndarray, origin: np.ndarray, level: int
    ) -> None:
        oc = self._cur_oc
        if block.shape[0] == 0 or self._stopped():
            return
        if level == oc.size:
            self._core_complete(block, origin)
            return
        if block.shape[0] > self.chunk:
            for lo in range(0, block.shape[0], self.chunk):
                hi = lo + self.chunk
                self._process_core(block[lo:hi], origin[lo:hi], level)
            return
        if self.budget is not None:
            self.budget.charge_partials(block.shape[0])
            self.budget.check(self.total)
        for nxt, nxt_origin in self._expand_core(oc, block, origin, level):
            self._process_core(nxt, nxt_origin, level + 1)

    def _expand_core(
        self, oc: OrderedCore, block: np.ndarray, origin: np.ndarray, level: int
    ):
        """Assign core position ``top - level``; yields expanded sub-blocks.

        Per-row candidate segments are described once (source array, base
        offset, length), then gathered in :meth:`_row_groups`-bounded
        groups so no single expansion materializes more than ~``chunk``
        candidates at a time.
        """
        top = oc.size - 1
        i = top - level
        rows = block.shape[0]
        bound = block[:, -1]  # the (strictly larger) value at position i+1
        later = oc.later_neighbors(i)
        label = oc.labels[i]
        anti_later = [b for a, b in oc.anti_edges if a == i]
        if (
            level == 1
            and later
            and not anti_later
            and self.shared is not None
            and self.shared.matches(block[:, 0])
        ):
            # At level 1 the only later core position is the top, so the
            # expansion is "neighbors of the start, strictly below it" —
            # a pure variant of the slice's shared first-level expansion.
            exp_block, rows = self.shared.expansion(False, True, label)
            yield exp_block, self.shared.origin_rows(origin, rows)
            return
        pick = None
        if later:
            owner_cols = block[:, [top - j for j in later]]
            pick = np.argmin(self.degrees[owner_cols], axis=1)
            pivot = owner_cols[np.arange(rows), pick]
            lens = self._rank(pivot, bound, "left")
            seg_base = self.offsets[pivot]
            source = self.flat
        elif label is not None:
            # No later core neighbor but a label: scan the (sorted) label
            # partition below the bound instead of every vertex.
            source = self.view.vertices_with_label(label)
            lens = np.searchsorted(source, bound).astype(np.int64)
            seg_base = np.zeros(rows, dtype=np.int64)
            label = None
        else:
            lens = bound
            seg_base = None
            source = None  # candidates are 0 .. bound-1 verbatim
        for rows_slice in self._row_groups(lens):
            row_ids, local = self._gather(lens[rows_slice])
            if source is not None:
                cands = source[seg_base[rows_slice][row_ids] + local]
            else:
                cands = local
            g_block = block[rows_slice]
            mask = np.ones(cands.size, dtype=bool)
            if later and len(later) > 1:
                g_pick = pick[rows_slice]
                for k, j in enumerate(later):
                    # the pivot's own membership is implicit
                    hit = self._member(g_block[row_ids, top - j], cands)
                    mask &= hit | (g_pick[row_ids] == k)
            for j in anti_later:
                mask &= ~self._member(g_block[row_ids, top - j], cands)
            if label is not None and cands.size:
                mask &= self.labels[cands] == label
            if not mask.all():
                row_ids = row_ids[mask]
                cands = cands[mask]
            yield (
                np.concatenate([g_block[row_ids], cands[:, None]], axis=1),
                origin[rows_slice][row_ids],
            )

    # ------------------------------------------------------------------
    # Completion (non-core steps, batched)
    # ------------------------------------------------------------------

    def _columns(self, step_index: int) -> list[int]:
        """Pattern vertex held by each frontier column at ``step_index``."""
        return list(self.plan.core) + [
            s.vertex for s in self.steps[:step_index]
        ]

    def _core_complete(self, block: np.ndarray, origin: np.ndarray) -> None:
        """Remap finished core rows through each sequence, interleaved."""
        oc = self._cur_oc
        rows = block.shape[0]
        if self.count_only and not self.steps and not self.plan.anti_vertex_checks:
            # Core-only count: one match per collapsed sequence per row.
            self.total += rows * len(oc.sequences)
            return
        top = oc.size - 1
        core_vertices = self.plan.core
        perms = []
        for seq in oc.sequences:
            pos_of = {vertex: position for position, vertex in enumerate(seq)}
            perms.append([top - pos_of[v] for v in core_vertices])
        if len(perms) == 1:
            remapped = block[:, perms[0]]
            rep_origin = origin
        else:
            # Row-major (row, sequence) interleave keeps the reference
            # emission order: each core match walks all its sequences
            # before the next core match starts.
            stacked = np.stack([block[:, p] for p in perms], axis=1)
            remapped = stacked.reshape(rows * len(perms), len(core_vertices))
            rep_origin = np.repeat(origin, len(perms))
        self._process_steps(remapped, rep_origin, 0)

    def _process_steps(
        self, block: np.ndarray, origin: np.ndarray, step_index: int
    ) -> None:
        if block.shape[0] == 0 or self._stopped():
            return
        steps = self.steps
        if step_index == len(steps):
            self._finalize(block, origin)
            return
        if block.shape[0] > self.chunk:
            for lo in range(0, block.shape[0], self.chunk):
                hi = lo + self.chunk
                self._process_steps(block[lo:hi], origin[lo:hi], step_index)
            return
        if self.budget is not None:
            self.budget.charge_partials(block.shape[0])
            self.budget.check(self.total)
        if step_index + 1 == len(steps) and self.can_count_tail:
            self.total += self._count_tail_step(block, step_index)
            return
        for nxt, nxt_origin in self._expand_step(block, origin, step_index):
            self._process_steps(nxt, nxt_origin, step_index + 1)

    def _step_context(self, block: np.ndarray, step_index: int):
        """Per-row candidate geometry for one completion step."""
        step = self.steps[step_index]
        col_of = {v: c for c, v in enumerate(self._columns(step_index))}
        rows = block.shape[0]
        nbr_cols = [col_of[v] for v in step.neighbors]
        # Tightest symmetry bounds per row (vectorized max/min folds).
        lo = np.full(rows, -1, dtype=np.int64)
        for w in step.lower_bounds:
            np.maximum(lo, block[:, col_of[w]], out=lo)
        hi = np.full(rows, self.n, dtype=np.int64)
        for w in step.upper_bounds:
            np.minimum(hi, block[:, col_of[w]], out=hi)
        owner_cols = block[:, nbr_cols]
        pick = np.argmin(self.degrees[owner_cols], axis=1)
        pivot = owner_cols[np.arange(rows), pick]
        start_rank = self._rank(pivot, lo, "right")
        end_rank = self._rank(pivot, hi, "left")
        lens = np.maximum(end_rank - start_rank, 0)
        return step, col_of, nbr_cols, lo, hi, pick, pivot, start_rank, lens

    def _step_mask(
        self,
        g_block: np.ndarray,
        row_ids: np.ndarray,
        cands: np.ndarray,
        step: NonCoreStep,
        col_of: dict[int, int],
        nbr_cols: list[int],
        g_pick: np.ndarray,
    ) -> np.ndarray:
        """Constraint masks for one gathered candidate group."""
        mask = np.ones(cands.size, dtype=bool)
        if len(nbr_cols) > 1:
            for k, c in enumerate(nbr_cols):
                # the pivot's own membership is implicit
                hit = self._member(g_block[row_ids, c], cands)
                mask &= hit | (g_pick[row_ids] == k)
        for v in step.anti_neighbors:
            mask &= ~self._member(g_block[row_ids, col_of[v]], cands)
        if step.label is not None and cands.size:
            mask &= self.labels[cands] == step.label
        # Injectivity: the candidate may equal none of the row's matched
        # vertices (the frontier columns are exactly the used set).
        for c in range(g_block.shape[1]):
            mask &= cands != g_block[row_ids, c]
        return mask

    def _count_tail_step(self, block: np.ndarray, step_index: int) -> int:
        """Count the final completion step without enumerating it."""
        step, col_of, nbr_cols, lo, hi, pick, pivot, start_rank, lens = (
            self._step_context(block, step_index)
        )
        if (
            len(nbr_cols) == 1
            and not step.anti_neighbors
            and step.label is None
        ):
            # Pure degree arithmetic per frontier row: the candidate set
            # is one bounded adjacency segment, so its size is a rank
            # difference and injectivity subtracts the used vertices that
            # land inside it — no candidate array is ever gathered.
            total = int(lens.sum())
            for c in range(block.shape[1]):
                used = block[:, c]
                inside = (used > lo) & (used < hi) & self._member(pivot, used)
                total -= int(np.count_nonzero(inside))
            return total
        total = 0
        seg_base = self.offsets[pivot] + start_rank
        for rows_slice in self._row_groups(lens):
            row_ids, local = self._gather(lens[rows_slice])
            cands = self.flat[seg_base[rows_slice][row_ids] + local]
            mask = self._step_mask(
                block[rows_slice], row_ids, cands, step, col_of, nbr_cols,
                pick[rows_slice],
            )
            total += int(np.count_nonzero(mask))
        return total

    def _expand_step(
        self, block: np.ndarray, origin: np.ndarray, step_index: int
    ):
        """Assign one non-core vertex; yields expanded sub-blocks."""
        step, col_of, nbr_cols, _lo, _hi, pick, pivot, start_rank, lens = (
            self._step_context(block, step_index)
        )
        if (
            step_index == 0
            and block.shape[1] == 1
            and len(nbr_cols) == 1
            and not step.anti_neighbors
            and self.shared is not None
            and self.shared.matches(block[:, 0])
        ):
            # Single-vertex-core first step: the only matched vertex is
            # the start, so bounds can only clip to above/below it and
            # the candidates are another variant of the slice's shared
            # first-level expansion (injectivity is vacuous — a simple
            # graph never lists a vertex among its own neighbors).
            exp_block, rows = self.shared.expansion(
                bool(step.lower_bounds),
                bool(step.upper_bounds),
                step.label,
            )
            yield exp_block, self.shared.origin_rows(origin, rows)
            return
        seg_base = self.offsets[pivot] + start_rank
        for rows_slice in self._row_groups(lens):
            row_ids, local = self._gather(lens[rows_slice])
            cands = self.flat[seg_base[rows_slice][row_ids] + local]
            g_block = block[rows_slice]
            mask = self._step_mask(
                g_block, row_ids, cands, step, col_of, nbr_cols,
                pick[rows_slice],
            )
            if not mask.all():
                row_ids = row_ids[mask]
                cands = cands[mask]
            yield (
                np.concatenate([g_block[row_ids], cands[:, None]], axis=1),
                origin[rows_slice][row_ids],
            )

    # ------------------------------------------------------------------
    # Anti-vertex verification + emission
    # ------------------------------------------------------------------

    def _finalize(self, block: np.ndarray, origin: np.ndarray) -> None:
        checks = self.plan.anti_vertex_checks
        cols = self._columns(len(self.steps))
        if checks:
            col_of = {v: c for c, v in enumerate(cols)}
            alive = np.ones(block.shape[0], dtype=bool)
            for check in checks:
                if not check.neighbors:
                    continue
                nbr_cols = [col_of[v] for v in check.neighbors]
                rows = block.shape[0]
                owner_cols = block[:, nbr_cols]
                pick = np.argmin(self.degrees[owner_cols], axis=1)
                pivot = owner_cols[np.arange(rows), pick]
                lens = self.degrees[pivot]
                for rows_slice in self._row_groups(lens):
                    row_ids, local = self._gather(lens[rows_slice])
                    cands = self.flat[
                        self.offsets[pivot[rows_slice]][row_ids] + local
                    ]
                    g_block = block[rows_slice]
                    mask = np.ones(cands.size, dtype=bool)
                    if len(nbr_cols) > 1:
                        g_pick = pick[rows_slice]
                        for k, c in enumerate(nbr_cols):
                            hit = self._member(g_block[row_ids, c], cands)
                            mask &= hit | (g_pick[row_ids] == k)
                    for c in range(g_block.shape[1]):
                        mask &= cands != g_block[row_ids, c]
                    # Rows with any surviving common neighbor outside the
                    # match violate the anti-vertex; scatter-reject them.
                    alive[rows_slice.start + row_ids[mask]] = False
            if not alive.all():
                block = block[alive]
                origin = origin[alive]
        if self.on_match is None:
            # Count-only / batch paths count whole blocks up front: a
            # stop between blocks never splits a delivered batch.
            self.total += block.shape[0]
            if self.on_batch is not None:
                mappings = np.full(
                    (block.shape[0], self.width), -1, dtype=np.int64
                )
                mappings[:, cols] = block
                self.on_batch(mappings)
            return
        mappings = np.full((block.shape[0], self.width), -1, dtype=np.int64)
        mappings[:, cols] = block
        if self._ordered_emit:
            self._pending.append((origin, self._cur_rank, mappings))
            return
        self._emit_rows(mappings.tolist())

    def _emit_rows(self, rows: list[list[int]]) -> None:
        """Fire ``on_match`` per row, counting matches as they emit.

        Mirrors the reference engine's accounting: the returned total is
        the number of callbacks fired, so an early-terminating callback
        (``control.stop()``) suppresses — and uncounts — everything after
        the stopping match.
        """
        pattern = self.plan.pattern
        on_match = self.on_match
        control = self.control
        if control is None:
            self.total += len(rows)
            for row in rows:
                on_match(Match(pattern, tuple(row)))
            return
        for row in rows:
            if control.stopped:
                break
            self.total += 1
            on_match(Match(pattern, tuple(row)))

    def _emit_pending(self) -> None:
        """Merge one slice's per-core match batches into reference order."""
        pending = self._pending
        if not pending:
            return
        origins = np.concatenate([origin for origin, _, _ in pending])
        ranks = np.concatenate(
            [
                np.full(origin.size, rank, dtype=np.int64)
                for origin, rank, _ in pending
            ]
        )
        mappings = np.vstack([rows for _, _, rows in pending])
        # Stable sort: primary key origin (start order), secondary key
        # ordered-core rank; ties keep intra-core DFS emission order.
        order = np.lexsort((ranks, origins))
        self._emit_rows(mappings[order].tolist())


class SharedFrontierGathers:
    """One slice's first-level expansions, shared across fused members.

    The fused multi-pattern runner walks the level-0 frontier in slices
    and runs every member pattern over each slice.  A member's *first*
    expansion — a multi-position core's level-1, or the first completion
    step of a single-vertex-core plan — always extends the bare start
    vertex by its own neighbors, so its output is fully determined by a
    small *variant signature*: the symmetry bounds relative to the start
    (none / below-start / above-start), the new vertex's label
    constraint, and whether an anti-edge to the start applies.  (The
    engine's injectivity mask is vacuous here: a simple graph never lists
    a vertex among its own neighbors.)

    This cache memoizes the fully expanded ``(block, rows)`` pair per
    variant, computed exactly the way a standalone engine would (rank
    queries + one CSR gather) — so the *first* member needing a variant
    pays the sequential price and every further member gets it free.
    Motif censuses and FSM rounds concentrate on a handful of variants,
    which is where fusion's multiplicative saving comes from.

    :meth:`expansion` only serves a request whose start array equals the
    slice verbatim (label-filtered per-core subsets fall back to the
    engine's own path), so correctness never depends on the cache: a
    miss simply costs the un-fused expansion.
    """

    __slots__ = (
        "flat",
        "offsets",
        "degrees",
        "keys",
        "stride",
        "labels",
        "_starts",
        "_identity",
        "_expansions",
    )

    def __init__(self, view: AcceleratedGraphView):
        flat, offsets, labels = view.csr()
        self.flat = flat
        self.offsets = offsets
        self.degrees = view.degrees()
        self.keys = view.adjacency_keys()
        self.stride = view.num_vertices + 1
        self.labels = labels
        self._starts: np.ndarray | None = None
        self._identity: np.ndarray | None = None
        self._expansions: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    def reset(self, starts: np.ndarray) -> None:
        """Begin a new frontier slice; previous expansions are dropped."""
        self._starts = starts
        self._identity = None
        self._expansions = {}

    def matches(self, starts: np.ndarray) -> bool:
        """Whether ``starts`` is exactly the current slice."""
        current = self._starts
        return (
            current is not None
            and starts.size == current.size
            and bool(np.array_equal(starts, current))
        )

    def origin_rows(self, origin: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """``origin[rows]``, skipping the gather for identity origins.

        A cache hit implies the member's level-0 frontier is the whole
        slice, so its origin array is almost always ``arange`` — one
        cheap O(rows) equality check saves an O(candidates) gather.
        """
        if self._identity is None:
            self._identity = np.arange(self._starts.size, dtype=np.int64)
        if origin.size == self._identity.size and np.array_equal(
            origin, self._identity
        ):
            return rows
        return origin[rows]

    def expansion(
        self,
        bounded_below: bool,
        bounded_above: bool,
        label: int | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The slice's first-level expansion for one variant signature.

        Returns ``(block, rows)``: ``block`` is the expanded
        ``(n_partials, 2)`` frontier — column 0 the start vertex, column
        1 its surviving neighbor — and ``rows`` the per-partial index
        into the slice.  ``bounded_below``/``bounded_above`` clip each
        start's neighbor segment to strictly above/below the start
        itself (the only symmetry bounds expressible at the first
        level); ``label`` keeps only candidates carrying it.  An
        anti-edge to the start can never constrain a first-level
        candidate (the candidate is a neighbor of the start, and a
        vertex pair cannot carry both an edge and an anti-edge), so the
        variant space is exactly these three axes.  Callers must not
        mutate the returned arrays.
        """
        key = (bounded_below, bounded_above, label)
        cached = self._expansions.get(key)
        if cached is not None:
            return cached
        starts = self._starts
        seg_base = self.offsets[starts]
        if bounded_below:
            queries = starts * self.stride + starts
            start_rank = np.searchsorted(self.keys, queries, "right") - seg_base
            seg_base = seg_base + start_rank
        else:
            start_rank = 0
        if bounded_above:
            queries = starts * self.stride + starts
            end_rank = np.searchsorted(self.keys, queries, "left") - self.offsets[starts]
        else:
            end_rank = self.degrees[starts]
        lens = np.maximum(end_rank - start_rank, 0)
        rows, local = FrontierBatchedEngine._gather(lens)
        cands = self.flat[seg_base[rows] + local]
        if label is not None:
            keep = self.labels[cands] == label
            rows = rows[keep]
            cands = cands[keep]
        block = np.empty((cands.size, 2), dtype=np.int64)
        block[:, 0] = starts[rows]
        block[:, 1] = cands
        cached = (block, rows)
        self._expansions[key] = cached
        return cached


def _frontier_slices(weights: np.ndarray, cap: int):
    """Slice the fused frontier so per-slice candidate totals stay near ``cap``.

    The per-start weights are ``degree + 1``, so a slice never exceeds
    ``cap`` rows and its shared gather never materializes much more than
    ``cap`` candidates (one start's full adjacency list is the
    irreducible worst case) — the same :func:`bounded_slices` rule the
    engine's own row grouping uses.
    """
    return bounded_slices(weights, cap)


def fused_run(
    view: AcceleratedGraphView,
    members: list[tuple[ExplorationPlan, Callable | None, Callable | None]],
    start_vertices: Iterable[int] | None = None,
    chunk: int | None = None,
    control: ExplorationControl | None = None,
    budget=None,
) -> list[int]:
    """Run several plans over one shared frontier; return per-member counts.

    ``members`` are ``(plan, on_match, on_batch)`` triples in reference
    order (at most one of the callbacks each; both ``None`` counts
    without enumerating).  All members must share the level-0 frontier:
    ``start_vertices`` is that fused frontier (``None`` = every vertex,
    hub-first), typically the union of the group's pinned start labels as
    computed by :meth:`repro.core.session.MiningSession` grouping.

    The frontier is walked once in degree-weighted slices; per slice,
    each member's :class:`FrontierBatchedEngine` runs with the slice's
    :class:`SharedFrontierGathers` attached, so first-level expansions
    reuse one CSR gather across the whole group and only per-pattern
    constraint masks diverge.  Per-member counts and callback order are
    identical to running each member alone (slices partition the same
    start order, and in-slice exploration is the engine's own DFS), which
    ``tests/test_multipattern.py`` fuzz-enforces.

    ``control`` is polled between frontier slices and threaded into each
    member engine (which polls it between blocks and per emitted match),
    so a stop lands within one slice of one member's work.  ``budget``
    is one armed :class:`~repro.core.callbacks.BudgetMeter` shared by
    every member — the deadline and row caps bound the whole fused call.
    On exhaustion the raised
    :class:`~repro.errors.BudgetExceededError` carries the *summed*
    partial with per-member counts in ``partial.detail["totals"]``.
    """
    n = view.num_vertices
    if start_vertices is None:
        starts = np.arange(n - 1, -1, -1, dtype=np.int64)
    elif isinstance(start_vertices, np.ndarray):
        starts = start_vertices.astype(np.int64, copy=False)
    else:
        starts = np.fromiter(start_vertices, dtype=np.int64)
    cap = ACCEL_FRONTIER_CHUNK if chunk is None else max(1, int(chunk))
    engines = [FrontierBatchedEngine(view) for _ in members]
    shared = SharedFrontierGathers(view)
    totals = [0] * len(members)
    # degree + 1 keeps zero-degree starts advancing and bounds slice rows.
    weights = view.degrees()[starts] + 1
    for sl in _frontier_slices(weights, cap):
        if control is not None and control.stopped:
            break
        sl_starts = starts[sl]
        shared.reset(sl_starts)
        for idx, (plan, on_match, on_batch) in enumerate(members):
            engine = engines[idx]
            engine.shared = shared
            try:
                totals[idx] += engine.run(
                    plan,
                    start_vertices=sl_starts,
                    on_match=on_match,
                    on_batch=on_batch,
                    count_only=on_match is None and on_batch is None,
                    chunk=cap,
                    control=control,
                    budget=budget,
                )
            except BudgetExceededError as err:
                totals[idx] += int(err.partial)
                partial = PartialResult(
                    sum(totals),
                    levels_completed=err.partial.levels_completed,
                    truncated=True,
                    reason=err.partial.reason,
                    detail={"totals": list(totals)},
                )
                raise BudgetExceededError(str(err), partial) from None
            finally:
                engine.shared = None
    return totals


def frontier_count(
    graph: DataGraph,
    pattern: Pattern,
    plan: ExplorationPlan | None = None,
    view: AcceleratedGraphView | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    chunk: int | None = None,
) -> int:
    """Frontier-batched match counting (full pattern-feature matrix).

    The batched counterpart of :func:`accelerated_count` — semantically
    identical to ``repro.core.count`` on every feature combination.
    """
    if plan is None:
        plan = generate_plan(
            pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
    ordered, _ = graph.degree_ordered()
    if view is None or view.graph is not ordered:
        view = shared_view(ordered)
    return FrontierBatchedEngine(view).run(plan, count_only=True, chunk=chunk)
