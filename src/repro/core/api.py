"""Public matching API: ``match``, ``count``, ``exists`` (Figure 4).

These are the verbs every Peregrine program is written in.  ``match``
invokes a user callback per canonical match; ``count`` is the paper's
syntactic sugar for matching with a counter (and takes the engine's
enumeration-free counting fast path); ``exists`` stops at the first match.

The data graph is degree-ordered internally (§5.2) and matches are
translated back to the caller's vertex ids before callbacks see them.

**Engine dispatch.**  Two engines implement identical semantics: the
reference interpreter (:mod:`repro.core.engine`) and the vectorized
:class:`~repro.core.accel.AcceleratedEngine`.  With ``engine="auto"``
(the default) a run is served by the accelerated engine when it
*qualifies* — numpy importable, and no ``stats`` / ``timer`` /
``control`` attached (those hooks are only instrumented in the
reference engine) — **and** the run is in the vectorized engine's
winning regime: numpy's per-call overhead only amortizes when the
candidate arrays are large, so auto requires a dense data graph
(average degree >= :data:`ACCEL_MIN_AVG_DEGREE`) and a pattern whose
core has at least two vertices (single-vertex cores are tail-count
dominated, where sliced Python lists are already optimal).  Benchmarks:
``bench_ablations.py::test_engine_dispatch``.  ``engine="reference"`` /
``engine="accel"`` force one side unconditionally (ablations,
debugging); forcing ``"accel"`` raises when the run does not qualify.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..errors import MatchingError
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .callbacks import ExplorationControl, Match
from .engine import EngineStats, run_tasks
from .plan import ExplorationPlan, generate_plan

try:  # numpy is an optional accelerator, not a hard dependency
    from . import accel as _accel
except ImportError:  # pragma: no cover - exercised only without numpy
    _accel = None

__all__ = ["match", "count", "count_many", "exists", "accel_preferred"]

_ENGINE_CHOICES = ("auto", "accel", "reference")

# Measured crossover (bench_ablations.py::test_engine_dispatch): below
# this average degree the reference interpreter's bisect/slice loops beat
# numpy's per-call overhead; above it the vectorized kernels win.
ACCEL_MIN_AVG_DEGREE = 128.0


def accel_preferred(ordered: DataGraph, plan: ExplorationPlan) -> bool:
    """Whether the vectorized engine is expected to win this run.

    The heuristic behind ``engine="auto"`` (shared with the process
    runtime): dense adjacency arrays amortize numpy call overhead, and a
    multi-vertex core means real intersection work; sparse graphs and
    single-vertex-core (tail-count dominated) patterns stay on the
    reference interpreter.
    """
    return (
        ordered.avg_degree() >= ACCEL_MIN_AVG_DEGREE and len(plan.core) >= 2
    )


def _dispatch_accel(
    engine: str,
    control: ExplorationControl | None,
    stats: EngineStats | None,
    timer,
    ordered: DataGraph,
    plan: ExplorationPlan,
) -> bool:
    """Decide whether a run goes to the vectorized engine."""
    if engine not in _ENGINE_CHOICES:
        raise ValueError(f"engine must be one of {_ENGINE_CHOICES}, got {engine!r}")
    if engine == "reference":
        return False
    qualifies = (
        _accel is not None
        and control is None
        and stats is None
        and timer is None
    )
    if engine == "accel":
        if not qualifies:
            raise MatchingError(
                "engine='accel' requires numpy and no stats/timer/control "
                "hooks; use engine='auto' to fall back to the reference engine"
            )
        return True
    return qualifies and accel_preferred(ordered, plan)


def _translated_callback(
    callback: Callable[[Match], None], old_of_new: list[int]
) -> Callable[[Match], None]:
    def wrapper(m: Match) -> None:
        translated = tuple(
            old_of_new[v] if v >= 0 else -1 for v in m.mapping
        )
        callback(Match(m.pattern, translated))

    return wrapper


def _label_filtered_starts(ordered: DataGraph, plan: ExplorationPlan):
    """Start vertices restricted by the matching orders' top-position labels.

    The G-Miner observation (§6.4): indexing vertices by label prunes
    whole tasks when the pattern is labeled.  Every task's start vertex
    must match some ordered core's *top* position; when all cores pin
    that position to a label, only the union of those labels' vertices
    can seed a match.  Returns ``None`` (no restriction) when any core's
    top position is a wildcard or the graph is unlabeled.
    """
    if ordered.labels() is None:
        return None
    top_labels = {oc.labels[oc.size - 1] for oc in plan.ordered_cores}
    if None in top_labels or not top_labels:
        return None
    starts: set[int] = set()
    for label in top_labels:
        starts.update(ordered.vertices_with_label(label))
    return sorted(starts, reverse=True)  # preserve hub-first issue order


def match(
    graph: DataGraph,
    pattern: Pattern,
    callback: Callable[[Match], None] | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    control: ExplorationControl | None = None,
    stats: EngineStats | None = None,
    timer=None,
    plan: ExplorationPlan | None = None,
    start_vertices: Iterable[int] | None = None,
    label_index: bool = True,
    engine: str = "auto",
) -> int:
    """Find every canonical match of ``pattern`` in ``graph``.

    Invokes ``callback`` once per match (if given) and returns the number
    of matches found.  ``edge_induced=False`` requests vertex-induced
    matching (Theorem 3.1).  ``symmetry_breaking=False`` is the PRG-U
    ablation: all automorphic copies are reported.

    ``control`` enables early termination: a callback calling
    ``control.stop()`` halts remaining exploration (§5.3).  ``stats`` and
    ``timer`` attach profiling (Fig 1 counters, Fig 11 stage times).

    With ``label_index`` (default), labeled patterns seed tasks only from
    data vertices whose label can match a core top position — the same
    pruning G-Miner gets from its label index, without preprocessing the
    graph per query.  Disable to measure its effect (``bench_ablations``).
    """
    if plan is None:
        plan = generate_plan(
            pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
    ordered, old_of_new = graph.degree_ordered()
    wrapped = (
        _translated_callback(callback, old_of_new) if callback is not None else None
    )
    if start_vertices is None and label_index:
        start_vertices = _label_filtered_starts(ordered, plan)
    if _dispatch_accel(engine, control, stats, timer, ordered, plan):
        accelerated = _accel.AcceleratedEngine(_accel.shared_view(ordered))
        return accelerated.run(
            plan,
            start_vertices=start_vertices,
            on_match=wrapped,
            count_only=callback is None,
        )
    return run_tasks(
        ordered,
        plan,
        start_vertices=start_vertices,
        on_match=wrapped,
        control=control,
        stats=stats,
        timer=timer,
        count_only=callback is None,
    )


def count(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    stats: EngineStats | None = None,
    timer=None,
    plan: ExplorationPlan | None = None,
    engine: str = "auto",
) -> int:
    """Number of canonical matches of ``pattern`` in ``graph``.

    Equivalent to ``match`` with a counting callback, but lets the engine
    count final-step candidate sets without enumerating them.
    """
    return match(
        graph,
        pattern,
        callback=None,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        stats=stats,
        timer=timer,
        plan=plan,
        engine=engine,
    )


def count_many(
    graph: DataGraph,
    patterns: Sequence[Pattern],
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    engine: str = "auto",
) -> Mapping[Pattern, int]:
    """Count each pattern in turn; returns ``{pattern: count}``.

    This is the multi-pattern overload of the paper's ``count`` (used by
    motif counting, Fig 4e).
    """
    return {
        p: count(
            graph,
            p,
            edge_induced=edge_induced,
            symmetry_breaking=symmetry_breaking,
            engine=engine,
        )
        for p in patterns
    }


def exists(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
) -> bool:
    """Whether at least one match exists; stops exploring at the first.

    This is the paper's existence-query idiom (Fig 4f): the callback fires
    ``stopExploration()`` on the first match.
    """
    control = ExplorationControl()
    found = []

    def on_first(m: Match) -> None:
        found.append(m)
        control.stop()

    match(graph, pattern, callback=on_first, edge_induced=edge_induced,
          control=control)
    return bool(found)
