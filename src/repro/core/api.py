"""Public matching API: ``match``, ``count``, ``exists`` (Figure 4).

These are the verbs every Peregrine program is written in.  ``match``
invokes a user callback per canonical match; ``count`` is the paper's
syntactic sugar for matching with a counter (and takes the engine's
enumeration-free counting fast path); ``exists`` stops at the first match.

The data graph is degree-ordered internally (§5.2) and matches are
translated back to the caller's vertex ids before callbacks see them.

**Engine dispatch.**  Three engines implement identical semantics: the
reference interpreter (:mod:`repro.core.engine`), the per-match
vectorized :class:`~repro.core.accel.AcceleratedEngine`, and the
frontier-batched :class:`~repro.core.accel.FrontierBatchedEngine`
(whole matching-order levels per numpy dispatch).  With
``engine="auto"`` (the default) a run is served by a vectorized engine
when it *qualifies* — numpy importable, and no ``stats`` / ``timer`` /
``control`` attached (those hooks are only instrumented in the
reference engine) — **and** it is in a vectorized winning regime.  The
batched engine amortizes numpy call overhead across the whole frontier,
so its crossover sits at average degree >=
:data:`ACCEL_BATCH_MIN_AVG_DEGREE` (measured ~2: near-forest graphs are
the only place the interpreter still ties) with **no** core-size
exclusion — its tail count is per-row arithmetic, so single-vertex-core
patterns win too.  The per-match engine's old crossover
(:data:`ACCEL_MIN_AVG_DEGREE`, 128, with a multi-vertex-core
requirement) is kept for the ``engine="accel"`` ablation and as the
middle dispatch tier.  Benchmarks:
``bench_engine_frontier.py`` (sweep + ``BENCH_engine.json``) and
``bench_ablations.py::test_engine_dispatch``.  ``engine="reference"`` /
``engine="accel"`` / ``engine="accel-batch"`` force one engine
unconditionally (ablations, debugging); forcing a vectorized engine
raises when the run does not qualify.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..errors import MatchingError
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .callbacks import ExplorationControl, Match
from .engine import EngineStats, run_tasks
from .plan import ExplorationPlan, generate_plan

try:  # numpy is an optional accelerator, not a hard dependency
    from . import accel as _accel
except ImportError:  # pragma: no cover - exercised only without numpy
    _accel = None

__all__ = [
    "match",
    "count",
    "count_many",
    "exists",
    "match_batches",
    "accel_preferred",
    "batch_preferred",
]

_ENGINE_CHOICES = ("auto", "accel", "accel-batch", "reference")

# Measured crossover of the *per-match* vectorized engine
# (bench_ablations.py::test_engine_dispatch): below this average degree
# the reference interpreter's bisect/slice loops beat numpy's per-call
# overhead; above it the per-candidate vectorized kernels win.
ACCEL_MIN_AVG_DEGREE = 128.0

# Measured crossover of the *frontier-batched* engine
# (bench_engine_frontier.py, BENCH_engine.json): batching whole match
# levels amortizes numpy dispatch across thousands of partials, so the
# batched engine already wins at avg degree ~2 on graphs of a few
# hundred vertices (6-12x over the interpreter at degree 2-8, measured).
# Only near-forest graphs below this line stay on the interpreter.
ACCEL_BATCH_MIN_AVG_DEGREE = 2.0


def accel_preferred(ordered: DataGraph, plan: ExplorationPlan) -> bool:
    """Whether the *per-match* vectorized engine is expected to win.

    The historic ``engine="auto"`` heuristic, kept for the
    ``engine="accel"`` ablation tier: dense adjacency arrays amortize
    numpy call overhead, and a multi-vertex core means real intersection
    work; sparse graphs and single-vertex-core (tail-count dominated)
    patterns lose to the reference interpreter here.
    """
    return (
        ordered.avg_degree() >= ACCEL_MIN_AVG_DEGREE and len(plan.core) >= 2
    )


def batch_preferred(ordered: DataGraph, plan: ExplorationPlan) -> bool:
    """Whether the frontier-batched engine is expected to win this run.

    Frontier batching amortizes per-dispatch overhead across every live
    partial match of a level, and its tail count is per-row arithmetic,
    so neither the density floor nor the core-size exclusion of
    :func:`accel_preferred` applies — only near-forest graphs (average
    degree below :data:`ACCEL_BATCH_MIN_AVG_DEGREE`) stay on the
    interpreter.
    """
    return ordered.avg_degree() >= ACCEL_BATCH_MIN_AVG_DEGREE


def _dispatch_engine(
    engine: str,
    control: ExplorationControl | None,
    stats: EngineStats | None,
    timer,
    ordered: DataGraph,
    plan: ExplorationPlan,
) -> str:
    """Resolve the engine choice to ``reference``/``accel``/``accel-batch``."""
    if engine not in _ENGINE_CHOICES:
        raise ValueError(f"engine must be one of {_ENGINE_CHOICES}, got {engine!r}")
    if engine == "reference":
        return "reference"
    qualifies = (
        _accel is not None
        and control is None
        and stats is None
        and timer is None
    )
    if engine in ("accel", "accel-batch"):
        if not qualifies:
            raise MatchingError(
                f"engine={engine!r} requires numpy and no stats/timer/control "
                "hooks; use engine='auto' to fall back to the reference engine"
            )
        return engine
    if not qualifies:
        return "reference"
    if batch_preferred(ordered, plan):
        return "accel-batch"
    if accel_preferred(ordered, plan):
        return "accel"
    return "reference"


def _translated_callback(
    callback: Callable[[Match], None], old_of_new: list[int]
) -> Callable[[Match], None]:
    def wrapper(m: Match) -> None:
        translated = tuple(
            old_of_new[v] if v >= 0 else -1 for v in m.mapping
        )
        callback(Match(m.pattern, translated))

    return wrapper


def _label_filtered_starts(ordered: DataGraph, plan: ExplorationPlan):
    """Start vertices restricted by the matching orders' top-position labels.

    The G-Miner observation (§6.4): indexing vertices by label prunes
    whole tasks when the pattern is labeled.  Every task's start vertex
    must match some ordered core's *top* position; when all cores pin
    that position to a label, only the union of those labels' vertices
    can seed a match.  Returns ``None`` (no restriction) when any core's
    top position is a wildcard or the graph is unlabeled.
    """
    if ordered.labels() is None:
        return None
    top_labels = plan.pinned_start_labels()
    if top_labels is None:
        return None
    starts: set[int] = set()
    for label in top_labels:
        starts.update(ordered.vertices_with_label(label))
    return sorted(starts, reverse=True)  # preserve hub-first issue order


def match(
    graph: DataGraph,
    pattern: Pattern,
    callback: Callable[[Match], None] | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    control: ExplorationControl | None = None,
    stats: EngineStats | None = None,
    timer=None,
    plan: ExplorationPlan | None = None,
    start_vertices: Iterable[int] | None = None,
    label_index: bool = True,
    engine: str = "auto",
    frontier_chunk: int | None = None,
) -> int:
    """Find every canonical match of ``pattern`` in ``graph``.

    Invokes ``callback`` once per match (if given) and returns the number
    of matches found.  ``edge_induced=False`` requests vertex-induced
    matching (Theorem 3.1).  ``symmetry_breaking=False`` is the PRG-U
    ablation: all automorphic copies are reported.

    ``control`` enables early termination: a callback calling
    ``control.stop()`` halts remaining exploration (§5.3).  ``stats`` and
    ``timer`` attach profiling (Fig 1 counters, Fig 11 stage times).

    With ``label_index`` (default), labeled patterns seed tasks only from
    data vertices whose label can match a core top position — the same
    pruning G-Miner gets from its label index, without preprocessing the
    graph per query.  Disable to measure its effect (``bench_ablations``).

    ``frontier_chunk`` caps how many partial matches the frontier-batched
    engine expands per numpy dispatch (memory/locality trade-off;
    default :data:`repro.core.accel.ACCEL_FRONTIER_CHUNK`).  Ignored by
    the other engines.
    """
    if plan is None:
        plan = generate_plan(
            pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
    ordered, old_of_new = graph.degree_ordered()
    wrapped = (
        _translated_callback(callback, old_of_new) if callback is not None else None
    )
    if start_vertices is None and label_index:
        start_vertices = _label_filtered_starts(ordered, plan)
    selected = _dispatch_engine(engine, control, stats, timer, ordered, plan)
    if selected == "accel-batch":
        batched = _accel.FrontierBatchedEngine(_accel.shared_view(ordered))
        return batched.run(
            plan,
            start_vertices=start_vertices,
            on_match=wrapped,
            count_only=callback is None,
            chunk=frontier_chunk,
        )
    if selected == "accel":
        accelerated = _accel.AcceleratedEngine(_accel.shared_view(ordered))
        return accelerated.run(
            plan,
            start_vertices=start_vertices,
            on_match=wrapped,
            count_only=callback is None,
        )
    return run_tasks(
        ordered,
        plan,
        start_vertices=start_vertices,
        on_match=wrapped,
        control=control,
        stats=stats,
        timer=timer,
        count_only=callback is None,
    )


def count(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    stats: EngineStats | None = None,
    timer=None,
    plan: ExplorationPlan | None = None,
    engine: str = "auto",
    frontier_chunk: int | None = None,
) -> int:
    """Number of canonical matches of ``pattern`` in ``graph``.

    Equivalent to ``match`` with a counting callback, but lets the engine
    count final-step candidate sets without enumerating them.
    """
    return match(
        graph,
        pattern,
        callback=None,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        stats=stats,
        timer=timer,
        plan=plan,
        engine=engine,
        frontier_chunk=frontier_chunk,
    )


def count_many(
    graph: DataGraph,
    patterns: Sequence[Pattern],
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    engine: str = "auto",
) -> Mapping[Pattern, int]:
    """Count each pattern in turn; returns ``{pattern: count}``.

    This is the multi-pattern overload of the paper's ``count`` (used by
    motif counting, Fig 4e).
    """
    return {
        p: count(
            graph,
            p,
            edge_induced=edge_induced,
            symmetry_breaking=symmetry_breaking,
            engine=engine,
        )
        for p in patterns
    }


def exists(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    engine: str = "auto",
) -> bool:
    """Whether at least one match exists; stops exploring at the first.

    This is the paper's existence-query idiom (Fig 4f): the callback fires
    ``stopExploration()`` on the first match.  Early termination is a
    reference-engine hook, so ``engine="auto"`` always resolves to the
    interpreter here; the knob exists so forced ablations fail loudly
    (forcing a vectorized engine raises) instead of silently diverging.
    """
    control = ExplorationControl()
    found = []

    def on_first(m: Match) -> None:
        found.append(m)
        control.stop()

    match(graph, pattern, callback=on_first, edge_induced=edge_induced,
          control=control, engine=engine)
    return bool(found)


def match_batches(
    graph: DataGraph,
    pattern: Pattern,
    on_batch,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    plan: ExplorationPlan | None = None,
    label_index: bool = True,
    engine: str = "auto",
    frontier_chunk: int | None = None,
    flush_size: int = 4096,
) -> int:
    """Stream every canonical match as 2D numpy arrays; return the count.

    ``on_batch`` receives ``(rows, num_pattern_vertices)`` int64 arrays —
    column ``u`` is the data vertex matched to pattern vertex ``u`` (in
    the caller's vertex ids; ``-1`` for anti-vertices).  This is the
    array-native alternative to ``match``'s per-match callback: domain
    and aggregation consumers (FSM, motif tables) fold whole batches with
    vectorized group-bys instead of paying one Python call per match.

    When the frontier-batched engine serves the run, batches come
    straight off its final frontiers; otherwise matches are buffered into
    ``flush_size``-row arrays over the fallback engine, so callers keep a
    single code path.  Batch boundaries and inter-batch order are
    unspecified; the row multiset equals ``match``'s match multiset.
    """
    if _accel is None:
        raise MatchingError("match_batches requires numpy")
    np = _accel.np
    if plan is None:
        plan = generate_plan(
            pattern, edge_induced=edge_induced, symmetry_breaking=symmetry_breaking
        )
    ordered, old_of_new = graph.degree_ordered()
    translation = np.asarray(old_of_new, dtype=np.int64)

    def emit(mappings: "np.ndarray") -> None:
        translated = translation[np.maximum(mappings, 0)]
        translated[mappings < 0] = -1
        on_batch(translated)

    start_vertices = _label_filtered_starts(ordered, plan) if label_index else None
    selected = _dispatch_engine(engine, None, None, None, ordered, plan)
    if selected == "accel-batch":
        batched = _accel.FrontierBatchedEngine(_accel.shared_view(ordered))
        return batched.run(
            plan,
            start_vertices=start_vertices,
            on_batch=emit,
            chunk=frontier_chunk,
        )

    buffer: list[tuple[int, ...]] = []

    def flush() -> None:
        if buffer:
            emit(np.asarray(buffer, dtype=np.int64))
            buffer.clear()

    def collect(m: Match) -> None:
        buffer.append(m.mapping)
        if len(buffer) >= flush_size:
            flush()

    if selected == "accel":
        engine_obj = _accel.AcceleratedEngine(_accel.shared_view(ordered))
        total = engine_obj.run(
            plan, start_vertices=start_vertices, on_match=collect
        )
    else:
        total = run_tasks(
            ordered, plan, start_vertices=start_vertices, on_match=collect
        )
    flush()
    return total
