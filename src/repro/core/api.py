"""Public matching API: ``match``, ``count``, ``exists`` (Figure 4).

These are the verbs every Peregrine program is written in.  ``match``
invokes a user callback per canonical match; ``count`` is the paper's
syntactic sugar for matching with a counter (and takes the engine's
enumeration-free counting fast path); ``exists`` stops at the first match.

Since the session redesign this module is a *one-shot shim layer*: every
function delegates to the pinned-graph session machinery in
:mod:`repro.core.session` via :meth:`MiningSession.for_graph`, which
caches the degree-ordered graph, the CSR shared view, exploration plans
and label-filtered start lists per graph.  Signatures here are stable —
existing programs keep working unchanged and transparently share those
caches; new code that issues several queries against one graph should
hold a :class:`~repro.core.session.MiningSession` directly.

The data graph is degree-ordered internally (§5.2) and matches are
translated back to the caller's vertex ids before callbacks see them.

**Engine dispatch.**  Three engines implement identical semantics: the
reference interpreter (:mod:`repro.core.engine`), the per-match
vectorized :class:`~repro.core.accel.AcceleratedEngine`, and the
frontier-batched :class:`~repro.core.accel.FrontierBatchedEngine`
(whole matching-order levels per numpy dispatch).  With
``engine="auto"`` (the default) a run is served by a vectorized engine
when it *qualifies* — numpy importable, and no ``stats`` / ``timer``
attached (those instruments are only wired in the reference engine) —
**and** it is in a vectorized winning regime.  An early-termination
``control`` is polled by the batched engine between frontier blocks and
per emitted match, so ``exists`` and capped enumerations batch too; only
the per-match ``accel`` engine still lacks the hook.  The batched engine
amortizes numpy call overhead across the whole frontier, so its
crossover sits at average degree >= :data:`ACCEL_BATCH_MIN_AVG_DEGREE`
(measured ~2: near-forest graphs are the only place the interpreter
still ties) with **no** core-size exclusion — its tail count is per-row
arithmetic, so single-vertex-core patterns win too.  The per-match
engine's old crossover (:data:`ACCEL_MIN_AVG_DEGREE`, 128, with a
multi-vertex-core requirement) is kept for the ``engine="accel"``
ablation and as the middle dispatch tier.  Benchmarks:
``bench_engine_frontier.py`` (sweep + ``BENCH_engine.json``) and
``bench_ablations.py::test_engine_dispatch``.  ``engine="reference"`` /
``engine="accel"`` / ``engine="accel-batch"`` force one engine
unconditionally (ablations, debugging); forcing a vectorized engine
raises when the run does not qualify.

**Multi-pattern fusion.**  The multi-pattern verbs (``count_many``,
``match_many``, ``match_batches_many``) additionally accept
``engine="fused"``: patterns sharing a level-0 frontier signature are
grouped by :class:`~repro.core.session.MultiPatternPlan` and run through
:func:`repro.core.accel.fused_run` — one frontier walk, shared
first-level gathers, per-pattern constraint masks — with count-only
vertex-induced censuses additionally rewritten onto the shared
non-induced basis (:mod:`repro.core.multipattern`).  ``engine="auto"``
fuses automatically for groups of at least
:data:`~repro.core.session.FUSED_MIN_GROUP` when the run qualifies;
measured in ``benchmarks/bench_multipattern.py`` →
``BENCH_multipattern.json``.

**Process scaling.**  These shims are single-process by design (their
signatures are frozen).  To scale across cores, hold a session and pass
``num_processes`` to :meth:`MiningSession.count_many`, or use the
runtimes directly — :func:`repro.runtime.parallel.process_count` /
:func:`~repro.runtime.parallel.process_count_many` — which place work
through the shared chunk scheduler (``schedule="dynamic"`` work
stealing by default, ``"static"`` stride slices as the ablation;
``chunk_hint`` tunes granularity; measured in
``benchmarks/bench_parallel.py`` → ``BENCH_parallel.json``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .callbacks import ExplorationControl, Match
from .engine import EngineStats
from .plan import ExplorationPlan
from .session import (
    ACCEL_BATCH_MIN_AVG_DEGREE,
    ACCEL_MIN_AVG_DEGREE,
    FUSED_MIN_GROUP,
    MiningSession,
    accel_preferred,
    batch_preferred,
)

__all__ = [
    "match",
    "count",
    "count_many",
    "match_many",
    "exists",
    "match_batches",
    "match_batches_many",
    "aggregate",
    "accel_preferred",
    "batch_preferred",
]


def match(
    graph: DataGraph,
    pattern: Pattern,
    callback: Callable[[Match], None] | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    control: ExplorationControl | None = None,
    stats: EngineStats | None = None,
    timer=None,
    plan: ExplorationPlan | None = None,
    start_vertices: Iterable[int] | None = None,
    label_index: bool = True,
    engine: str = "auto",
    frontier_chunk: int | None = None,
) -> int:
    """Find every canonical match of ``pattern`` in ``graph``.

    Invokes ``callback`` once per match (if given) and returns the number
    of matches found.  ``edge_induced=False`` requests vertex-induced
    matching (Theorem 3.1).  ``symmetry_breaking=False`` is the PRG-U
    ablation: all automorphic copies are reported.

    ``control`` enables early termination: a callback calling
    ``control.stop()`` halts remaining exploration (§5.3).  ``stats`` and
    ``timer`` attach profiling (Fig 1 counters, Fig 11 stage times).

    With ``label_index`` (default), labeled patterns seed tasks only from
    data vertices whose label can match a core top position — the same
    pruning G-Miner gets from its label index, without preprocessing the
    graph per query.  Disable to measure its effect (``bench_ablations``).

    ``frontier_chunk`` caps how many partial matches the frontier-batched
    engine expands per numpy dispatch (memory/locality trade-off;
    default :data:`repro.core.accel.ACCEL_FRONTIER_CHUNK`).  Ignored by
    the other engines.
    """
    return MiningSession.for_graph(graph).match(
        pattern,
        callback,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        control=control,
        stats=stats,
        timer=timer,
        plan=plan,
        start_vertices=start_vertices,
        label_index=label_index,
        engine=engine,
        frontier_chunk=frontier_chunk,
    )


def count(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    stats: EngineStats | None = None,
    timer=None,
    plan: ExplorationPlan | None = None,
    engine: str = "auto",
    frontier_chunk: int | None = None,
) -> int:
    """Number of canonical matches of ``pattern`` in ``graph``.

    Equivalent to ``match`` with a counting callback, but lets the engine
    count final-step candidate sets without enumerating them.
    """
    return MiningSession.for_graph(graph).count(
        pattern,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        stats=stats,
        timer=timer,
        plan=plan,
        engine=engine,
        frontier_chunk=frontier_chunk,
    )


def count_many(
    graph: DataGraph,
    patterns: Sequence[Pattern],
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    engine: str = "auto",
) -> Mapping[Pattern, int]:
    """Count each pattern in turn; returns ``{pattern: count}``.

    This is the multi-pattern overload of the paper's ``count`` (used by
    motif counting, Fig 4e).  All patterns run through one shared
    session, so the degree ordering, CSR view and plan cache are derived
    once, not once per pattern — and compatible patterns *fuse* onto one
    shared frontier walk (``engine="auto"``/``"fused"``; see
    :meth:`MiningSession.match_many` for the dispatch rules and
    :data:`repro.core.session.FUSED_MIN_GROUP` for the group floor).
    """
    return MiningSession.for_graph(graph).count_many(
        patterns,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        engine=engine,
    )


def match_many(
    graph: DataGraph,
    patterns: Sequence[Pattern],
    callbacks: Sequence[Callable[[Match], None] | None] | None = None,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    engine: str = "auto",
    frontier_chunk: int | None = None,
) -> list[int]:
    """Match every pattern; per-pattern counts in input order.

    One-shot convenience over :meth:`MiningSession.match_many`:
    ``callbacks[i]`` fires per match of ``patterns[i]`` in exactly the
    order a standalone ``match`` would produce, while compatible
    patterns share one fused frontier walk.
    """
    return MiningSession.for_graph(graph).match_many(
        patterns,
        callbacks,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        engine=engine,
        frontier_chunk=frontier_chunk,
    )


def match_batches_many(
    graph: DataGraph,
    patterns: Sequence[Pattern],
    on_batches: Sequence[Callable],
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    engine: str = "auto",
    frontier_chunk: int | None = None,
) -> list[int]:
    """Stream every pattern's matches as arrays; per-pattern counts.

    One-shot convenience over :meth:`MiningSession.match_batches_many` —
    the array-native multi-pattern verb FSM rounds are built on.
    """
    return MiningSession.for_graph(graph).match_batches_many(
        patterns,
        on_batches,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        engine=engine,
        frontier_chunk=frontier_chunk,
    )


def exists(
    graph: DataGraph,
    pattern: Pattern,
    edge_induced: bool = True,
    engine: str = "auto",
) -> bool:
    """Whether at least one match exists; stops exploring at the first.

    This is the paper's existence-query idiom (Fig 4f): the callback fires
    ``stopExploration()`` on the first match.  The frontier-batched engine
    polls the control between frontier blocks and per emitted match, so
    ``engine="auto"`` dispatches this to the batched engine in its winning
    regime; only the per-match ``accel`` engine lacks the termination
    hook (forcing it raises).  The trade: the expensive no-match case
    (full exploration) runs vectorized, while a quick-hit positive may
    explore up to one start vertex's task before its stop lands —
    ``engine="reference"`` remains the finest-grained stopper.
    """
    return MiningSession.for_graph(graph).exists(
        pattern, edge_induced=edge_induced, engine=engine
    )


def match_batches(
    graph: DataGraph,
    pattern: Pattern,
    on_batch,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
    plan: ExplorationPlan | None = None,
    label_index: bool = True,
    engine: str = "auto",
    frontier_chunk: int | None = None,
    flush_size: int = 4096,
) -> int:
    """Stream every canonical match as 2D numpy arrays; return the count.

    ``on_batch`` receives ``(rows, num_pattern_vertices)`` int64 arrays —
    column ``u`` is the data vertex matched to pattern vertex ``u`` (in
    the caller's vertex ids; ``-1`` for anti-vertices).  This is the
    array-native alternative to ``match``'s per-match callback: domain
    and aggregation consumers (FSM, motif tables) fold whole batches with
    vectorized group-bys instead of paying one Python call per match.

    When the frontier-batched engine serves the run, batches come
    straight off its final frontiers; otherwise matches are buffered into
    ``flush_size``-row arrays over the fallback engine, so callers keep a
    single code path.  Batch boundaries and inter-batch order are
    unspecified; the row multiset equals ``match``'s match multiset.
    """
    return MiningSession.for_graph(graph).match_batches(
        pattern,
        on_batch,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        plan=plan,
        label_index=label_index,
        engine=engine,
        frontier_chunk=frontier_chunk,
        flush_size=flush_size,
    )


def aggregate(
    graph: DataGraph,
    patterns: Pattern | Iterable[Pattern],
    map_fn: Callable[[Match], tuple[Any, Any] | None],
    reduce: Callable[[Any, Any], Any] | None = None,
    **options,
) -> dict[Any, Any]:
    """Map/reduce over the matches of one or more patterns (§5.4).

    One-shot convenience over :meth:`MiningSession.aggregate`:
    ``map_fn(match)`` returns a ``(key, value)`` pair (or ``None`` to
    skip), values sharing a key fold through ``reduce`` (default:
    addition), and the final ``{key: value}`` map is returned.
    """
    return MiningSession.for_graph(graph).aggregate(
        patterns, map_fn, reduce=reduce, **options
    )
