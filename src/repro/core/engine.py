"""The pattern-aware matching engine (§4, §5.1, Figure 7).

Given an :class:`~repro.core.plan.ExplorationPlan`, the engine finds every
canonical match of the pattern in a degree-ordered data graph, invoking a
callback per match — with **zero** per-match isomorphism or canonicality
checks.  Exploration is task-parallel by design: a task is a start vertex,
and tasks share nothing but the read-only graph and plan, so the concurrent
runtime (:mod:`repro.runtime`) can hand tasks to workers freely.

Traversal follows §5.2: matching orders are walked *high-to-low* (the last
position, holding the largest data id, is the task's start vertex), and the
data graph is expected to be degree-ordered so high ids mean high degree;
hub tasks then prune aggressively because few neighbors exceed their id.

Engine-internal ids are those of the degree-ordered graph; the public API
(:mod:`repro.core.api`) translates matches back to original ids.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import MatchingError
from ..graph.graph import DataGraph
from .callbacks import ExplorationControl, Match
from .candidates import bounded, contains, difference, intersect_many
from .matching_order import OrderedCore
from .plan import ExplorationPlan

__all__ = ["EngineStats", "run_tasks", "default_task_order"]


class EngineStats:
    """Counters for one engine run (feeds Figure 1's profiling comparison).

    ``partial_matches`` counts every vertex-to-position assignment the
    engine ever makes — the analogue of baseline systems' intermediate
    embeddings.  ``canonicality_checks`` and ``isomorphism_checks`` exist
    for symmetry with the baselines' stats and are always zero here: the
    plan makes them unnecessary, which is the paper's core claim.
    """

    __slots__ = (
        "tasks",
        "partial_matches",
        "core_matches",
        "complete_matches",
        "canonicality_checks",
        "isomorphism_checks",
    )

    def __init__(self) -> None:
        self.tasks = 0
        self.partial_matches = 0
        self.core_matches = 0
        self.complete_matches = 0
        self.canonicality_checks = 0
        self.isomorphism_checks = 0

    def merge(self, other: "EngineStats") -> None:
        """Accumulate another run's counters (per-thread stats merging)."""
        self.tasks += other.tasks
        self.partial_matches += other.partial_matches
        self.core_matches += other.core_matches
        self.complete_matches += other.complete_matches
        self.canonicality_checks += other.canonicality_checks
        self.isomorphism_checks += other.isomorphism_checks

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EngineStats({self.as_dict()})"


def default_task_order(graph: DataGraph) -> range:
    """Start vertices from highest id (= highest degree) downward (§5.2)."""
    return range(graph.num_vertices - 1, -1, -1)


class _Run:
    """Mutable state for one engine invocation over a set of tasks."""

    __slots__ = (
        "graph",
        "plan",
        "on_match",
        "control",
        "stats",
        "timer",
        "count_only",
        "labels",
        "mapping",
        "used",
        "matches",
        "num_vertices",
        "can_count_tail",
    )

    def __init__(
        self,
        graph: DataGraph,
        plan: ExplorationPlan,
        on_match: Callable[[Match], None] | None,
        control: ExplorationControl | None,
        stats: EngineStats | None,
        timer,
        count_only: bool,
    ):
        self.graph = graph
        self.plan = plan
        self.on_match = on_match
        self.control = control
        self.stats = stats
        self.timer = timer
        self.count_only = count_only and on_match is None
        self.labels = graph.labels()
        pattern = plan.matched_pattern
        if pattern.is_labeled and self.labels is None:
            raise MatchingError(
                "pattern has label constraints but the data graph is unlabeled"
            )
        self.mapping = [-1] * pattern.num_vertices
        self.used: set[int] = set()
        self.matches = 0
        self.num_vertices = graph.num_vertices
        # Tail-count fast path: the final completion step can be counted
        # instead of enumerated when nothing after it inspects the match.
        self.can_count_tail = (
            self.count_only and not plan.anti_vertex_checks
        )

    # ------------------------------------------------------------------
    # Core matching (high-to-low over one ordered core)
    # ------------------------------------------------------------------

    def run_task(self, start: int) -> None:
        """Explore every match whose top core position holds ``start``."""
        if self.stats is not None:
            self.stats.tasks += 1
        graph = self.graph
        for oc in self.plan.ordered_cores:
            top = oc.size - 1
            label = oc.labels[top]
            if label is not None and self.labels[start] != label:
                continue
            pos_map = [-1] * oc.size
            pos_map[top] = start
            if self.stats is not None:
                self.stats.partial_matches += 1
            if oc.size == 1:
                self._core_matched(oc, pos_map)
            else:
                self._match_core(oc, pos_map, top - 1)

    def _match_core(self, oc: OrderedCore, pos_map: list[int], i: int) -> None:
        """Assign position ``i`` (descending) of the ordered core."""
        graph = self.graph
        timer = self.timer
        later_nbrs = oc.later_neighbors(i)
        upper = pos_map[i + 1]
        if later_nbrs:
            if timer is not None:
                timer.start("core")
            lists = [graph.neighbors(pos_map[j]) for j in later_nbrs]
            base = intersect_many(lists) if len(lists) > 1 else lists[0]
            if timer is not None:
                timer.stop("core")
                timer.start("po")
            cands: Sequence[int] = bounded(base, -1, upper)
            if timer is not None:
                timer.stop("po")
        else:
            # Position with no later neighbor in the ordered core: any
            # vertex below the bound qualifies (rare; cores are connected
            # but a linear extension may order a vertex before its
            # neighbors).
            cands = range(0, upper)
        anti_later = [b for a, b in oc.anti_edges if a == i]
        if anti_later and not isinstance(cands, range):
            if timer is not None:
                timer.start("core")
            for j in anti_later:
                cands = difference(cands, graph.neighbors(pos_map[j]))
            if timer is not None:
                timer.stop("core")
            anti_later = []
        label = oc.labels[i]
        labels = self.labels
        stats = self.stats
        for v in cands:
            if label is not None and labels[v] != label:
                continue
            if anti_later and any(
                contains(graph.neighbors(pos_map[j]), v) for j in anti_later
            ):
                continue
            pos_map[i] = v
            if stats is not None:
                stats.partial_matches += 1
            if i == 0:
                self._core_matched(oc, pos_map)
            else:
                self._match_core(oc, pos_map, i - 1)
            pos_map[i] = -1

    # ------------------------------------------------------------------
    # Completion (non-core vertices, then anti-vertex checks)
    # ------------------------------------------------------------------

    def _core_matched(self, oc: OrderedCore, pos_map: list[int]) -> None:
        """Remap a fully-assigned ordered core through each of its sequences."""
        if self.control is not None and self.control.stopped:
            return
        if self.stats is not None:
            self.stats.core_matches += len(oc.sequences)
        mapping = self.mapping
        used = self.used
        for seq in oc.sequences:
            for position, pattern_vertex in enumerate(seq):
                mapping[pattern_vertex] = pos_map[position]
            used.update(pos_map)
            self._complete(0)
            used.difference_update(pos_map)
            for pattern_vertex in seq:
                mapping[pattern_vertex] = -1

    def _complete(self, step_index: int) -> None:
        """Match non-core vertex ``step_index`` via list intersections."""
        steps = self.plan.noncore_steps
        if step_index == len(steps):
            self._report()
            return
        step = steps[step_index]
        graph = self.graph
        mapping = self.mapping
        timer = self.timer

        if timer is not None:
            timer.start("noncore")
        lists = [graph.neighbors(mapping[v]) for v in step.neighbors]
        cands = intersect_many(lists) if len(lists) > 1 else list(lists[0])
        for a in step.anti_neighbors:
            cands = difference(cands, graph.neighbors(mapping[a]))
        if timer is not None:
            timer.stop("noncore")

        lo = -1
        for w in step.lower_bounds:
            mw = mapping[w]
            if mw > lo:
                lo = mw
        hi = self.num_vertices
        for w in step.upper_bounds:
            mw = mapping[w]
            if mw < hi:
                hi = mw
        if lo >= 0 or hi < self.num_vertices:
            if timer is not None:
                timer.start("po")
            cands = bounded(cands, lo, hi)
            if timer is not None:
                timer.stop("po")

        label = step.label
        labels = self.labels
        if label is not None:
            cands = [v for v in cands if labels[v] == label]

        used = self.used
        stats = self.stats
        is_last = step_index + 1 == len(steps)
        if is_last and self.can_count_tail:
            # Count instead of enumerate: subtract candidates already used
            # by the partial match (injectivity).
            overlap = sum(1 for v in used if contains(cands, v))
            found = len(cands) - overlap
            self.matches += found
            if stats is not None:
                stats.partial_matches += found
                stats.complete_matches += found
            return
        u = step.vertex
        for v in cands:
            if v in used:
                continue
            mapping[u] = v
            used.add(v)
            if stats is not None:
                stats.partial_matches += 1
            self._complete(step_index + 1)
            used.discard(v)
            mapping[u] = -1

    def _report(self) -> None:
        """A full regular-vertex assignment: verify anti-vertices, emit."""
        checks = self.plan.anti_vertex_checks
        if checks:
            graph = self.graph
            mapping = self.mapping
            used = self.used
            timer = self.timer
            if timer is not None:
                timer.start("noncore")
            try:
                for check in checks:
                    lists = [
                        graph.neighbors(mapping[v]) for v in check.neighbors
                    ]
                    common = (
                        intersect_many(lists) if len(lists) > 1 else lists[0]
                    )
                    for x in common:
                        if x not in used:
                            return  # a forbidden common neighbor exists
            finally:
                if timer is not None:
                    timer.stop("noncore")
        self.matches += 1
        if self.stats is not None:
            self.stats.complete_matches += 1
        if self.on_match is not None:
            self.on_match(Match(self.plan.pattern, tuple(self.mapping)))


def run_tasks(
    graph: DataGraph,
    plan: ExplorationPlan,
    start_vertices: Iterable[int] | None = None,
    on_match: Callable[[Match], None] | None = None,
    control: ExplorationControl | None = None,
    stats: EngineStats | None = None,
    timer=None,
    count_only: bool = False,
    budget=None,
) -> int:
    """Run matching tasks over ``start_vertices``; return the match count.

    ``graph`` must be degree-ordered (see
    :meth:`DataGraph.degree_ordered`); ids reported to ``on_match`` are in
    that graph's numbering.  ``start_vertices`` defaults to all vertices,
    highest degree first.  With ``count_only`` (and no callback, no
    anti-vertices) the engine counts final-step candidates without
    enumerating them.  ``budget`` is an armed
    :class:`~repro.core.callbacks.BudgetMeter`, polled once per start
    task; exhaustion raises
    :class:`~repro.errors.BudgetExceededError` with the count so far.
    """
    run = _Run(graph, plan, on_match, control, stats, timer, count_only)
    if start_vertices is None:
        start_vertices = default_task_order(graph)
    if timer is not None:
        timer.start("other")
    try:
        for start in start_vertices:
            if control is not None and control.stopped:
                break
            if budget is not None:
                budget.charge_rows(1)
                budget.check(run.matches)
            run.run_task(start)
            if budget is not None:
                budget.levels_completed += 1
    finally:
        if timer is not None:
            timer.stop("other")
    return run.matches
