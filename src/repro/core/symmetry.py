"""Symmetry breaking: partial orders that kill automorphic duplicates (§4.1).

Implements the Grochow–Kellis scheme the paper cites [16]: iteratively pin
down symmetric vertices with ``m(u) < m(v)`` constraints until the identity
is the only automorphism satisfying them.  Any match respecting the partial
order is then the unique canonical representative of its automorphism class
— which is what lets Peregrine skip per-match canonicality checks entirely.

The constraints are derived along a *stabilizer chain* (fix vertex 0,
then 1, ...), where each step needs only the orbit of the next vertex
under the current stabilizer — a handful of single-automorphism searches —
never the full group.  That matters: a k-clique has k! automorphisms, and
the paper's 14-clique existence query (Table 6) needs its plan in
microseconds, not after enumerating 87 billion permutations.

Anti-vertex interaction (§4.3): automorphisms are computed on the full
colored pattern (anti-edges are a second edge color), so an anti-vertex
correctly breaks symmetries among the regular vertices it discriminates,
and anti-vertices themselves can appear in orbits.  Constraints involving
anti-vertices are dropped from the returned order — anti-vertices are never
matched, and their asymmetries are already reflected in how they restrict
the regular vertices' orbits.
"""

from __future__ import annotations

from ..pattern.canonical import exists_automorphism, stabilizer_orbit
from ..pattern.pattern import Pattern

__all__ = ["break_symmetries", "conditions_hold", "orbit_partition"]


def break_symmetries(p: Pattern) -> list[tuple[int, int]]:
    """Compute partial-order constraints eliminating all automorphisms.

    Returns pairs ``(u, v)`` meaning every reported match must satisfy
    ``m(u) < m(v)`` under the data graph's (degree-based) vertex order.
    The identity is the only automorphism of ``p`` consistent with the
    returned constraints.

    Walks the stabilizer chain: for each vertex ``u`` in increasing order,
    constrain ``u`` below its orbit under the subgroup fixing ``0..u-1``,
    then descend into the stabilizer of ``u``.  A vertex the current
    stabilizer doesn't move has a singleton orbit and contributes nothing.
    """
    conditions: list[tuple[int, int]] = []
    for u in range(p.num_vertices):
        for v in stabilizer_orbit(p, u, u):
            if v != u:
                conditions.append((u, v))
    anti = set(p.anti_vertices())
    return [
        (u, v) for u, v in conditions if u not in anti and v not in anti
    ]


def conditions_hold(
    conditions: list[tuple[int, int]], mapping: dict[int, int] | list[int]
) -> bool:
    """Whether a complete vertex mapping satisfies all partial orders.

    Used by tests and by the pattern-unaware baselines' canonicality
    filter; the engine itself enforces conditions incrementally instead.
    """
    for u, v in conditions:
        if mapping[u] >= mapping[v]:
            return False
    return True


def orbit_partition(p: Pattern) -> list[list[int]]:
    """Vertex orbits under the full automorphism group.

    FSM's domain folding uses this (§5.5 interaction with symmetry
    breaking).  Orbit membership is decided by single-automorphism
    existence tests, never by materializing the group.
    """
    seen: set[int] = set()
    orbits: list[list[int]] = []
    for u in range(p.num_vertices):
        if u in seen:
            continue
        orbit = [u]
        for v in range(u + 1, p.num_vertices):
            if v not in seen and exists_automorphism(p, {u: v}):
                orbit.append(v)
        orbits.append(orbit)
        seen.update(orbit)
    return orbits
