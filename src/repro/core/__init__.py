"""Pattern-aware matching core: plans (§4) + guided engine (§5.1)."""

from .api import (
    match,
    count,
    count_many,
    match_many,
    exists,
    match_batches,
    match_batches_many,
    aggregate,
    accel_preferred,
    batch_preferred,
)
from .session import (
    ExecOptions,
    MiningSession,
    MultiPatternPlan,
    as_session,
    FUSED_MIN_GROUP,
)
from .callbacks import (
    Match,
    ExplorationControl,
    Aggregator,
    MatchCallback,
    Budget,
    BudgetMeter,
)
from .candidates import (
    bounded,
    contains,
    intersect,
    intersect_many,
    difference,
    intersect_count,
)
from .engine import EngineStats, run_tasks, default_task_order
from .matching_order import OrderedCore, compute_matching_orders
from .plan import (
    ExplorationPlan,
    NonCoreStep,
    AntiVertexCheck,
    generate_plan,
)
from .symmetry import break_symmetries, conditions_hold, orbit_partition
from .vertex_cover import minimum_connected_vertex_cover, is_connected_cover

__all__ = [
    "match",
    "count",
    "count_many",
    "match_many",
    "exists",
    "match_batches",
    "match_batches_many",
    "aggregate",
    "accel_preferred",
    "batch_preferred",
    "ExecOptions",
    "MiningSession",
    "MultiPatternPlan",
    "as_session",
    "FUSED_MIN_GROUP",
    "Match",
    "ExplorationControl",
    "Aggregator",
    "MatchCallback",
    "Budget",
    "BudgetMeter",
    "bounded",
    "contains",
    "intersect",
    "intersect_many",
    "difference",
    "intersect_count",
    "EngineStats",
    "run_tasks",
    "default_task_order",
    "OrderedCore",
    "compute_matching_orders",
    "ExplorationPlan",
    "NonCoreStep",
    "AntiVertexCheck",
    "generate_plan",
    "break_symmetries",
    "conditions_hold",
    "orbit_partition",
    "minimum_connected_vertex_cover",
    "is_connected_cover",
]
