"""Census fusion: induced multi-pattern counts off one non-induced basis.

Vertex-induced matching closes a pattern with anti-edges (Theorem 3.1)
and pays for every one of them with per-candidate difference kernels —
for a motif census that cost is multiplied across the member patterns.
But induced and non-induced counts of same-size patterns are linearly
related: every non-induced occurrence of ``P`` lives inside exactly one
induced ``k``-vertex subgraph ``Q``, and the number of times it does is a
pure pattern-level constant (the number of spanning subgraphs of ``Q``
isomorphic to ``P``).  So

    N_P  =  sum_Q  c_{P,Q} * I_Q

over the connected ``k``-vertex patterns ``Q``, where ``N`` are
non-induced (edge-induced, symmetry-broken) counts and ``I`` the induced
ones — an upper-triangular system in decreasing edge count that inverts
exactly over the integers (the classic Möbius inversion motif-counting
systems like ORCA/ESCAPE exploit).

The fused multi-pattern runner uses this as its census tier: count-only
vertex-induced members without explicit anti-constraints are rewritten
onto the shared edge-superset basis, the basis patterns are counted
*non-induced* (anti-edge-free plans: arithmetic tail counts instead of
membership kernels) through the same shared-frontier run, and the
requested induced counts demultiplex by solving the system.  Everything
here is exact integer pattern math — no data graph, no numpy — and
parity with the per-pattern reference interpreter is fuzz-enforced in
``tests/test_multipattern.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping, Sequence

from ..pattern.canonical import canonical_form, canonical_permutation
from ..pattern.pattern import Pattern

__all__ = ["CensusTransform", "census_transform", "census_eligible", "MAX_CENSUS_VERTICES"]

# The edge-superset lattice of a k-vertex pattern has at most as many
# members as there are connected k-vertex graphs; beyond 5 vertices that
# (and the subset enumeration behind the coefficients) stops being a
# fixed cost worth paying, so larger patterns take the direct path.
MAX_CENSUS_VERTICES = 5


def census_eligible(pattern: Pattern) -> bool:
    """Whether the census tier may serve this vertex-induced pattern.

    The non-induced basis rewrite assumes the anti-edges come *only*
    from the Theorem 3.1 closure: explicitly anti-constrained, labeled
    or anti-vertex patterns (and oversized ones) keep the direct path.
    """
    return (
        not pattern.is_labeled
        and pattern.num_anti_edges == 0
        and not pattern.anti_vertices()
        and 1 <= pattern.num_vertices <= MAX_CENSUS_VERTICES
    )


@dataclass(frozen=True)
class CensusTransform:
    """The basis and inversion data for one census-tier pattern group.

    ``order`` holds ``(canonical code, canonical pattern)`` pairs for the
    whole edge-superset closure of the targets, in decreasing edge count
    — the order :meth:`induced_counts` solves in.  ``coefficients`` maps
    a code to its strict-supergraph coefficients ``{supergraph code:
    c_{P,Q}}``.  ``target_codes`` aligns one canonical code with each
    input pattern, so callers demultiplex results positionally.
    """

    order: tuple[tuple[tuple, Pattern], ...]
    coefficients: Mapping[tuple, Mapping[tuple, int]]
    target_codes: tuple[tuple, ...]

    @property
    def basis(self) -> list[Pattern]:
        """The non-induced patterns to count, aligned with ``order``."""
        return [pattern for _, pattern in self.order]

    def induced_counts(
        self, noninduced: Mapping[tuple, int]
    ) -> dict[tuple, int]:
        """Solve ``N = C * I`` for the induced counts, by code.

        ``noninduced[code]`` is the edge-induced (symmetry-broken) count
        of the basis pattern with that code; the system is solved densest
        pattern first, where ``I = N`` (the complete closure has no
        strict supergraph).
        """
        induced: dict[tuple, int] = {}
        for code, _ in self.order:
            total = noninduced[code]
            for supergraph_code, c in self.coefficients[code].items():
                total -= c * induced[supergraph_code]
            induced[code] = total
        return induced


def _spanning_code(edges: tuple, num_vertices: int) -> tuple | None:
    """Canonical code of a spanning edge subset, or ``None`` if not one."""
    sub = Pattern.from_edges(edges)
    if sub.num_vertices != num_vertices or not sub.is_connected():
        return None
    return canonical_permutation(sub)[0]


def census_transform(patterns: Sequence[Pattern]) -> CensusTransform:
    """Build the census transform for ``patterns`` (all census-eligible).

    The basis is the closure of the targets under single-edge addition
    (every connected edge-supergraph on the same vertex set, up to the
    complete graph); coefficients count, per basis pair, the spanning
    subgraphs of the supergraph isomorphic to the subgraph.  Both are
    pattern-level constants, independent of any data graph — sessions
    cache the transform per requested code set.
    """
    basis: dict[tuple, Pattern] = {}
    target_codes: list[tuple] = []
    work: list[Pattern] = []
    for pattern in patterns:
        code, _ = canonical_permutation(pattern)
        target_codes.append(code)
        if code not in basis:
            canonical = canonical_form(pattern)
            basis[code] = canonical
            work.append(canonical)
    while work:
        q = work.pop()
        for u in range(q.num_vertices):
            for v in range(u + 1, q.num_vertices):
                if q.are_connected(u, v):
                    continue
                bigger = q.copy()
                bigger.add_edge(u, v)
                code, _ = canonical_permutation(bigger)
                if code not in basis:
                    canonical = canonical_form(bigger)
                    basis[code] = canonical
                    work.append(canonical)

    coefficients: dict[tuple, dict[tuple, int]] = {code: {} for code in basis}
    for qcode, q in basis.items():
        edges = tuple(q.edges())
        k = q.num_vertices
        # Strict subsets only: equal edge count forces P == Q, whose
        # (identity) coefficient the solver handles implicitly.
        for size in range(max(k - 1, 1), len(edges)):
            for subset in combinations(edges, size):
                pcode = _spanning_code(subset, k)
                if pcode is not None and pcode in coefficients:
                    row = coefficients[pcode]
                    row[qcode] = row.get(qcode, 0) + 1

    order = tuple(
        sorted(basis.items(), key=lambda item: -item[1].num_edges)
    )
    return CensusTransform(
        order=order,
        coefficients=coefficients,
        target_codes=tuple(target_codes),
    )
