"""Match objects, exploration control and aggregation plumbing (§5.3, §5.4).

User callbacks receive :class:`Match` instances and may:

* aggregate values keyed by pattern via :class:`Aggregator` (the paper's
  ``mapPattern``);
* request early termination via :class:`ExplorationControl.stop` (the
  paper's ``stopExploration``), which all matching threads observe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import BudgetExceededError, PartialResult
from ..pattern.pattern import Pattern

__all__ = [
    "Match",
    "ExplorationControl",
    "Aggregator",
    "MatchCallback",
    "Budget",
    "BudgetMeter",
]


class Match:
    """One complete match: a mapping from pattern vertices to data vertices.

    ``mapping[u]`` is the data vertex matched to regular pattern vertex
    ``u``; anti-vertices have no image and map to ``-1``.
    """

    __slots__ = ("pattern", "mapping")

    def __init__(self, pattern: Pattern, mapping: tuple[int, ...]):
        self.pattern = pattern
        self.mapping = mapping

    def __getitem__(self, u: int) -> int:
        return self.mapping[u]

    def vertices(self) -> list[int]:
        """Matched data vertices (excluding anti-vertex placeholders)."""
        return [v for v in self.mapping if v >= 0]

    def as_dict(self) -> dict[int, int]:
        """Pattern-vertex -> data-vertex mapping, without anti-vertices."""
        return {u: v for u, v in enumerate(self.mapping) if v >= 0}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Match({self.as_dict()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.mapping == other.mapping and self.pattern == other.pattern

    def __hash__(self) -> int:
        return hash(self.mapping)


MatchCallback = Callable[[Match], None]


class ExplorationControl:
    """Cooperative early-termination token shared by all matching tasks.

    A callback (or any observer) calls :meth:`stop`; tasks poll
    :attr:`stopped` between units of work and wind down, returning the
    values aggregated so far (§5.3).
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def stop(self) -> None:
        """Request that all exploration stop as soon as possible."""
        self._event.set()

    @property
    def stopped(self) -> bool:
        """Whether termination has been requested."""
        return self._event.is_set()

    def reset(self) -> None:
        """Re-arm the control for a fresh exploration."""
        self._event.clear()


@dataclass(frozen=True)
class Budget:
    """Declarative work budget for one query (all limits optional).

    A budget is a frozen spec; each run arms it into a private
    :class:`BudgetMeter` (so a session-default deadline restarts per
    call).  Engines poll the meter cooperatively — once per frontier
    chunk in the batched engines, once per start task in the per-match
    engines — so an armed deadline costs one ``perf_counter`` comparison
    per chunk and a disarmed budget costs one ``is None`` check.

    Limits are *cooperative*: a run stops at the first poll after a
    limit trips, so counts may overshoot by up to one chunk.  For an
    exact match cap use
    :func:`repro.runtime.termination.stop_after_n_matches`.
    """

    deadline: float | None = None
    max_matches: int | None = None
    max_frontier_rows: int | None = None
    max_expanded_partials: int | None = None

    def __post_init__(self):
        for name in (
            "deadline",
            "max_matches",
            "max_frontier_rows",
            "max_expanded_partials",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"Budget.{name} must be positive, got {value!r}")

    def meter(self) -> "BudgetMeter":
        """Arm this budget for one run (starts the deadline clock)."""
        return BudgetMeter(self)


class BudgetMeter:
    """Mutable per-run state for an armed :class:`Budget`.

    One meter spans one logical query — a fused multi-pattern walk
    shares a single meter across all member engines, so the deadline and
    row caps bound the whole call, not each member.
    """

    __slots__ = (
        "budget",
        "deadline_at",
        "frontier_rows",
        "expanded_partials",
        "levels_completed",
    )

    def __init__(self, budget: Budget):
        self.budget = budget
        self.deadline_at = (
            None
            if budget.deadline is None
            else time.perf_counter() + budget.deadline
        )
        self.frontier_rows = 0
        self.expanded_partials = 0
        self.levels_completed = 0

    def charge_rows(self, n: int) -> None:
        """Account ``n`` level-0 frontier rows entering exploration."""
        self.frontier_rows += n

    def charge_partials(self, n: int) -> None:
        """Account ``n`` expanded partial matches (frontier block rows)."""
        self.expanded_partials += n

    def exhausted_reason(self) -> str | None:
        """The first tripped limit among the non-match limits, if any."""
        b = self.budget
        if self.deadline_at is not None and time.perf_counter() >= self.deadline_at:
            return f"deadline of {b.deadline}s elapsed"
        if (
            b.max_frontier_rows is not None
            and self.frontier_rows >= b.max_frontier_rows
        ):
            return (
                f"frontier rows {self.frontier_rows} >= cap {b.max_frontier_rows}"
            )
        if (
            b.max_expanded_partials is not None
            and self.expanded_partials >= b.max_expanded_partials
        ):
            return (
                f"expanded partials {self.expanded_partials}"
                f" >= cap {b.max_expanded_partials}"
            )
        return None

    def check(self, matches: int) -> None:
        """Poll every limit; raise with the partial-so-far on a trip."""
        b = self.budget
        reason = None
        if b.max_matches is not None and matches >= b.max_matches:
            reason = f"matches {matches} >= cap {b.max_matches}"
        else:
            reason = self.exhausted_reason()
        if reason is not None:
            raise BudgetExceededError(
                f"budget exceeded: {reason}",
                PartialResult(
                    matches,
                    levels_completed=self.levels_completed,
                    truncated=True,
                    reason=reason,
                ),
            )


class Aggregator:
    """Pattern-keyed aggregation map (the paper's ``mapPattern`` target).

    Values are combined with a user-supplied binary ``combine`` function
    (default: addition).  Thread-safety comes from a lock; the concurrent
    runtime instead gives each worker a local ``Aggregator`` and merges
    them on-the-fly (§5.4), keeping the hot path lock-free.
    """

    __slots__ = ("_values", "_combine", "_lock")

    def __init__(self, combine: Callable[[Any, Any], Any] | None = None):
        self._values: dict[Any, Any] = {}
        self._combine = combine if combine is not None else lambda a, b: a + b
        self._lock = threading.Lock()

    def map_pattern(self, key: Any, value: Any) -> None:
        """Fold ``value`` into the aggregate for ``key``."""
        with self._lock:
            if key in self._values:
                self._values[key] = self._combine(self._values[key], value)
            else:
                self._values[key] = value

    def get(self, key: Any, default: Any = None) -> Any:
        """Current aggregate for ``key``."""
        with self._lock:
            return self._values.get(key, default)

    def keys(self) -> list[Any]:
        """Snapshot of aggregation keys."""
        with self._lock:
            return list(self._values.keys())

    def result(self) -> dict[Any, Any]:
        """Snapshot of the full aggregation map."""
        with self._lock:
            return dict(self._values)

    def merge_from(self, other: "Aggregator") -> None:
        """Fold another aggregator's values into this one and clear it.

        This is the value swap the asynchronous aggregator thread performs
        against each worker's local aggregator.
        """
        with other._lock:
            drained = other._values
            other._values = {}
        with self._lock:
            for key, value in drained.items():
                if key in self._values:
                    self._values[key] = self._combine(self._values[key], value)
                else:
                    self._values[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)
