"""Exploration-plan generation (Figure 5): ``generatePlan(p)``.

The plan is computed once per pattern, from the pattern alone — no data
graph involved — and drives the whole exploration:

1. :func:`~repro.core.symmetry.break_symmetries` produces the partial
   order that removes automorphic duplicates;
2. :func:`~repro.core.vertex_cover.minimum_connected_vertex_cover` yields
   the core pC;
3. :func:`~repro.core.matching_order.compute_matching_orders` linearizes
   the core into deduplicated matching orders;
4. non-core regular vertices get a completion order plus precomputed
   neighbor / anti-neighbor / bound lists;
5. anti-vertex constraints are collected for post-hoc verification.

Vertex-induced matching applies Theorem 3.1 first: complete the pattern
with anti-edges between non-adjacent vertex pairs and match edge-induced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanError
from ..pattern.pattern import Pattern
from .matching_order import OrderedCore, compute_matching_orders
from .symmetry import break_symmetries
from .vertex_cover import minimum_connected_vertex_cover

__all__ = ["NonCoreStep", "AntiVertexCheck", "ExplorationPlan", "generate_plan"]


@dataclass(frozen=True)
class NonCoreStep:
    """Completion step for one non-core regular vertex (§4.1 completeMatch).

    All regular neighbors of a non-core vertex lie in the core (the cover
    covers every edge), so ``neighbors`` is always a subset of the core.
    """

    vertex: int
    neighbors: tuple[int, ...]  # pattern vertices whose adj lists intersect
    anti_neighbors: tuple[int, ...]  # matched-before anti-adjacent vertices
    lower_bounds: tuple[int, ...]  # matched-before w with m(w) < m(vertex)
    upper_bounds: tuple[int, ...]  # matched-before w with m(vertex) < m(w)
    label: int | None


@dataclass(frozen=True)
class AntiVertexCheck:
    """Deferred constraint of one anti-vertex (§4.3).

    A complete match is valid iff the data vertices matched to
    ``neighbors`` have **no** common neighbor outside the match itself.
    """

    anti_vertex: int
    neighbors: tuple[int, ...]


@dataclass(frozen=True)
class ExplorationPlan:
    """Everything the engine needs to find a pattern's matches exactly once."""

    pattern: Pattern  # the pattern as the user supplied it
    matched_pattern: Pattern  # after vertex-induced closure (Theorem 3.1)
    edge_induced: bool
    symmetry_breaking: bool
    partial_orders: tuple[tuple[int, int], ...]
    core: tuple[int, ...]
    ordered_cores: tuple[OrderedCore, ...]
    noncore_steps: tuple[NonCoreStep, ...]
    anti_vertex_checks: tuple[AntiVertexCheck, ...]
    num_regular: int = field(default=0)

    @property
    def has_anti_edges(self) -> bool:
        return self.matched_pattern.num_anti_edges > 0

    def pinned_start_labels(self) -> set[int] | None:
        """Labels a start vertex must carry, or ``None`` if unrestricted.

        Every task's start vertex fills some ordered core's *top*
        position; when all cores pin that position to a label, only
        vertices carrying one of those labels can seed a match (the
        G-Miner label-index pruning, §6.4).  A wildcard top position on
        any core means no restriction.  Both the api's start filtering
        and the runtimes' frontier construction derive from this single
        rule.
        """
        top_labels = {oc.labels[oc.size - 1] for oc in self.ordered_cores}
        if not top_labels or None in top_labels:
            return None
        return top_labels

    def features(self) -> dict[str, bool]:
        """Which pattern features this plan exercises.

        Used by benchmarks and docs to report engine-dispatch behavior;
        every combination is served by both the reference and the
        accelerated engine.
        """
        return {
            "labeled": self.matched_pattern.is_labeled,
            "vertex_induced": not self.edge_induced,
            "anti_edges": self.has_anti_edges,
            "anti_vertices": bool(self.anti_vertex_checks),
        }

    def describe(self) -> str:
        """Human-readable plan summary (for docs, examples, debugging)."""
        lines = [
            f"pattern: {self.matched_pattern!r}",
            f"mode: {'edge' if self.edge_induced else 'vertex'}-induced",
            f"partial orders: {list(self.partial_orders)}",
            f"core: {list(self.core)}",
            f"matching orders: {len(self.ordered_cores)}",
        ]
        for i, oc in enumerate(self.ordered_cores):
            lines.append(
                f"  [{i}] edges={list(oc.edges)} anti={list(oc.anti_edges)}"
                f" sequences={[list(s) for s in oc.sequences]}"
            )
        lines.append(
            "non-core completion: "
            + " -> ".join(str(s.vertex) for s in self.noncore_steps)
        )
        if self.anti_vertex_checks:
            lines.append(
                "anti-vertex checks: "
                + ", ".join(
                    f"{c.anti_vertex}~{list(c.neighbors)}"
                    for c in self.anti_vertex_checks
                )
            )
        return "\n".join(lines)


def generate_plan(
    pattern: Pattern,
    edge_induced: bool = True,
    symmetry_breaking: bool = True,
) -> ExplorationPlan:
    """Analyze a pattern and emit its exploration plan (Figure 5).

    Parameters
    ----------
    pattern: the pattern to match; must be connected.
    edge_induced: when false, vertex-induced matching is requested and the
        pattern is closed with anti-edges per Theorem 3.1 before planning.
    symmetry_breaking: when false, no partial orders are emitted and the
        engine enumerates *all* automorphic matches — this is PRG-U, the
        pattern-unaware ablation of Figure 10.
    """
    if pattern.num_vertices == 0:
        raise PlanError("cannot plan an empty pattern")
    if not pattern.is_connected():
        raise PlanError("pattern must be connected")

    matched = pattern if edge_induced else pattern.vertex_induced_closure()

    partial_orders = (
        tuple(break_symmetries(matched)) if symmetry_breaking else ()
    )
    core = tuple(minimum_connected_vertex_cover(matched))
    ordered_cores = tuple(
        compute_matching_orders(matched, list(core), list(partial_orders))
    )

    core_set = set(core)
    regular = matched.regular_vertices()
    noncore = [u for u in regular if u not in core_set]
    # Most-constrained-first completion: more core neighbors means smaller
    # candidate intersections earlier, pruning the rest of the completion.
    noncore.sort(key=lambda u: (-matched.degree(u), u))

    steps: list[NonCoreStep] = []
    matched_before: set[int] = set(core)
    anti_vertex_set = set(matched.anti_vertices())
    for u in noncore:
        neighbors = tuple(sorted(matched.neighbors(u)))
        if any(v not in core_set for v in neighbors):
            raise PlanError(
                f"non-core vertex {u} has a neighbor outside the core; "
                "invalid vertex cover"
            )
        anti_nbrs = tuple(
            sorted(
                v
                for v in matched.anti_neighbors(u)
                if v in matched_before and v not in anti_vertex_set
            )
        )
        lower = tuple(
            sorted(w for w, x in partial_orders if x == u and w in matched_before)
        )
        upper = tuple(
            sorted(x for w, x in partial_orders if w == u and x in matched_before)
        )
        steps.append(
            NonCoreStep(
                vertex=u,
                neighbors=neighbors,
                anti_neighbors=anti_nbrs,
                lower_bounds=lower,
                upper_bounds=upper,
                label=matched.label_of(u),
            )
        )
        matched_before.add(u)

    checks = tuple(
        AntiVertexCheck(
            anti_vertex=a, neighbors=tuple(sorted(matched.anti_neighbors(a)))
        )
        for a in sorted(anti_vertex_set)
    )

    return ExplorationPlan(
        pattern=pattern,
        matched_pattern=matched,
        edge_induced=edge_induced,
        symmetry_breaking=symmetry_breaking,
        partial_orders=partial_orders,
        core=core,
        ordered_cores=ordered_cores,
        noncore_steps=tuple(steps),
        anti_vertex_checks=checks,
        num_regular=len(regular),
    )
