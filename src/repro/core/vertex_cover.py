"""Minimum connected vertex cover — the pattern core pC (§4.1, §4.2).

The core of a pattern is the subgraph induced by its minimum connected
vertex cover.  Once the core is matched, every remaining (non-core) vertex
has *all* of its regular neighbors inside the core — the non-core vertices
form an independent set — so completing a match is pure adjacency-list
intersection, no traversal.

Anti-edge handling (§4.2): an anti-edge between two regular vertices must
have at least one endpoint in the cover, so that when the other endpoint is
matched the set difference ``adj(u) \\ adj(v)`` has a materialized operand.
Anti-vertices never join the core and their anti-edges need no coverage
(§4.3): their constraint is checked after all regular vertices are matched.

Patterns are tiny, so exact search over vertex subsets in increasing size
order is the right tool.
"""

from __future__ import annotations

from itertools import combinations

from ..errors import PlanError
from ..pattern.pattern import Pattern

__all__ = ["minimum_connected_vertex_cover", "is_connected_cover"]


def is_connected_cover(p: Pattern, cover: set[int]) -> bool:
    """Whether ``cover`` covers all regular edges + regular anti-edges and
    is connected in the subgraph of ``p`` it induces (via regular edges)."""
    for u, v in p.edges():
        if u not in cover and v not in cover:
            return False
    anti_vertices = set(p.anti_vertices())
    for u, v in p.anti_edges():
        if u in anti_vertices or v in anti_vertices:
            continue  # anti-vertex constraints are checked post-hoc
        if u not in cover and v not in cover:
            return False
    return _induced_connected(p, cover)


def _induced_connected(p: Pattern, vertices: set[int]) -> bool:
    if not vertices:
        return False
    start = next(iter(vertices))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in p.neighbors(u):
            if v in vertices and v not in seen:
                seen.add(v)
                stack.append(v)
    return seen == vertices


def minimum_connected_vertex_cover(p: Pattern) -> list[int]:
    """Smallest connected vertex cover of the pattern's regular part.

    Candidates are drawn from regular vertices only.  Among equal-size
    covers the lexicographically smallest is returned, making plans
    deterministic.  For the degenerate single-vertex pattern the cover is
    that vertex.
    """
    regular = p.regular_vertices()
    if not regular:
        raise PlanError("pattern has no regular vertices")
    if not p.is_connected():
        raise PlanError("pattern must be connected to be matched")
    if p.num_edges == 0:
        # Single regular vertex (size-1 motif): the core is that vertex.
        return [regular[0]]
    for size in range(1, len(regular) + 1):
        for subset in combinations(regular, size):
            cover = set(subset)
            if is_connected_cover(p, cover):
                return sorted(cover)
    raise PlanError("no connected vertex cover found (disconnected pattern?)")
