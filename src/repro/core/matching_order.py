"""Matching orders: totally ordered views of the pattern core (§4.1).

A matching order is a copy of the core pC whose vertices are renamed to
their position in a vertex sequence consistent with the symmetry-breaking
partial order.  Matching a matching order means assigning data vertices to
positions *in strictly increasing data-id order*; because any set of data
vertices has exactly one increasing arrangement, every core match is found
exactly once across all matching orders, with zero canonicality checks:

* each core match, sorted by data id, induces a unique linear extension of
  the partial order -> exactly one sequence finds it;
* sequences whose remapped (ordered) cores coincide are grouped: the
  ordered core is matched once and the data vertices are remapped back
  through *each* sequence in the group, yielding one core match per
  sequence ("we discard duplicate matching orders ... a match for pMi is
  converted to a single match for pC per valid vertex sequence").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..pattern.pattern import Pattern

__all__ = ["OrderedCore", "compute_matching_orders"]


@dataclass(frozen=True)
class OrderedCore:
    """One deduplicated matching order (an ordered view of the core).

    Positions are ``0 .. k-1``; position ``i`` must be assigned a data
    vertex with a *smaller* id than position ``i + 1``'s.

    Attributes
    ----------
    size: number of core positions.
    edges: position pairs (i, j), i < j, connected by a regular edge.
    anti_edges: position pairs constrained to be non-adjacent.
    labels: per-position label constraint (None = wildcard).
    sequences: the vertex sequences collapsing to this ordered core;
        ``sequence[i]`` is the pattern vertex at position ``i``.  Each
        complete position assignment is remapped through every sequence.
    """

    size: int
    edges: tuple[tuple[int, int], ...]
    anti_edges: tuple[tuple[int, int], ...]
    labels: tuple[int | None, ...]
    sequences: tuple[tuple[int, ...], ...] = field(compare=False)

    def earlier_neighbors(self, i: int) -> list[int]:
        """Positions j < i adjacent to position i."""
        return [a for a, b in self.edges if b == i]

    def later_neighbors(self, i: int) -> list[int]:
        """Positions j > i adjacent to position i (high-to-low traversal)."""
        return [b for a, b in self.edges if a == i]


def _linear_extensions(
    vertices: list[int], constraints: list[tuple[int, int]]
) -> Iterator[tuple[int, ...]]:
    """Yield every linear extension of ``constraints`` over ``vertices``.

    Standard topological backtracking: at each step branch on the vertices
    all of whose predecessors are already placed.  Output cost is
    proportional to the number of extensions, not to ``|vertices|!``.
    """
    preds: dict[int, set[int]] = {u: set() for u in vertices}
    for u, v in constraints:
        preds[v].add(u)
    placed: set[int] = set()
    seq: list[int] = []
    remaining = sorted(vertices)

    def backtrack() -> Iterator[tuple[int, ...]]:
        if not remaining:
            yield tuple(seq)
            return
        for u in list(remaining):
            if preds[u] <= placed:
                remaining.remove(u)
                placed.add(u)
                seq.append(u)
                yield from backtrack()
                seq.pop()
                placed.discard(u)
                remaining.append(u)
                remaining.sort()

    yield from backtrack()


def compute_matching_orders(
    p: Pattern,
    core: list[int],
    partial_orders: list[tuple[int, int]],
) -> list[OrderedCore]:
    """Enumerate matching orders for the core under the partial order.

    Enumerates exactly the linear extensions of the partial order
    restricted to the core (by backtracking over currently-minimal
    vertices — never all permutations: a fully-ordered 13-vertex clique
    core has one extension, not 13!), remaps the core onto positions, and
    groups sequences with identical ordered structure.
    """
    core_set = set(core)
    relevant = [
        (u, v) for u, v in partial_orders if u in core_set and v in core_set
    ]
    groups: dict[tuple, list[tuple[int, ...]]] = {}
    for seq in _linear_extensions(core, relevant):
        pos = {u: i for i, u in enumerate(seq)}
        edges = tuple(
            sorted(
                tuple(sorted((pos[u], pos[v])))
                for u, v in p.edges()
                if u in core_set and v in core_set
            )
        )
        anti = tuple(
            sorted(
                tuple(sorted((pos[u], pos[v])))
                for u, v in p.anti_edges()
                if u in core_set and v in core_set
            )
        )
        labels = tuple(p.label_of(u) for u in seq)
        key = (edges, anti, labels)
        groups.setdefault(key, []).append(tuple(seq))
    ordered_cores = [
        OrderedCore(
            size=len(core),
            edges=key[0],
            anti_edges=key[1],
            labels=key[2],
            sequences=tuple(seqs),
        )
        for key, seqs in groups.items()
    ]
    # Deterministic plan output: sort by structural key (label wildcards
    # sort as -1 so mixed labeled/unlabeled cores compare cleanly).
    ordered_cores.sort(
        key=lambda oc: (
            oc.edges,
            oc.anti_edges,
            tuple(-1 if lab is None else lab for lab in oc.labels),
        )
    )
    return ordered_cores
