"""Session-centric query surface: pinned graph state, one options path.

Peregrine's headline contribution is a *declarative, pattern-aware API*
(§3, Fig 4): programs are written against ``match``/``count`` verbs and
aggregators while the system owns planning and execution.  A
:class:`MiningSession` is that API with the per-graph state made
explicit: it pins one :class:`~repro.graph.graph.DataGraph` and amortizes
everything derivable from it across queries —

* the degree-ordered copy and its id translation (§5.2), computed once;
* the numpy CSR :class:`~repro.core.accel.AcceleratedGraphView`, built
  lazily on the first vectorized run and shared by every later one;
* exploration plans (§4), cached per ``(pattern, edge_induced,
  symmetry_breaking)`` — motif censuses, FSM rounds and repeated service
  queries re-plan nothing;
* label-filtered start-vertex lists (the G-Miner §6.4 pruning), cached
  per plan.

Execution knobs live in one frozen :class:`ExecOptions` value with a
single resolution path: session defaults, overridden per call.  The
session exposes the full verb set — :meth:`MiningSession.match`,
:meth:`~MiningSession.count`, :meth:`~MiningSession.count_many`,
:meth:`~MiningSession.match_many`,
:meth:`~MiningSession.match_batches_many`,
:meth:`~MiningSession.exists`, :meth:`~MiningSession.match_batches` and
:meth:`~MiningSession.aggregate` (the paper's map/reduce aggregator
idiom, §5.4).  Multi-pattern verbs fuse compatible patterns
(:class:`MultiPatternPlan` grouping) onto one shared frontier walk
through :func:`repro.core.accel.fused_run`, with count-only
vertex-induced censuses demultiplexed off the shared non-induced basis
(:mod:`repro.core.multipattern`).  The module-level functions in
:mod:`repro.core.api` are
one-shot shims over the per-graph shared session
(:meth:`MiningSession.for_graph`), so legacy programs transparently get
the same caches.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence, Union

from ..errors import BudgetExceededError, MatchingError, PartialResult
from ..graph.graph import DataGraph
from ..pattern.pattern import Pattern
from .callbacks import Aggregator, Budget, ExplorationControl, Match
from .engine import EngineStats, run_tasks
from .multipattern import CensusTransform, census_eligible, census_transform
from .plan import ExplorationPlan, generate_plan

try:  # numpy is an optional accelerator, not a hard dependency
    from . import accel as _accel
except ImportError:  # pragma: no cover - exercised only without numpy
    _accel = None

__all__ = [
    "ExecOptions",
    "MiningSession",
    "MultiPatternPlan",
    "as_session",
    "accel_preferred",
    "batch_preferred",
    "group_start_vertices",
    "ACCEL_MIN_AVG_DEGREE",
    "ACCEL_BATCH_MIN_AVG_DEGREE",
    "FUSED_MIN_GROUP",
]

_ENGINE_CHOICES = ("auto", "accel", "accel-batch", "reference")

# Guardrail knob values (see ExecOptions.on_budget / ExecOptions.guard).
_ON_BUDGET_CHOICES = ("raise", "partial")
_GUARD_CHOICES = ("off", "refuse", "downgrade")

# Dispatch-policy knob values (see ExecOptions.planner): "fixed" keeps
# the global thresholds, "auto" plans per query from the probe walk.
_PLANNER_CHOICES = ("fixed", "auto")

# What a session accepts as its graph: the graph itself, an opened .rgx
# GraphStore, or a filesystem path routed through open_graph.
GraphSource = Union[DataGraph, str, os.PathLike, "GraphStore"]


def _coerce_graph(source) -> DataGraph:
    """Resolve a session graph source to a :class:`DataGraph`.

    Accepts a graph directly, a filesystem path (``str``/``os.PathLike``
    — ``.rgx`` stores open zero-copy via
    :func:`~repro.graph.binary_io.open_graph`), or an already-opened
    :class:`~repro.graph.binary_io.GraphStore`.  Imports lazily so the
    numpy-free reference tier keeps working with in-memory graphs.
    """
    if isinstance(source, DataGraph):
        return source
    if isinstance(source, (str, os.PathLike)):
        from ..graph.binary_io import open_graph

        return open_graph(source)
    from ..graph.binary_io import GraphStore

    if isinstance(source, GraphStore):
        return source.graph()
    raise TypeError(
        "expected DataGraph, GraphStore or a graph path, got "
        f"{type(source).__name__}"
    )

# Engine choices for the multi-pattern verbs: everything a single-pattern
# run accepts, plus "fused" to force the fused multi-pattern runner
# (ablations; "auto" fuses whenever the run qualifies).
_MULTI_ENGINE_CHOICES = ("fused",) + _ENGINE_CHOICES

# Smallest fusable group worth routing through the fused runner under
# engine="auto": a single-member group shares nothing, so it runs through
# the ordinary per-pattern dispatch.  engine="fused" ignores the floor.
FUSED_MIN_GROUP = 2

# Measured crossover of the *per-match* vectorized engine
# (bench_ablations.py::test_engine_dispatch): below this average degree
# the reference interpreter's bisect/slice loops beat numpy's per-call
# overhead; above it the per-candidate vectorized kernels win.
ACCEL_MIN_AVG_DEGREE = 128.0

# Measured crossover of the *frontier-batched* engine
# (bench_engine_frontier.py, BENCH_engine.json): batching whole match
# levels amortizes numpy dispatch across thousands of partials, so the
# batched engine already wins at avg degree ~2 on graphs of a few
# hundred vertices (6-12x over the interpreter at degree 2-8, measured).
# Only near-forest graphs below this line stay on the interpreter.
ACCEL_BATCH_MIN_AVG_DEGREE = 2.0


def accel_preferred(ordered: DataGraph, plan: ExplorationPlan) -> bool:
    """Whether the *per-match* vectorized engine is expected to win.

    The historic ``engine="auto"`` heuristic, kept for the
    ``engine="accel"`` ablation tier: dense adjacency arrays amortize
    numpy call overhead, and a multi-vertex core means real intersection
    work; sparse graphs and single-vertex-core (tail-count dominated)
    patterns lose to the reference interpreter here.
    """
    return (
        ordered.avg_degree() >= ACCEL_MIN_AVG_DEGREE and len(plan.core) >= 2
    )


def batch_preferred(ordered: DataGraph, plan: ExplorationPlan) -> bool:
    """Whether the frontier-batched engine is expected to win this run.

    Frontier batching amortizes per-dispatch overhead across every live
    partial match of a level, and its tail count is per-row arithmetic,
    so neither the density floor nor the core-size exclusion of
    :func:`accel_preferred` applies — only near-forest graphs (average
    degree below :data:`ACCEL_BATCH_MIN_AVG_DEGREE`) stay on the
    interpreter.
    """
    return ordered.avg_degree() >= ACCEL_BATCH_MIN_AVG_DEGREE


def _dispatch_engine(
    engine: str,
    control: ExplorationControl | None,
    stats: EngineStats | None,
    timer,
    ordered: DataGraph,
    plan: ExplorationPlan,
) -> str:
    """Resolve the engine choice to ``reference``/``accel``/``accel-batch``.

    ``stats`` and ``timer`` are reference-engine instruments, so they pin
    the interpreter.  An :class:`ExplorationControl` no longer excludes
    anything: the frontier-batched engine polls it between frontier
    blocks and per emitted match, and the per-match ``accel`` engine
    polls it per start task and per core match, so early-terminating
    runs (``exists``, capped enumerations, deadlines) dispatch exactly
    like uncontrolled ones.
    """
    if engine not in _ENGINE_CHOICES:
        raise ValueError(f"engine must be one of {_ENGINE_CHOICES}, got {engine!r}")
    if engine == "reference":
        return "reference"
    hooks_free = _accel is not None and stats is None and timer is None
    if engine == "accel-batch":
        if not hooks_free:
            raise MatchingError(
                "engine='accel-batch' requires numpy and no stats/timer "
                "hooks; use engine='auto' to fall back to the reference engine"
            )
        return "accel-batch"
    if engine == "accel":
        if not hooks_free:
            raise MatchingError(
                "engine='accel' requires numpy and no stats/timer "
                "hooks; use engine='auto' to fall back to the reference engine"
            )
        return "accel"
    if not hooks_free:
        return "reference"
    if batch_preferred(ordered, plan):
        return "accel-batch"
    if accel_preferred(ordered, plan):
        return "accel"
    return "reference"


def _starts_with_labels(ordered: DataGraph, labels) -> list[int]:
    """Union of the labels' vertices, descending (hub-first issue order).

    The one start-ordering rule shared by per-plan label filtering and
    the fused runner's group frontiers — both must walk the same
    hub-first order for fused and standalone runs to stay identical.
    """
    starts: set[int] = set()
    for label in labels:
        starts.update(ordered.vertices_with_label(label))
    return sorted(starts, reverse=True)


def _label_filtered_starts(ordered: DataGraph, plan: ExplorationPlan):
    """Start vertices restricted by the matching orders' top-position labels.

    The G-Miner observation (§6.4): indexing vertices by label prunes
    whole tasks when the pattern is labeled.  Every task's start vertex
    must match some ordered core's *top* position; when all cores pin
    that position to a label, only the union of those labels' vertices
    can seed a match.  Returns ``None`` (no restriction) when any core's
    top position is a wildcard or the graph is unlabeled.
    """
    if ordered.labels() is None:
        return None
    top_labels = plan.pinned_start_labels()
    if top_labels is None:
        return None
    return _starts_with_labels(ordered, top_labels)


def group_start_vertices(ordered: DataGraph, key: frozenset | None):
    """The fused level-0 frontier for one :class:`MultiPatternPlan` group.

    ``None`` (unrestricted) means "seed from every vertex, hub-first" —
    callers pass ``None`` through to the runner; a label-set key
    restricts to its vertices in the same hub-first order, exactly what
    each member's own :func:`_label_filtered_starts` would produce.
    Shared with the process runtime
    (:func:`repro.runtime.parallel.process_count_many`), which chunks
    this frontier across workers.
    """
    if key is None:
        return None
    return _starts_with_labels(ordered, key)


@dataclass(frozen=True)
class MultiPatternPlan:
    """A multi-pattern workload grouped for fused frontier execution.

    ``plans`` holds every member's exploration plan in reference order
    (the order the patterns were supplied in — results always demultiplex
    back to it).  Members are *compatible* when they share a level-0
    frontier: the grouping key is the plan's pinned-start-label set
    (:meth:`~repro.core.plan.ExplorationPlan.pinned_start_labels`), or
    ``None`` when starts are unrestricted — so unlabeled censuses and FSM
    structural rounds collapse into one group, while label-pinned
    patterns group per distinct label set.  ``groups`` lists the fusable
    groups (member indices, each at least ``min_group`` strong) and
    ``singles`` the left-over indices that run through the ordinary
    per-pattern dispatch.
    """

    plans: tuple[ExplorationPlan, ...]
    groups: tuple[tuple[int, ...], ...]
    group_keys: tuple[frozenset | None, ...]
    singles: tuple[int, ...]

    @classmethod
    def build(
        cls,
        plans: Sequence[ExplorationPlan],
        label_index: bool = True,
        min_group: int = FUSED_MIN_GROUP,
    ) -> "MultiPatternPlan":
        """Group ``plans`` by shared frontier signature.

        With ``label_index`` disabled every member seeds from the full
        vertex set, so all plans share the unrestricted frontier and
        collapse into one group regardless of label pins.
        """
        by_key: dict[frozenset | None, list[int]] = {}
        for idx, plan in enumerate(plans):
            pinned = plan.pinned_start_labels() if label_index else None
            key = frozenset(pinned) if pinned is not None else None
            by_key.setdefault(key, []).append(idx)
        groups: list[tuple[int, ...]] = []
        group_keys: list[frozenset | None] = []
        singles: list[int] = []
        for key, indices in by_key.items():
            if len(indices) >= max(1, min_group):
                groups.append(tuple(indices))
                group_keys.append(key)
            else:
                singles.extend(indices)
        return cls(
            plans=tuple(plans),
            groups=tuple(groups),
            group_keys=tuple(group_keys),
            singles=tuple(sorted(singles)),
        )


@dataclass(frozen=True)
class ExecOptions:
    """Every execution knob of a matching run, in one frozen value.

    A session holds one ``ExecOptions`` as its defaults; every verb
    accepts the same field names as keyword overrides and resolves them
    through :meth:`merged` — the single resolution path.  The fields are
    exactly the knobs the legacy per-function surface scattered across
    ``match``/``count``/``match_batches``/the runtimes:

    ``edge_induced`` / ``symmetry_breaking``
        matching semantics (Theorem 3.1; PRG-U ablation).
    ``engine`` / ``frontier_chunk``
        engine dispatch (see :func:`_dispatch_engine`) and the batched
        engine's per-dispatch frontier cap.
    ``label_index``
        label-filtered start pruning (§6.4); disable for ablations.
    ``flush_size``
        row-buffer size when ``match_batches`` falls back to a
        per-match engine.
    ``start_vertices``
        explicit task seeds (runtime partitioning); per-call only.
    ``control`` / ``stats`` / ``timer``
        early termination (§5.3) and profiling hooks (Fig 1 / Fig 11).
    ``plan``
        a precomputed :class:`~repro.core.plan.ExplorationPlan`,
        bypassing the session plan cache; per-call only.  The strings
        ``"auto"``/``"fixed"`` are accepted as a spelling of
        ``planner`` (below) and resolve to it in :meth:`merged`.
    ``planner``
        dispatch policy: ``"fixed"`` (default) keeps the historical
        global thresholds; ``"auto"`` runs the bounded probe walk once
        per (pattern, flags) and lets
        :func:`repro.runtime.planner.plan_query` choose engine,
        schedule, frontier chunk and worker count from the measured
        per-pattern signals.  The probe is shared with the admission
        guard, so ``guard != "off"`` plus ``planner="auto"`` still
        probes exactly once.
    ``schedule`` / ``chunk_hint``
        concurrent-runtime work placement (§5.2, §5.5):
        ``schedule="dynamic"`` (default) has workers pull
        degree-weighted frontier chunks from a shared cursor until the
        queue drains (work stealing — stragglers on skewed graphs are
        absorbed by whoever is free), ``"static"`` pre-assigns each
        worker a stride slice of the frontier (the ablation baseline).
        ``chunk_hint`` sets the target tasks-per-chunk on a uniform
        frontier (weight-normalized on skewed ones); ``None`` sizes
        chunks automatically.  Single-worker runs ignore both.
    ``budget`` / ``on_budget``
        execution guardrails: ``budget`` is a frozen
        :class:`~repro.core.callbacks.Budget` (wall-clock deadline,
        match / frontier-row / expanded-partial caps), armed per run and
        polled cooperatively between frontier chunks by every engine.
        Exhaustion raises :class:`~repro.errors.BudgetExceededError`
        carrying the partial count so far, or — with
        ``on_budget="partial"`` — returns that
        :class:`~repro.errors.PartialResult` (an ``int`` subclass with
        ``truncated=True``) instead of raising.
    ``guard``
        admission control: ``"refuse"`` probes the query's level-0
        frontier up front (:func:`repro.runtime.guards.estimate_cost`)
        and raises :class:`~repro.errors.QueryRefusedError` when the
        predicted expansion is explosive; ``"downgrade"`` instead
        tightens ``frontier_chunk`` (and the process runtimes cap
        workers); ``"off"`` (default) skips the probe entirely.  Under
        ``"downgrade"``, count-only queries predicted *far* past the
        explosive threshold additionally escalate to the approximate
        tier (see :data:`repro.runtime.guards.DOWNGRADE_APPROX_FACTOR`).
    ``approx`` / ``confidence`` / ``max_samples``
        the approximate-counting tier (ROADMAP item 4):
        ``approx=rel_err`` makes :meth:`~MiningSession.count` /
        :meth:`~MiningSession.count_many` return
        :class:`~repro.mining.sampling.ApproxCount` estimates instead of
        exact counts — sampled level-0 frontiers through the real
        engines with Horvitz–Thompson reweighting, growing the sample
        adaptively until the two-sided ``confidence`` interval is within
        ``rel_err`` of the estimate or ``max_samples`` starts were
        drawn (``None`` = up to the frontier size, at which point the
        run degenerates to an exact count).  Count-only: the other verbs
        reject it.
    ``latency_budget``
        seconds of predicted exact work the caller is willing to pay;
        under ``planner="auto"`` a query whose probe predicts more
        routes to the approximate tier automatically (``approx`` stays
        ``None`` → the planner engages
        :data:`repro.runtime.planner.AUTO_APPROX_REL_ERR`).
    ``seed``
        RNG seed for the sampling tier (deterministic estimates for
        tests and benchmarks); ``None`` seeds from entropy.
    """

    edge_induced: bool = True
    symmetry_breaking: bool = True
    engine: str = "auto"
    frontier_chunk: int | None = None
    label_index: bool = True
    flush_size: int = 4096
    start_vertices: Iterable[int] | None = None
    control: ExplorationControl | None = None
    stats: EngineStats | None = None
    timer: Any = None
    plan: ExplorationPlan | None = None
    planner: str = "fixed"
    schedule: str = "dynamic"
    chunk_hint: int | None = None
    budget: Budget | None = None
    on_budget: str = "raise"
    guard: str = "off"
    approx: float | None = None
    confidence: float = 0.95
    max_samples: int | None = None
    latency_budget: float | None = None
    seed: int | None = None

    def merged(self, overrides: Mapping[str, Any]) -> "ExecOptions":
        """Resolve per-call ``overrides`` against these defaults.

        Unknown names raise ``TypeError`` with the valid field list, so a
        typo'd knob fails loudly instead of being silently dropped.
        ``engine=None`` means "inherit the default" — session-consumer
        wrappers (mining entry points) forward their ``engine`` parameter
        unconditionally and ``None`` is its not-specified value.
        """
        if not overrides:
            return self
        unknown = [k for k in overrides if k not in _OPTION_FIELDS]
        if unknown:
            raise TypeError(
                f"unknown execution option(s) {sorted(unknown)}; "
                f"valid options: {sorted(_OPTION_FIELDS)}"
            )
        resolved = dict(overrides)
        if resolved.get("engine", "") is None:
            del resolved["engine"]
        # ``plan="auto"``/``plan="fixed"`` select the dispatch policy,
        # not a precomputed ExplorationPlan — translate the string
        # spelling to the ``planner`` field.
        if isinstance(resolved.get("plan"), str):
            resolved["planner"] = resolved.pop("plan")
        if not resolved:
            return self
        return dataclasses.replace(self, **resolved)


_OPTION_FIELDS = frozenset(f.name for f in dataclasses.fields(ExecOptions))

# Knobs that only make sense for a single query, not as session defaults.
_PER_CALL_ONLY = ("plan", "start_vertices")

# Cached plans are small but a long-lived service graph can see an
# unbounded stream of ad-hoc patterns; cap the cache and evict FIFO
# (insertion order) so memory stays bounded without an eviction policy
# knob.  Start lists are keyed per plan and evicted in lockstep.
PLAN_CACHE_LIMIT = 1024


class _LinkedControl(ExplorationControl):
    """A control that also observes an external cancel token.

    :meth:`stop` sets only the *internal* flag, so a query using this as
    its private stop signal never cancels the caller's shared token;
    :attr:`stopped` reports either side.
    """

    __slots__ = ("_external",)

    def __init__(self, external: ExplorationControl):
        super().__init__()
        self._external = external

    @property
    def stopped(self) -> bool:
        return self._event.is_set() or self._external.stopped


class MiningSession:
    """All of Peregrine's verbs over one pinned data graph.

    Construction is cheap — every derived structure (degree ordering,
    CSR view, plans, start lists) is built lazily on first use and cached
    for the session's lifetime.  Graphs are immutable, so nothing a
    session caches can go stale.

    Parameters
    ----------
    graph:
        the data graph every query of this session runs against — a
        :class:`DataGraph`, an opened
        :class:`~repro.graph.binary_io.GraphStore`, or a filesystem path
        (``.rgx`` stores open zero-copy; ``.npz`` and edge lists parse).
    defaults:
        an :class:`ExecOptions` to use as the session defaults, or
        ``None`` for the standard defaults.
    **options:
        alternative to ``defaults``: individual ``ExecOptions`` field
        overrides (``MiningSession(g, engine="reference")``).

    Example
    -------
    >>> s = MiningSession(graph)
    >>> s.count(generate_clique(3))
    >>> s.count_many(generate_all_vertex_induced(4), edge_induced=False)
    >>> s.exists(generate_clique(5))
    """

    __slots__ = (
        "graph",
        "defaults",
        "_ordered",
        "_old_of_new",
        "_translation",
        "_plans",
        "_starts",
        "_census",
        "_guard_cache",
        "last_query_plan",
        "plan_cache_hits",
        "plan_cache_misses",
    )

    def __init__(
        self,
        graph: GraphSource,
        defaults: ExecOptions | None = None,
        **options,
    ):
        if defaults is not None and options:
            raise TypeError("pass defaults= or keyword options, not both")
        base = defaults if defaults is not None else ExecOptions().merged(options)
        for name in _PER_CALL_ONLY:
            if getattr(base, name) is not None:
                raise ValueError(
                    f"{name!r} is a per-call option, not a session default"
                )
        self.graph = _coerce_graph(graph)
        self.defaults = base
        self._ordered: DataGraph | None = None
        self._old_of_new: list[int] | None = None
        self._translation = None  # numpy mirror of _old_of_new (lazy)
        self._plans: dict[tuple, ExplorationPlan] = {}
        self._starts: dict[tuple, list[int] | None] = {}
        self._census: dict[tuple, CensusTransform] = {}
        self._guard_cache: dict[tuple, Any] = {}
        # The most recent QueryPlan chosen under planner="auto"
        # (introspection: CLI explain, service echo, tests).
        self.last_query_plan = None
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    @classmethod
    def for_graph(cls, graph: GraphSource) -> "MiningSession":
        """The graph's shared default session (created on first use).

        This is what the legacy :mod:`repro.core.api` shims run on, so
        plain ``count(graph, p)`` calls share one plan cache per graph.
        The shared session always carries pristine defaults; shims pass
        every knob explicitly.  Paths and
        :class:`~repro.graph.binary_io.GraphStore` instances are accepted
        too; the shared session then lives on the loaded graph (and on
        the store's cached graph, so repeated ``for_graph(store)`` calls
        reuse one session).
        """
        graph = _coerce_graph(graph)
        session = graph._session_cache
        if session is None:
            session = cls(graph)
            graph._session_cache = session
        return session

    # ------------------------------------------------------------------
    # Cached per-graph state
    # ------------------------------------------------------------------

    @property
    def ordered(self) -> DataGraph:
        """The degree-ordered copy of the pinned graph (§5.2), cached."""
        if self._ordered is None:
            ordered, old_of_new = self.graph.degree_ordered()
            # Publish the translation before the ordered graph: a
            # concurrent first use observing _ordered set may then rely
            # on _old_of_new being set too (no lock on the lazy init;
            # degree_ordered itself is idempotent and graph-cached).
            self._old_of_new = old_of_new
            self._ordered = ordered
        return self._ordered

    @property
    def translation(self) -> list[int]:
        """``old_of_new`` id map from ordered ids back to caller ids."""
        if self._old_of_new is None:
            self.ordered
        return self._old_of_new

    @property
    def view(self):
        """The CSR :class:`AcceleratedGraphView` of the ordered graph."""
        if _accel is None:
            raise MatchingError("the CSR view requires numpy")
        return _accel.shared_view(self.ordered)

    def options(self, **overrides) -> ExecOptions:
        """Session defaults merged with ``overrides`` — the one knob path."""
        return self.defaults.merged(overrides)

    def plan_for(
        self,
        pattern: Pattern,
        edge_induced: bool | None = None,
        symmetry_breaking: bool | None = None,
    ) -> ExplorationPlan:
        """The (cached) exploration plan for ``pattern`` under the flags.

        ``None`` flags fall back to the session defaults.  The cache is
        keyed by the pattern's exact signature, so mutating a pattern
        after a query simply misses the cache instead of serving a stale
        plan.
        """
        if edge_induced is None:
            edge_induced = self.defaults.edge_induced
        if symmetry_breaking is None:
            symmetry_breaking = self.defaults.symmetry_breaking
        return self._cached_plan(pattern, edge_induced, symmetry_breaking)[0]

    def clear_caches(self) -> None:
        """Drop cached plans and start lists (hit/miss counters persist).

        The graph-level state (degree ordering, CSR view) stays — it is
        O(graph) once, whereas plans/start lists grow with the pattern
        stream (bounded by :data:`PLAN_CACHE_LIMIT`, FIFO-evicted).
        """
        self._plans.clear()
        self._starts.clear()
        self._census.clear()

    def close(self, release_store: bool = False) -> None:
        """Release everything this session derived from its graph.

        The registry hook for the service tier
        (:class:`repro.service.SessionRegistry`): an evicted session must
        not keep the graph's derived state — degree-ordered copy, CSR
        view, plans, start lists, guard estimates — alive through its own
        references.  With ``release_store=True`` the graph's backing
        :class:`~repro.graph.binary_io.GraphStore` is closed too (mmap
        descriptors freed immediately); pass it only when the caller owns
        the store — i.e. this session (or its registry) opened the path —
        since a closed store invalidates every other graph/view aliasing
        the mapped sections.  The session is unusable afterwards.
        """
        self.clear_caches()
        self._guard_cache.clear()
        self.last_query_plan = None
        self._ordered = None
        self._old_of_new = None
        self._translation = None
        graph = self.graph
        if graph is not None:
            # Drop the graph-cached derived objects we may have built, so
            # the graph itself does not pin the CSR view or this session.
            graph._accel_view = None
            graph._ordered_cache = None
            if graph._session_cache is self:
                graph._session_cache = None
            if release_store and graph.backing_store is not None:
                graph.backing_store.close()

    def cache_info(self) -> dict[str, Any]:
        """Cache occupancy/hit counters (tests, benchmarks, dashboards)."""
        return {
            "plans": len(self._plans),
            "plan_hits": self.plan_cache_hits,
            "plan_misses": self.plan_cache_misses,
            "start_lists": len(self._starts),
            "census_transforms": len(self._census),
            "ordered_built": self._ordered is not None,
            "view_built": (
                self._ordered is not None
                and self._ordered._accel_view is not None
            ),
        }

    def _cached_plan(
        self, pattern: Pattern, edge_induced: bool, symmetry_breaking: bool
    ):
        """The (plan, cache key) pair for ``pattern`` under the flags."""
        key = (pattern.signature(), edge_induced, symmetry_breaking)
        plan = self._plans.get(key)
        if plan is None:
            self.plan_cache_misses += 1
            plan = generate_plan(
                pattern,
                edge_induced=edge_induced,
                symmetry_breaking=symmetry_breaking,
            )
            self._plans[key] = plan
            if len(self._plans) > PLAN_CACHE_LIMIT:
                oldest = next(iter(self._plans))
                del self._plans[oldest]
                self._starts.pop(oldest, None)
        else:
            self.plan_cache_hits += 1
        return plan, key

    def _prepare(self, pattern: Pattern, opts: ExecOptions):
        """Shared verb prelude: resolve (plan, start vertices, engine).

        An explicit ``opts.plan`` bypasses the plan cache (and therefore
        the start-list cache keyed on it).
        """
        if opts.plan is not None:
            plan, key = opts.plan, None
        else:
            plan, key = self._cached_plan(
                pattern, opts.edge_induced, opts.symmetry_breaking
            )
        starts = opts.start_vertices
        if starts is None and opts.label_index:
            starts = self._starts_for(plan, key)
        selected = _dispatch_engine(
            opts.engine, opts.control, opts.stats, opts.timer,
            self.ordered, plan,
        )
        return plan, starts, selected

    def _starts_for(self, plan: ExplorationPlan, key: tuple | None):
        """Label-filtered start vertices for ``plan`` (cached per plan)."""
        if key is None:
            return _label_filtered_starts(self.ordered, plan)
        if key not in self._starts:
            self._starts[key] = _label_filtered_starts(self.ordered, plan)
        return self._starts[key]

    def _translated(
        self, callback: Callable[[Match], None]
    ) -> Callable[[Match], None]:
        """Wrap ``callback`` to report matches in the caller's vertex ids."""
        old_of_new = self.translation

        def wrapper(m: Match) -> None:
            translated = tuple(
                old_of_new[v] if v >= 0 else -1 for v in m.mapping
            )
            callback(Match(m.pattern, translated))

        return wrapper

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def match(
        self,
        pattern: Pattern,
        callback: Callable[[Match], None] | None = None,
        **options,
    ) -> int:
        """Find every canonical match of ``pattern``; return the count.

        Invokes ``callback`` once per match (if given).  Any
        :class:`ExecOptions` field can be overridden by keyword; see the
        legacy :func:`repro.core.api.match` for per-knob semantics.
        """
        opts = self.defaults.merged(options)
        return self._run_match(pattern, callback, opts)

    def count(self, pattern: Pattern, **options) -> int:
        """Number of canonical matches of ``pattern``.

        Equivalent to :meth:`match` without a callback, but lets the
        engine count final-step candidate sets without enumerating them.

        With ``approx=rel_err`` the count is *estimated* instead:
        sampled level-0 frontiers run through the same engines and the
        return value is an :class:`~repro.mining.sampling.ApproxCount`
        (an object with ``estimate``/``stderr``/``ci_low``/``ci_high``;
        ``int()`` rounds it) whose interval is grown adaptively until it
        is within ``rel_err`` of the estimate — see
        :mod:`repro.mining.sampling`.  ``confidence``, ``max_samples``
        and ``seed`` tune the estimator; a query may also *auto-route*
        to this tier under ``plan="auto"`` with a ``latency_budget``, or
        via the ``guard="downgrade"`` escalation step.
        """
        opts = self.defaults.merged(options)
        return self._run_match(pattern, None, opts)

    def count_many(
        self, patterns: Sequence[Pattern], num_processes: int = 1, **options
    ) -> dict[Pattern, int]:
        """Count each pattern over the shared session state.

        The multi-pattern overload of the paper's ``count`` (motif
        counting, Fig 4e): the ordered graph, CSR view and plan cache are
        reused across every pattern instead of being re-derived per call,
        and compatible patterns additionally *fuse* — one shared level-0
        frontier walk with shared numpy gathers serves the whole group
        (see :meth:`match_many` for the dispatch rules).

        With ``num_processes > 1`` the workload runs through
        :func:`repro.runtime.parallel.process_count_many`: the fused
        frontier is cut into degree-weighted chunks that worker
        processes pull from a shared queue (``schedule``/``chunk_hint``
        apply), each chunk served by the same fused runner — true
        parallel speedup for motif censuses.  The process path counts
        only (``engine`` must be ``"auto"`` or ``"fused"``; hook options
        raise), and falls back to the sequential path when numpy is
        unavailable.

        With ``approx=rel_err`` every pattern is *estimated* instead
        (:class:`~repro.mining.sampling.ApproxCount` values): patterns
        group exactly like the exact fused path and each group's
        sampled rounds ride one shared
        :func:`~repro.core.accel.fused_run` walk, so multi-pattern
        estimation pays one frontier sample per group, not per pattern.
        """
        patterns = list(patterns)
        opts = self.defaults.merged(options)
        if opts.approx is not None:
            if num_processes > 1:
                raise MatchingError(
                    "count_many(approx=...) runs the sampling estimator "
                    "in-process; drop approx or use num_processes=1"
                )
            self._check_guardrail_opts(opts)
            from ..mining.sampling import approx_count_many_session

            return approx_count_many_session(self, patterns, opts)
        if num_processes > 1 and _accel is not None:
            from ..runtime.parallel import process_count_many

            unsupported = [
                name
                for name in ("stats", "timer", "control", "plan",
                             "start_vertices", "budget", "latency_budget")
                if getattr(opts, name) is not None
            ]
            if unsupported:
                raise MatchingError(
                    f"count_many(num_processes={num_processes}) does not "
                    f"support the {sorted(unsupported)} option(s); drop "
                    "them or use num_processes=1"
                )
            if opts.engine not in ("auto", "fused"):
                raise MatchingError(
                    f"engine={opts.engine!r} is not available under "
                    "processes; use 'auto' or 'fused'"
                )
            return process_count_many(
                self,
                patterns,
                num_processes=num_processes,
                edge_induced=opts.edge_induced,
                symmetry_breaking=opts.symmetry_breaking,
                label_index=opts.label_index,
                schedule=opts.schedule,
                chunk_hint=opts.chunk_hint,
                frontier_chunk=opts.frontier_chunk,
                guard=opts.guard,
                plan=opts.planner,
            )
        totals = self._run_many(patterns, None, None, opts)
        return dict(zip(patterns, totals))

    def match_many(
        self,
        patterns: Sequence[Pattern],
        callbacks: Sequence[Callable[[Match], None] | None] | None = None,
        **options,
    ) -> list[int]:
        """Match every pattern; return per-pattern counts in input order.

        ``callbacks[i]`` (if given) fires once per match of
        ``patterns[i]``, in exactly the order a standalone
        :meth:`match` of that pattern would produce — fusion never
        reorders a member's own matches, only interleaves work *between*
        members.

        **Fused dispatch.**  With ``engine="auto"`` (and numpy, no
        ``stats``/``timer``/``control``/``plan``/``start_vertices``
        overrides, graph above the batched crossover), patterns sharing a
        level-0 frontier signature are grouped by
        :class:`MultiPatternPlan` and groups of at least
        :data:`FUSED_MIN_GROUP` members run through
        :func:`repro.core.accel.fused_run`: one frontier walk, shared
        first-level gathers, per-pattern masks.  ``engine="fused"``
        forces fusion for every group (raising when the run does not
        qualify); any other engine runs the patterns sequentially on that
        engine.
        """
        patterns = list(patterns)
        opts = self.defaults.merged(options)
        return self._run_many(patterns, callbacks, None, opts)

    def match_batches_many(
        self,
        patterns: Sequence[Pattern],
        on_batches: Sequence[Callable],
        **options,
    ) -> list[int]:
        """Stream every pattern's matches as arrays; return per-pattern counts.

        The multi-pattern overload of :meth:`match_batches`:
        ``on_batches[i]`` receives ``patterns[i]``'s match rows (caller
        vertex ids, ``-1`` for anti-vertices).  Fusion follows the
        :meth:`match_many` dispatch rules — FSM rounds stream every
        structural pattern of a round off one shared frontier walk.
        """
        if _accel is None:
            raise MatchingError("match_batches_many requires numpy")
        patterns = list(patterns)
        opts = self.defaults.merged(options)
        return self._run_many(patterns, None, list(on_batches), opts)

    def exists(self, pattern: Pattern, **options) -> bool:
        """Whether at least one match exists; stops at the first (§5.3).

        The paper's existence-query idiom (Fig 4f): the callback fires
        ``stopExploration()`` on the first match.  The frontier-batched
        engine polls the control between frontier blocks and per emitted
        match, so this qualifies for vectorized dispatch.  A ``control``
        override is honored as an external cancel: the probe stops when
        either the first match lands or the caller's control fires (a
        cancelled probe reports ``False``).  The probe's own stop never
        propagates to the caller's token — a successful ``exists`` won't
        cancel other runs sharing that control.
        """
        options = dict(options)
        external = options.get("control", self.defaults.control)
        control = (
            _LinkedControl(external) if external is not None
            else ExplorationControl()
        )
        options["control"] = control
        found: list[Match] = []

        def on_first(m: Match) -> None:
            found.append(m)
            control.stop()

        opts = self.defaults.merged(options)
        self._run_match(pattern, on_first, opts)
        return bool(found)

    def match_batches(self, pattern: Pattern, on_batch, **options) -> int:
        """Stream every canonical match as 2D numpy arrays; return the count.

        ``on_batch`` receives ``(rows, num_pattern_vertices)`` int64
        arrays — column ``u`` is the data vertex matched to pattern
        vertex ``u`` (caller ids; ``-1`` for anti-vertices).  Batch
        boundaries and inter-batch order are unspecified; the row
        multiset equals :meth:`match`'s match multiset.
        """
        if _accel is None:
            raise MatchingError("match_batches requires numpy")
        opts = self.defaults.merged(options)
        return self._run_batches(pattern, on_batch, opts)

    def _batch_emitter(self, on_batch) -> Callable:
        """Wrap ``on_batch`` to receive rows in the caller's vertex ids."""
        np = _accel.np
        if self._translation is None:
            self._translation = np.asarray(self.translation, dtype=np.int64)
        translation = self._translation

        def emit(mappings) -> None:
            translated = translation[np.maximum(mappings, 0)]
            translated[mappings < 0] = -1
            on_batch(translated)

        return emit

    def _run_batches(
        self, pattern: Pattern, on_batch, opts: ExecOptions, meter=None
    ) -> int:
        """Single-pattern batch streaming (shared by the *_many paths)."""
        self._check_guardrail_opts(opts)
        if opts.approx is not None:
            raise MatchingError(
                "approx=... is count-only; match_batches streams exact "
                "match rows"
            )
        opts = self._apply_guard(pattern, opts)
        if meter is None and opts.budget is not None:
            meter = opts.budget.meter()
        try:
            return self._run_batches_engines(pattern, on_batch, opts, meter)
        except BudgetExceededError as err:
            if opts.on_budget == "partial":
                return err.partial
            raise

    def _run_batches_engines(
        self, pattern: Pattern, on_batch, opts: ExecOptions, meter
    ) -> int:
        np = _accel.np
        plan, starts, selected = self._prepare(pattern, opts)
        emit = self._batch_emitter(on_batch)
        if selected == "accel-batch":
            batched = _accel.FrontierBatchedEngine(self.view)
            return batched.run(
                plan,
                start_vertices=starts,
                on_batch=emit,
                chunk=opts.frontier_chunk,
                control=opts.control,
                budget=meter,
            )

        buffer: list[tuple[int, ...]] = []

        def flush() -> None:
            if buffer:
                emit(np.asarray(buffer, dtype=np.int64))
                buffer.clear()

        def collect(m: Match) -> None:
            buffer.append(m.mapping)
            if len(buffer) >= opts.flush_size:
                flush()

        if selected == "accel":
            engine_obj = _accel.AcceleratedEngine(self.view)
            total = engine_obj.run(
                plan,
                start_vertices=starts,
                on_match=collect,
                control=opts.control,
                budget=meter,
            )
        else:
            total = run_tasks(
                self.ordered,
                plan,
                start_vertices=starts,
                on_match=collect,
                control=opts.control,
                stats=opts.stats,
                timer=opts.timer,
                budget=meter,
            )
        flush()
        return total

    def aggregate(
        self,
        patterns: Pattern | Iterable[Pattern],
        map_fn: Callable[[Match], tuple[Any, Any] | None],
        reduce: Callable[[Any, Any], Any] | None = None,
        on_update: Callable[[Aggregator], None] | None = None,
        interval: float = 0.005,
        num_threads: int = 1,
        **options,
    ) -> dict[Any, Any]:
        """Map/reduce over the matches of one or more patterns (§5.4).

        The paper's aggregator idiom as a verb: ``map_fn(match)`` returns
        a ``(key, value)`` pair (or ``None`` to skip the match); values
        sharing a key are folded with ``reduce`` (default: addition).
        Matching writes into a worker-local
        :class:`~repro.core.callbacks.Aggregator` that an asynchronous
        :class:`~repro.runtime.aggregation.AggregatorThread` drains into
        the global map while exploration is still running, so an
        ``on_update`` hook sees live aggregates — pair it with a
        ``control`` override to stop early once a threshold is met (the
        Fig 4b pattern).  Returns the final ``{key: value}`` map.

        With ``num_threads > 1`` each pattern runs through
        :func:`repro.runtime.parallel.parallel_match`: worker threads
        keep thread-local aggregators that the aggregator thread drains
        concurrently — the paper's end-to-end concurrent map/reduce.
        ``reduce`` must then be order-insensitive (associative and
        commutative), since workers fold values in a nondeterministic
        interleaving; the default addition and reducers like ``max``
        qualify.  Multiple patterns without a ``control`` (and a single
        thread) route through :meth:`match_many`, so compatible patterns
        fuse onto one frontier walk.
        """
        # Deferred import: repro.runtime imports repro.core at module
        # load; by the time a session aggregates, both are initialized.
        from ..runtime.aggregation import AggregatorThread

        if isinstance(patterns, Pattern):
            patterns = [patterns]
        patterns = list(patterns)
        opts = self.defaults.merged(options)

        if num_threads > 1:
            from ..runtime.parallel import parallel_match

            # The thread pool has no hooks for these knobs; dropping them
            # silently would return different results than the
            # single-threaded path, so reject loudly instead.
            unsupported = [
                name
                for name in ("stats", "timer", "plan", "start_vertices",
                             "frontier_chunk")
                if getattr(opts, name) is not None
            ]
            if unsupported:
                raise MatchingError(
                    f"aggregate(num_threads={num_threads}) does not support "
                    f"the {sorted(unsupported)} option(s); drop them or use "
                    "num_threads=1"
                )
            if opts.engine not in ("auto", "accel-batch", "reference"):
                raise MatchingError(
                    f"engine={opts.engine!r} is not available under threads; "
                    "use 'auto', 'accel-batch' or 'reference'"
                )

            def thread_cb(m: Match, local_agg: Aggregator) -> None:
                kv = map_fn(m)
                if kv is not None:
                    local_agg.map_pattern(kv[0], kv[1])

            # One shared destination across every pattern's run, so
            # on_update observes cumulative totals (the Fig 4b
            # threshold-stop idiom keeps working across patterns).
            total = Aggregator(combine=reduce)
            for pattern in patterns:
                parallel_match(
                    self,
                    pattern,
                    num_threads=num_threads,
                    callback=thread_cb,
                    edge_induced=opts.edge_induced,
                    symmetry_breaking=opts.symmetry_breaking,
                    control=opts.control,
                    aggregate_interval=interval,
                    on_update=on_update,
                    engine=opts.engine,
                    plan=opts.planner,
                    combine=reduce,
                    global_aggregator=total,
                )
                if opts.control is not None and opts.control.stopped:
                    break
            return total.result()

        total = Aggregator(combine=reduce)
        local = Aggregator(combine=reduce)

        def on_match(m: Match) -> None:
            kv = map_fn(m)
            if kv is None:
                return
            key, value = kv
            local.map_pattern(key, value)

        with AggregatorThread(
            total, [local], interval=interval, on_update=on_update
        ):
            if opts.control is None and len(patterns) > 1:
                # No early-termination token: the multi-pattern runner can
                # interleave members freely, so compatible patterns fuse.
                self._run_many(patterns, [on_match] * len(patterns), None, opts)
            else:
                for pattern in patterns:
                    self._run_match(pattern, on_match, opts)
                    if opts.control is not None and opts.control.stopped:
                        break
        return total.result()

    # ------------------------------------------------------------------
    # Execution core (shared by every verb)
    # ------------------------------------------------------------------

    def _check_guardrail_opts(self, opts: ExecOptions) -> None:
        """Validate the guardrail knob values before any work happens."""
        if opts.on_budget not in _ON_BUDGET_CHOICES:
            raise ValueError(
                f"on_budget must be one of {_ON_BUDGET_CHOICES}, "
                f"got {opts.on_budget!r}"
            )
        if opts.guard not in _GUARD_CHOICES:
            raise ValueError(
                f"guard must be one of {_GUARD_CHOICES}, got {opts.guard!r}"
            )
        if opts.planner not in _PLANNER_CHOICES:
            raise ValueError(
                f"planner must be one of {_PLANNER_CHOICES}, "
                f"got {opts.planner!r}"
            )
        if opts.approx is not None and not 0.0 < opts.approx < 1.0:
            raise ValueError(
                f"approx must be a relative error in (0, 1), "
                f"got {opts.approx!r}"
            )
        if not 0.0 < opts.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {opts.confidence!r}"
            )
        if opts.max_samples is not None and opts.max_samples <= 0:
            raise ValueError(
                f"max_samples must be positive, got {opts.max_samples!r}"
            )
        if opts.latency_budget is not None and opts.latency_budget <= 0:
            raise ValueError(
                f"latency_budget must be positive seconds, "
                f"got {opts.latency_budget!r}"
            )

    def _apply_guard(
        self, pattern: Pattern, opts: ExecOptions, count_only: bool = False
    ) -> ExecOptions:
        """One probe → admit → plan, for one pattern.

        Probes the level-0 frontier via
        :func:`repro.runtime.guards.estimate_cost` (cached per plan key)
        and either raises :class:`~repro.errors.QueryRefusedError`
        (``guard="refuse"``) or returns options with a tightened
        ``frontier_chunk`` (``guard="downgrade"``) when the estimate
        predicts explosive expansion; benign queries pass unchanged.
        Under ``planner="auto"`` the *same* cached estimate then drives
        :func:`repro.runtime.planner.plan_query`, so a guarded planned
        query probes exactly once; the chosen plan is recorded on
        :attr:`last_query_plan` for introspection.

        ``count_only`` marks runs that could legally return an
        approximate estimate (no callback, no hooks): only those may be
        escalated to the sampling tier — by ``guard="downgrade"`` when
        the prediction is *far* past the explosive threshold, or by the
        planner when the prediction exceeds ``opts.latency_budget``.
        """
        wants_plan = opts.planner == "auto"
        if opts.guard == "off" and not wants_plan:
            return opts
        # Deferred import: repro.runtime imports repro.core at module
        # load; by the time a session applies a guard, both exist.
        from ..runtime import guards

        estimate = self._guard_estimate(pattern, opts)
        opts = guards.admit(estimate, opts)
        if (
            count_only
            and opts.approx is None
            and opts.guard == "downgrade"
            and estimate.predicted_partials
            > estimate.threshold * guards.DOWNGRADE_APPROX_FACTOR
        ):
            # The "approximate" escalation step: chunk tightening paces
            # an explosive query, but far enough past the threshold the
            # exact run is hopeless at any pacing — answer with a
            # bounded-error estimate instead of grinding.
            opts = dataclasses.replace(
                opts, approx=guards.DOWNGRADE_APPROX_REL_ERR
            )
        if wants_plan:
            from ..runtime import planner as _planner

            query_plan = _planner.plan_query(
                self, pattern, opts, estimate=estimate
            )
            opts = _planner.apply_plan(
                query_plan, opts, allow_approx=count_only
            )
            self.last_query_plan = query_plan
        return opts

    def _guard_estimate(self, pattern: Pattern, opts: ExecOptions):
        """The (cached) probe-walk cost estimate for one pattern.

        Only the probe *measurements* are cached; the explosive
        threshold is a deployment knob documented as resolved at call
        time, so every hit re-resolves it against the current
        :data:`repro.runtime.guards.EXPLOSIVE_PARTIALS` — retuning the
        module threshold flips admission on warm sessions too.
        """
        from ..runtime import guards

        key = (pattern.signature(), opts.edge_induced, opts.symmetry_breaking)
        estimate = self._guard_cache.get(key)
        if estimate is None:
            estimate = guards.estimate_cost(
                self,
                pattern,
                edge_induced=opts.edge_induced,
                symmetry_breaking=opts.symmetry_breaking,
            )
            self._guard_cache[key] = estimate
            if len(self._guard_cache) > PLAN_CACHE_LIMIT:
                self._guard_cache.pop(next(iter(self._guard_cache)))
        return guards.resolve_threshold(estimate)

    def _run_match(
        self,
        pattern: Pattern,
        callback: Callable[[Match], None] | None,
        opts: ExecOptions,
        meter=None,
    ) -> int:
        self._check_guardrail_opts(opts)
        # A run is eligible for the approximate tier only when nothing
        # observes individual matches or partial progress: counting with
        # no callback, no budget/control, no stats/timer hooks and no
        # explicit frontier.
        approx_eligible = (
            callback is None
            and meter is None
            and opts.budget is None
            and opts.control is None
            and opts.stats is None
            and opts.timer is None
            and opts.start_vertices is None
        )
        opts = self._apply_guard(pattern, opts, count_only=approx_eligible)
        if opts.approx is not None:
            if not approx_eligible:
                raise MatchingError(
                    "approx=... is count-only: it does not support "
                    "callbacks, budgets, controls, stats/timer hooks or "
                    "explicit start_vertices"
                )
            from ..mining.sampling import approx_count_session

            return approx_count_session(self, pattern, opts)
        if meter is None and opts.budget is not None:
            meter = opts.budget.meter()
        try:
            return self._run_match_engines(pattern, callback, opts, meter)
        except BudgetExceededError as err:
            if opts.on_budget == "partial":
                return err.partial
            raise

    def _run_match_engines(
        self,
        pattern: Pattern,
        callback: Callable[[Match], None] | None,
        opts: ExecOptions,
        meter,
    ) -> int:
        plan, starts, selected = self._prepare(pattern, opts)
        wrapped = self._translated(callback) if callback is not None else None
        if selected == "accel-batch":
            batched = _accel.FrontierBatchedEngine(self.view)
            return batched.run(
                plan,
                start_vertices=starts,
                on_match=wrapped,
                count_only=callback is None,
                chunk=opts.frontier_chunk,
                control=opts.control,
                budget=meter,
            )
        if selected == "accel":
            accelerated = _accel.AcceleratedEngine(self.view)
            return accelerated.run(
                plan,
                start_vertices=starts,
                on_match=wrapped,
                count_only=callback is None,
                control=opts.control,
                budget=meter,
            )
        return run_tasks(
            self.ordered,
            plan,
            start_vertices=starts,
            on_match=wrapped,
            control=opts.control,
            stats=opts.stats,
            timer=opts.timer,
            count_only=callback is None,
            budget=meter,
        )

    def _split_census_tier(
        self,
        group: Sequence[int],
        patterns: Sequence[Pattern],
        callbacks: Sequence,
        on_batches: Sequence,
        key: frozenset | None,
        opts: ExecOptions,
    ) -> tuple[list[int], list[int]]:
        """Partition one fused group into (direct, census-tier) members.

        The census tier serves count-only vertex-induced members without
        explicit anti-constraints (see
        :func:`repro.core.multipattern.census_eligible`) by counting the
        shared non-induced basis instead; it needs at least two such
        members before the basis rewrite can amortize.  Everything else
        — callback/batch consumers, labeled or anti-constrained patterns,
        edge-induced runs — stays on the direct fused path.
        """
        if opts.edge_induced or not opts.symmetry_breaking or key is not None:
            return list(group), []
        if opts.control is not None or opts.budget is not None:
            # The census tier demultiplexes by Möbius inversion over
            # *complete* basis counts; early-terminated partials would
            # invert into garbage, so controlled/budgeted runs stay on
            # the direct fused path (still one shared frontier walk).
            return list(group), []
        direct: list[int] = []
        census: list[int] = []
        for idx in group:
            if (
                callbacks[idx] is None
                and on_batches[idx] is None
                and census_eligible(patterns[idx])
            ):
                census.append(idx)
            else:
                direct.append(idx)
        if len(census) < 2:
            return list(group), []
        return direct, census

    def _census_transform_for(
        self, census_patterns: Sequence[Pattern]
    ) -> tuple[CensusTransform, list[tuple]]:
        """The (cached) census transform plus per-call target codes.

        The transform depends only on the *set* of canonical codes, so it
        is cached under that key; the returned code list is aligned with
        ``census_patterns`` for positional demultiplexing.
        """
        from ..pattern.canonical import canonical_permutation

        codes = [canonical_permutation(p)[0] for p in census_patterns]
        cache_key = tuple(sorted(set(codes)))
        transform = self._census.get(cache_key)
        if transform is None:
            transform = census_transform(census_patterns)
            self._census[cache_key] = transform
        return transform, codes

    def _group_starts(self, key: frozenset | None):
        """The fused level-0 frontier for one :class:`MultiPatternPlan` group.

        ``None`` (unrestricted) lets the runner seed from every vertex,
        hub-first; a label set restricts to its vertices in the same
        hub-first order — exactly what each member's own
        :func:`_label_filtered_starts` would produce, since members of a
        group share the pinned-label signature.
        """
        return group_start_vertices(self.ordered, key)

    def _run_many(
        self,
        patterns: Sequence[Pattern],
        callbacks: Sequence[Callable[[Match], None] | None] | None,
        on_batches: Sequence[Callable] | None,
        opts: ExecOptions,
    ) -> list[int]:
        """Run a multi-pattern workload; per-pattern totals in input order.

        Fusable members (see :meth:`match_many`) run through
        :func:`repro.core.accel.fused_run`, everything else through the
        ordinary single-pattern dispatch — the two partitions cover every
        index exactly once, so results always demultiplex completely.
        """
        n = len(patterns)
        callbacks = list(callbacks) if callbacks is not None else [None] * n
        on_batches = list(on_batches) if on_batches is not None else [None] * n
        if len(callbacks) != n or len(on_batches) != n:
            raise ValueError(
                "callbacks/on_batches must align one-to-one with patterns"
            )
        engine = opts.engine
        if engine not in _MULTI_ENGINE_CHOICES:
            raise ValueError(
                f"engine must be one of {_MULTI_ENGINE_CHOICES}, got {engine!r}"
            )
        self._check_guardrail_opts(opts)
        if opts.approx is not None or opts.latency_budget is not None:
            raise MatchingError(
                "approx/latency_budget are count-only knobs; use "
                "count(...) or count_many(...) for approximate estimates"
            )
        workload_estimates: list = []
        if opts.guard != "off" or opts.planner == "auto":
            # One probe per distinct pattern, shared by admission and
            # planning; "downgrade" tightens the shared frontier_chunk
            # to the smallest any member needs.  Per-member engine
            # planning happens in _run_match (non-fused members); the
            # workload-level fused decision consumes these estimates
            # below.
            from ..runtime import guards as _guards

            seen_signatures: set = set()
            for p in patterns:
                signature = p.signature()
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                estimate = self._guard_estimate(p, opts)
                workload_estimates.append(estimate)
                opts = _guards.admit(estimate, opts)
        meter = opts.budget.meter() if opts.budget is not None else None
        # A control no longer pins per-pattern dispatch: fused_run polls
        # it between frontier slices and threads it into every member
        # engine, so deadline/stop tokens ride the fused walk too.
        hooks_free = (
            _accel is not None
            and opts.stats is None
            and opts.timer is None
            and opts.plan is None
            and opts.start_vertices is None
        )
        if engine == "fused" and not hooks_free:
            raise MatchingError(
                "engine='fused' requires numpy and no stats/timer/"
                "plan/start_vertices overrides; use engine='auto' to fall "
                "back to per-pattern dispatch"
            )

        multi = None
        plans: list[ExplorationPlan] = []
        if hooks_free and engine in ("auto", "fused"):
            plans = [
                self._cached_plan(p, opts.edge_induced, opts.symmetry_breaking)[0]
                for p in patterns
            ]
            # batch_preferred depends only on the ordered graph, so one
            # member answers for the whole workload; under
            # planner="auto" the members' measured frontiers answer
            # instead (any member clearing the batched crossover makes
            # the shared gathers worthwhile for its whole group).
            fuse = engine == "fused"
            if not fuse and plans:
                if opts.planner == "auto" and workload_estimates:
                    from ..runtime import planner as _qplanner

                    fuse = _qplanner.batch_worthwhile(workload_estimates)
                else:
                    fuse = batch_preferred(self.ordered, plans[0])
            if fuse:
                labels = self.ordered.labels()
                if any(pl.matched_pattern.is_labeled for pl in plans) and (
                    labels is None
                ):
                    raise MatchingError(
                        "pattern has label constraints but the data graph "
                        "is unlabeled"
                    )
                multi = MultiPatternPlan.build(
                    plans,
                    label_index=opts.label_index and labels is not None,
                    min_group=1 if engine == "fused" else FUSED_MIN_GROUP,
                )

        totals = [0] * n
        if multi is not None:
            for group, key in zip(multi.groups, multi.group_keys):
                direct, census = self._split_census_tier(
                    group, patterns, callbacks, on_batches, key, opts
                )
                members = []
                for idx in direct:
                    cb = callbacks[idx]
                    ob = on_batches[idx]
                    members.append((
                        plans[idx],
                        self._translated(cb) if cb is not None else None,
                        self._batch_emitter(ob) if ob is not None else None,
                    ))
                transform = None
                if census:
                    transform, census_codes = self._census_transform_for(
                        [patterns[idx] for idx in census]
                    )
                    members.extend(
                        (self._cached_plan(basis_pattern, True, True)[0], None, None)
                        for basis_pattern in transform.basis
                    )
                try:
                    counts = _accel.fused_run(
                        self.view,
                        members,
                        start_vertices=self._group_starts(key),
                        chunk=opts.frontier_chunk,
                        control=opts.control,
                        budget=meter,
                    )
                except BudgetExceededError as err:
                    if opts.on_budget != "partial":
                        raise
                    partial_totals = err.partial.detail.get("totals")
                    counts = (
                        list(partial_totals)
                        if partial_totals is not None
                        else [0] * len(members)
                    )
                for pos, idx in enumerate(direct):
                    totals[idx] = counts[pos]
                if transform is not None:
                    noninduced = {
                        code: counts[len(direct) + pos]
                        for pos, (code, _) in enumerate(transform.order)
                    }
                    induced = transform.induced_counts(noninduced)
                    for pos, idx in enumerate(census):
                        totals[idx] = induced[census_codes[pos]]
            remaining: Sequence[int] = multi.singles
        else:
            remaining = range(n)

        # Per-pattern engines ("accel", "reference", ...) and non-fusable
        # members keep the exact single-pattern semantics, hooks included.
        for idx in remaining:
            if on_batches[idx] is not None:
                totals[idx] = self._run_batches(
                    patterns[idx], on_batches[idx], opts, meter=meter
                )
            else:
                totals[idx] = self._run_match(
                    patterns[idx], callbacks[idx], opts, meter=meter
                )
        return totals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.cache_info()
        return (
            f"MiningSession({self.graph!r}, plans={info['plans']}, "
            f"hits={info['plan_hits']})"
        )


def as_session(
    graph_or_session: Union[GraphSource, MiningSession],
) -> MiningSession:
    """Coerce a graph, graph source or session to a session.

    Sessions pass through untouched; a bare :class:`DataGraph` — or a
    path / :class:`~repro.graph.binary_io.GraphStore`, which loads first
    — resolves to its shared default session
    (:meth:`MiningSession.for_graph`), so library code written against
    sessions keeps amortizing state even when callers hand it plain
    graphs.
    """
    if isinstance(graph_or_session, MiningSession):
        return graph_or_session
    try:
        return MiningSession.for_graph(graph_or_session)
    except TypeError:
        raise TypeError(
            "expected DataGraph, GraphStore, graph path or MiningSession, "
            f"got {type(graph_or_session).__name__}"
        ) from None
