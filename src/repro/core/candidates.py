"""Sorted-list set operations used by the matching engine.

All adjacency lists in :class:`~repro.graph.graph.DataGraph` are sorted, so
candidate generation reduces to merge-style intersections, differences and
binary-search range restriction — the operations §4 builds everything from.
The functions here are the library's hot loop; they stick to plain lists and
``bisect`` because those are the fastest exact-set primitives in CPython.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

__all__ = [
    "bounded",
    "contains",
    "intersect",
    "intersect_many",
    "difference",
    "intersect_count",
]


def bounded(values: Sequence[int], lo: int, hi: int) -> list[int]:
    """Elements v of a sorted list with ``lo < v < hi`` (exclusive bounds)."""
    return list(values[bisect_right(values, lo): bisect_left(values, hi)])


def contains(values: Sequence[int], x: int) -> bool:
    """Binary-search membership in a sorted list."""
    i = bisect_left(values, x)
    return i < len(values) and values[i] == x


def intersect(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Intersection of two sorted lists.

    Walks the shorter list and binary-searches the longer one (galloping
    beats a full merge when the lists are skewed, which adjacency lists
    of high- vs low-degree vertices usually are).
    """
    if len(a) > len(b):
        a, b = b, a
    # len() checks, not truthiness: array-backed graphs hand us numpy
    # slices, whose bool() is ambiguous beyond one element.
    if len(a) == 0 or len(b) == 0:
        return []
    out = []
    nb = len(b)
    lo = 0
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo >= nb:
            break
        if b[lo] == x:
            out.append(x)
            lo += 1
    return out


def intersect_many(lists: Sequence[Sequence[int]]) -> list[int]:
    """Intersection of any number of sorted lists (smallest-first order)."""
    if len(lists) == 0:
        return []
    ordered = sorted(lists, key=len)
    result: list[int] = list(ordered[0])
    for other in ordered[1:]:
        if not result:
            break
        result = intersect(result, other)
    return result


def difference(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Sorted list difference ``a \\ b``."""
    if len(a) == 0:
        return []
    if len(b) == 0:
        return list(a)
    out = []
    nb = len(b)
    lo = 0
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo >= nb or b[lo] != x:
            out.append(x)
    return out


def intersect_count(a: Sequence[int], b: Sequence[int]) -> int:
    """|a ∩ b| for sorted lists, without materializing the intersection."""
    if len(a) > len(b):
        a, b = b, a
    count = 0
    nb = len(b)
    lo = 0
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo >= nb:
            break
        if b[lo] == x:
            count += 1
            lo += 1
    return count
