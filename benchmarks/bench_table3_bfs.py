"""Table 3: Peregrine vs breadth-first systems (Arabesque, RStream).

Workloads: 3-motifs, 4-motifs, k-cliques (3..5) and FSM, on the mico and
patents stand-ins.  The paper's shape: Peregrine wins by an order of
magnitude or more on everything except high-threshold FSM, and the BFS
systems hit memory walls first (their budgeted runs report 'oom').
"""

import pytest

from benchmarks.common import guarded, run_once, timed

from repro.baselines import (
    bfs_clique_count,
    bfs_fsm,
    bfs_motif_count,
    rstream_clique_count,
    rstream_fsm,
    rstream_motif_count,
)
from repro.mining import clique_count, fsm, motif_counts


@pytest.mark.paper_artifact("table3")
@pytest.mark.parametrize("dataset", ["mico_small", "patents_small"])
@pytest.mark.parametrize("system", ["peregrine", "arabesque", "rstream"])
def test_3motifs(benchmark, request, dataset, system):
    graph = request.getfixturevalue(dataset)
    if system == "peregrine":
        result = run_once(benchmark, lambda: motif_counts(graph, 3))
        total = sum(result.values())
    elif system == "arabesque":
        counts, _ = run_once(benchmark, lambda: bfs_motif_count(graph, 3))
        total = sum(counts.values())
    else:
        counts, _ = run_once(benchmark, lambda: rstream_motif_count(graph, 3))
        total = sum(counts.values())
    benchmark.extra_info["total_motifs"] = total


@pytest.mark.paper_artifact("table3")
@pytest.mark.parametrize("k", [3, 4, 5])
@pytest.mark.parametrize("system", ["peregrine", "arabesque", "rstream"])
def test_kcliques_patents(benchmark, patents_small, k, system):
    graph = patents_small
    if system == "peregrine":
        result = run_once(benchmark, lambda: clique_count(graph, k))
        benchmark.extra_info["cliques"] = result
        return
    fn = bfs_clique_count if system == "arabesque" else rstream_clique_count
    status, outcome = run_once(
        benchmark, lambda: guarded(lambda: fn(graph, k, step_budget=3_000_000))
    )
    benchmark.extra_info["status"] = status
    if outcome is not None:
        benchmark.extra_info["cliques"] = outcome[0]


@pytest.mark.paper_artifact("table3")
@pytest.mark.parametrize("threshold", [3, 5, 8])
@pytest.mark.parametrize("system", ["peregrine", "arabesque", "rstream"])
def test_fsm_mico(benchmark, mico_small, threshold, system):
    graph = mico_small
    if system == "peregrine":
        result = run_once(benchmark, lambda: fsm(graph, 2, threshold))
        benchmark.extra_info["frequent"] = len(result.frequent)
        return
    if system == "arabesque":
        fn = lambda: bfs_fsm(graph, 2, threshold, step_budget=3_000_000)
    else:
        # RStream's FSM dies on aggregation state in the paper; a tight
        # disk budget reproduces the '—' cells at low thresholds.
        fn = lambda: rstream_fsm(
            graph, 2, threshold, step_budget=3_000_000, disk_budget=3_000_000
        )
    status, outcome = run_once(benchmark, lambda: guarded(fn))
    benchmark.extra_info["status"] = status
    if outcome is not None:
        benchmark.extra_info["frequent"] = len(outcome[0])


@pytest.mark.paper_artifact("table3")
def test_print_table3_shape(mico_small, capsys):
    """Print the speedup row: who wins and by what factor."""
    t_engine, _ = timed(lambda: motif_counts(mico_small, 3))
    t_bfs, _ = timed(lambda: bfs_motif_count(mico_small, 3))
    t_rs, _ = timed(lambda: rstream_motif_count(mico_small, 3))
    with capsys.disabled():
        print("\n=== Table 3 shape: 3-motifs on mico stand-in ===")
        print(f"peregrine: {t_engine:.3f}s   arabesque-like: {t_bfs:.3f}s "
              f"({t_bfs / t_engine:.1f}x)   rstream-like: {t_rs:.3f}s "
              f"({t_rs / t_engine:.1f}x)")
    assert t_bfs > t_engine  # the paper's headline ordering
