"""Table 1: the headline speedup summary.

Computes Peregrine's speedup over every reimplemented system on a common
workload mix (3-motifs, 3/4-cliques, small FSM) and prints a Table 1-style
row.  Absolute factors differ from the paper (different hardware, language
and scale); the *ordering* — Peregrine fastest, join-based and BFS systems
slowest, PRG-U in between — is the reproduced claim.
"""

import pytest

from benchmarks.common import run_once, timed

from repro.baselines import (
    bfs_clique_count,
    bfs_motif_count,
    dfs_clique_count,
    dfs_motif_count,
    prgu_motif_counts,
    rstream_clique_count,
    rstream_motif_count,
)
from repro.mining import clique_count, motif_counts


def workload_peregrine(graph):
    motif_counts(graph, 3)
    clique_count(graph, 3)
    clique_count(graph, 4)


def workload_bfs(graph):
    bfs_motif_count(graph, 3)
    bfs_clique_count(graph, 3)
    bfs_clique_count(graph, 4)


def workload_dfs(graph):
    dfs_motif_count(graph, 3)
    dfs_clique_count(graph, 3)
    dfs_clique_count(graph, 4)


def workload_rstream(graph):
    rstream_motif_count(graph, 3)
    rstream_clique_count(graph, 3)
    rstream_clique_count(graph, 4)


def workload_prgu(graph):
    prgu_motif_counts(graph, 3)
    clique_count(graph, 3, symmetry_breaking=False)
    clique_count(graph, 4, symmetry_breaking=False)


SYSTEMS = {
    "peregrine": workload_peregrine,
    "arabesque-like": workload_bfs,
    "fractal-like": workload_dfs,
    "rstream-like": workload_rstream,
    "prg-u": workload_prgu,
}


@pytest.mark.paper_artifact("table1")
@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_workload_mix(benchmark, patents_small, system):
    run_once(benchmark, lambda: SYSTEMS[system](patents_small))


@pytest.mark.paper_artifact("table1")
def test_print_table1(patents_small, capsys):
    times = {
        name: timed(lambda fn=fn: fn(patents_small))[0]
        for name, fn in SYSTEMS.items()
    }
    ours = times.pop("peregrine")
    with capsys.disabled():
        print("\n=== Table 1: PEREGRINE speedup summary (stand-in scale) ===")
        for name, t in sorted(times.items(), key=lambda kv: kv[1]):
            print(f"  vs {name:<16} {t / ours:6.1f}x")
    # Reproduced ordering: Peregrine beats every baseline; PRG-U is the
    # closest competitor (it is Peregrine minus one optimization).
    assert all(t > ours for t in times.values())
    assert times["prg-u"] == min(times.values())
