"""Table 6: structural-constraint mining and the clique existence query.

Three workloads on all four dataset stand-ins:

* p7 — anti-vertex pattern (maximal triangles);
* p8 — anti-edge pattern (vertex-induced chordal square);
* existence of a large clique, with early termination.

The paper's shape: the dense graph (orkut stand-in) answers the clique
existence query almost immediately because a large clique is found early,
while graphs without one must be searched exhaustively.
"""

import pytest

from benchmarks.common import run_once

from repro.core import EngineStats, count
from repro.mining import clique_existence
from repro.pattern import pattern_p7, pattern_p8

DATASETS = ["mico", "patents", "orkut", "friendster"]
# A clique size large enough to be rare-but-present in the dense stand-in:
# scaled-down analogue of the paper's 14-clique.
EXISTENCE_K = 8


@pytest.mark.paper_artifact("table6")
@pytest.mark.parametrize("dataset", DATASETS)
def test_anti_vertex_p7(benchmark, request, dataset):
    graph = request.getfixturevalue(dataset)
    result = run_once(benchmark, lambda: count(graph, pattern_p7()))
    benchmark.extra_info["maximal_triangles"] = result


@pytest.mark.paper_artifact("table6")
@pytest.mark.parametrize("dataset", DATASETS)
def test_anti_edge_p8(benchmark, request, dataset):
    graph = request.getfixturevalue(dataset)
    result = run_once(benchmark, lambda: count(graph, pattern_p8()))
    benchmark.extra_info["chordal_squares"] = result


@pytest.mark.paper_artifact("table6")
@pytest.mark.parametrize("dataset", DATASETS)
def test_clique_existence(benchmark, request, dataset):
    graph = request.getfixturevalue(dataset)
    result = run_once(benchmark, lambda: clique_existence(graph, EXISTENCE_K))
    benchmark.extra_info["exists"] = result


@pytest.mark.paper_artifact("table6")
def test_early_termination_shape(orkut, patents, capsys):
    """Dense graph with the clique: terminates early.  Graph without it:
    full search.  Verified via explored-partial-match counts."""
    from repro.core import ExplorationControl, match
    from repro.pattern import generate_clique

    def explored(graph, k):
        stats = EngineStats()
        control = ExplorationControl()
        match(
            graph,
            generate_clique(k),
            callback=lambda m: control.stop(),
            control=control,
            stats=stats,
        )
        return stats.partial_matches, control.stopped

    def exhaustive(graph, k):
        stats = EngineStats()
        match(graph, generate_clique(k), callback=lambda m: None, stats=stats)
        return stats.partial_matches

    orkut_partial, orkut_found = explored(orkut, EXISTENCE_K)
    orkut_full = exhaustive(orkut, EXISTENCE_K)
    patents_partial, patents_found = explored(patents, EXISTENCE_K)
    with capsys.disabled():
        print("\n=== Table 6 shape: clique existence ===")
        print(f"orkut-like:   found={orkut_found}, partial matches={orkut_partial}"
              f" (exhaustive search: {orkut_full})")
        print(f"patents-like: found={patents_found}, partial matches={patents_partial}")
    if orkut_found:
        # Early termination: the positive query explores strictly less
        # than enumerating every clique in the same graph (the paper's
        # observation that a clique-containing graph answers quickly,
        # while a graph without one is searched exhaustively).
        assert orkut_partial < orkut_full
