"""Figure 11: 4-motif execution-time breakdown (PO / Core / Non-Core / Other).

The paper's shape: the Non-Core stage (intersections completing matches)
dominates; matching the core is comparatively insignificant because it is
fully guided by the matching orders.
"""

import pytest

from benchmarks.common import run_once

from repro.core import count
from repro.pattern import generate_all_vertex_induced
from repro.profiling import StageTimer


def four_motif_breakdown(graph) -> StageTimer:
    timer = StageTimer()
    for motif in generate_all_vertex_induced(4):
        count(graph, motif, edge_induced=False, timer=timer)
    return timer


@pytest.mark.paper_artifact("figure11")
@pytest.mark.parametrize("dataset", ["mico_small", "patents_small"])
def test_4motif_breakdown(benchmark, request, dataset):
    graph = request.getfixturevalue(dataset)
    timer = run_once(benchmark, lambda: four_motif_breakdown(graph))
    shares = timer.shares()
    for stage, share in shares.items():
        benchmark.extra_info[f"share_{stage}"] = round(share, 3)


@pytest.mark.paper_artifact("figure11")
def test_print_fig11_shape(mico_small, capsys):
    from repro.reporting import stacked_bar

    timer = four_motif_breakdown(mico_small)
    shares = timer.shares()
    with capsys.disabled():
        print("\n=== Figure 11 shape: 4-motif time breakdown (mico) ===")
        print(stacked_bar(shares, width=60))
    # The paper's claim: completing matches (non-core intersections)
    # dominates the algorithmic stages, and core matching is
    # comparatively small.  'other' is not compared: in CPython the
    # interpreter's recursion/bookkeeping overhead lands there and is
    # proportionally far larger than in the paper's C++ (EXPERIMENTS.md
    # records the shares with this caveat).
    assert shares["noncore"] > shares["core"]
    assert shares["noncore"] > shares["po"]
