"""Figure 1b/1c: exploration-cost profiling across systems.

Reproduces the paper's profiling tables: total matches explored (with the
multiple of the result size), canonicality checks, and isomorphism checks,
for 4-clique counting (Fig 1b) and 3-motif counting (Fig 1c) on the
patents stand-in.  Peregrine's row must show zero checks and an explored
count close to the result size; the baselines' rows must show large
multiples and nonzero checks — that *shape* is the paper's argument.
"""

import pytest

from benchmarks.common import run_once

from repro.baselines import (
    bfs_clique_count,
    bfs_motif_count,
    dfs_clique_count,
    dfs_motif_count,
    rstream_clique_count,
    rstream_motif_count,
)
from repro.core import EngineStats, count, count_many
from repro.pattern import generate_all_vertex_induced, generate_clique
from repro.profiling import ExplorationCounters, format_fig1_row


def engine_clique_counters(graph, k: int) -> ExplorationCounters:
    stats = EngineStats()
    result = count(graph, generate_clique(k), stats=stats)
    return ExplorationCounters(
        system="peregrine",
        matches_explored=stats.partial_matches,
        canonicality_checks=0,
        isomorphism_checks=0,
        result_size=result,
    )


def engine_motif_counters(graph, size: int) -> ExplorationCounters:
    total_partial = 0
    total_result = 0
    for motif in generate_all_vertex_induced(size):
        stats = EngineStats()
        total_result += count(graph, motif, edge_induced=False, stats=stats)
        total_partial += stats.partial_matches
    return ExplorationCounters(
        system="peregrine",
        matches_explored=total_partial,
        result_size=total_result,
    )


CLIQUE_SYSTEMS = {
    "peregrine": engine_clique_counters,
    "arabesque-like": lambda g, k: bfs_clique_count(g, k)[1],
    "fractal-like": lambda g, k: dfs_clique_count(g, k)[1],
    "rstream-like": lambda g, k: rstream_clique_count(g, k)[1],
}

MOTIF_SYSTEMS = {
    "peregrine": engine_motif_counters,
    "arabesque-like": lambda g, s: bfs_motif_count(g, s)[1],
    "fractal-like": lambda g, s: dfs_motif_count(g, s)[1],
    "rstream-like": lambda g, s: rstream_motif_count(g, s)[1],
}


@pytest.mark.paper_artifact("figure1b")
@pytest.mark.parametrize("system", sorted(CLIQUE_SYSTEMS))
def test_fig1b_clique_profiling(benchmark, patents_small, system):
    counters = run_once(
        benchmark, lambda: CLIQUE_SYSTEMS[system](patents_small, 4)
    )
    benchmark.extra_info["explored"] = counters.matches_explored
    benchmark.extra_info["canonicality"] = counters.canonicality_checks
    benchmark.extra_info["isomorphism"] = counters.isomorphism_checks
    benchmark.extra_info["results"] = counters.result_size
    if system == "peregrine":
        assert counters.canonicality_checks == 0
        assert counters.isomorphism_checks == 0
    else:
        assert counters.canonicality_checks > 0


@pytest.mark.paper_artifact("figure1c")
@pytest.mark.parametrize("system", sorted(MOTIF_SYSTEMS))
def test_fig1c_motif_profiling(benchmark, patents_small, system):
    counters = run_once(
        benchmark, lambda: MOTIF_SYSTEMS[system](patents_small, 3)
    )
    benchmark.extra_info["explored"] = counters.matches_explored
    benchmark.extra_info["canonicality"] = counters.canonicality_checks
    benchmark.extra_info["isomorphism"] = counters.isomorphism_checks
    benchmark.extra_info["results"] = counters.result_size


@pytest.mark.paper_artifact("figure1")
def test_print_fig1_tables(patents_small, capsys):
    with capsys.disabled():
        header = (
            f"\n{'system':<14} {'explored':>14} {'(xresult)':>10} "
            f"{'canonicality':>14} {'isomorphism':>14}"
        )
        print("\n=== Figure 1b: 4-clique profiling (patents stand-in) ===")
        print(header)
        for name, fn in CLIQUE_SYSTEMS.items():
            counters = fn(patents_small, 4)
            counters.system = name
            print(format_fig1_row(counters))
        print("\n=== Figure 1c: 3-motif profiling (patents stand-in) ===")
        print(header)
        for name, fn in MOTIF_SYSTEMS.items():
            counters = fn(patents_small, 3)
            counters.system = name
            print(format_fig1_row(counters))
