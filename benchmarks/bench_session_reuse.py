"""Session-reuse benchmark: cold per-call API vs. warm ``MiningSession``.

The service scenario the session API exists for: the same multi-pattern
workload (a motif census) arrives repeatedly against one graph.

* **cold** — the pre-session worst case: every query arrives with a
  fresh ``DataGraph`` handle, so each ``count()`` re-derives the degree
  ordering, rebuilds the CSR shared view, and regenerates the
  exploration plan;
* **warm** — one :class:`~repro.core.session.MiningSession` pinned on
  the graph serves every query: ordering and view are derived once for
  the whole run;
* **warm-repeat** — a second identical round on the same session: on top
  of the shared graph state, every plan and start list is a cache hit.

Two workload regimes are measured.  The *light* census (3-motifs on a
larger graph) is derivation-dominated — the regime where reuse pays
(measured ~1.5x warm, ~2.5x on repeat rounds).  The *heavy* census
(4-motifs) is match-enumeration-dominated — reuse is then merely free,
which the numbers document (~1x): amortizing state can't speed up work
the engine genuinely has to do per query.

Machine-readable timings land in ``BENCH_session.json`` at the repo root
so future PRs have a regression baseline.  Run the full measurement
(writes the JSON, prints the table)::

    python -m pytest benchmarks/bench_session_reuse.py -q -s

The ``fast``-marked smoke test is wired into CI so this harness cannot
silently rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.common import speedup, timed

from repro.core import MiningSession, count
from repro.graph import DataGraph, erdos_renyi
from repro.pattern import generate_all_vertex_induced

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_session.json"

ROUNDS = 3

# name -> (n, avg degree, motif size, reuse-dominated?)
WORKLOADS = {
    "3-motif-census-light": (8000, 6, 3, True),
    "4-motif-census-heavy": (400, 8, 4, False),
}


def _bench_graph(n: int, degree: int, seed: int = 21) -> DataGraph:
    return erdos_renyi(n, min(1.0, degree / (n - 1)), seed=seed)


def _fresh_handle(graph: DataGraph) -> DataGraph:
    """A cold copy of ``graph``: same topology, no derived caches."""
    return DataGraph(
        [graph.neighbors(v) for v in graph.vertices()],
        labels=graph.labels(),
        name=graph.name,
        validate=False,
    )


def _cold_round(handles, patterns) -> dict:
    """Per-call API with a fresh graph handle per query (no shared state)."""
    return {
        p: count(h, p, edge_induced=False)
        for h, p in zip(handles, patterns)
    }


def _measure(graph: DataGraph, patterns) -> dict:
    # The cold handles are built OUTSIDE the timed region: a real cold
    # caller already holds its graph — only the per-query re-derivation
    # of ordering/CSR view/plan should be charged to the cold path.
    handles = [_fresh_handle(graph) for _ in patterns]
    cold_seconds, cold_counts = timed(lambda: _cold_round(handles, patterns))

    session = MiningSession(graph)
    warm_seconds, warm_counts = timed(
        lambda: session.count_many(patterns, edge_induced=False)
    )
    repeat_seconds, repeat_counts = timed(
        lambda: session.count_many(patterns, edge_induced=False)
    )
    assert cold_counts == warm_counts == repeat_counts, "cold/warm disagree"
    return {
        "patterns": len(patterns),
        "matches_total": sum(warm_counts.values()),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_repeat_seconds": repeat_seconds,
        "warm_speedup_vs_cold": speedup(cold_seconds, warm_seconds),
        "repeat_speedup_vs_cold": speedup(cold_seconds, repeat_seconds),
        "session_cache": session.cache_info(),
    }


@pytest.mark.fast
@pytest.mark.paper_artifact("session-reuse")
def test_session_smoke():
    """CI smoke: warm session agrees with the cold per-call API."""
    graph = _bench_graph(n=120, degree=8)
    patterns = generate_all_vertex_induced(3)
    entry = _measure(graph, patterns)
    assert entry["matches_total"] > 0
    # Reuse happened: one ordering/view, plans all cache-hit on repeat.
    cache = entry["session_cache"]
    assert cache["ordered_built"] and cache["view_built"]
    assert cache["plan_hits"] >= len(patterns)


@pytest.mark.paper_artifact("session-reuse")
def test_session_reuse_emits_json(capsys):
    """Full measurement: warm session beats cold per-call API, log it."""
    results = {}
    for name, (n, degree, size, reuse_dominated) in WORKLOADS.items():
        graph = _bench_graph(n, degree)
        patterns = generate_all_vertex_induced(size)
        rounds = [
            _measure(_fresh_handle(graph), patterns) for _ in range(ROUNDS)
        ]
        best = max(rounds, key=lambda e: e["warm_speedup_vs_cold"])
        results[name] = {
            "n": n,
            "avg_degree_target": degree,
            "motif_size": size,
            "reuse_dominated": reuse_dominated,
            "rounds": rounds,
            "best_warm_speedup_vs_cold": best["warm_speedup_vs_cold"],
            "best_repeat_speedup_vs_cold": max(
                e["repeat_speedup_vs_cold"] for e in rounds
            ),
        }

    payload = {
        "bench": "session-reuse",
        "rounds_per_workload": ROUNDS,
        "note": (
            "Wall-clock seconds for vertex-induced motif censuses: cold "
            "= per-call api with a fresh DataGraph handle per query "
            "(re-derives ordering/CSR view/plan every time), warm = one "
            "MiningSession (ordering+view shared, plans cached), "
            "warm_repeat = second census on the same session (all plan "
            "cache hits).  The light census is derivation-dominated "
            "(reuse pays); the heavy census is match-dominated (reuse "
            "is free)."
        ),
        "workloads": results,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== session reuse (motif censuses, seconds) ===")
        print(
            f"{'workload':<24} {'round':>5} {'cold':>9} {'warm':>9}"
            f" {'repeat':>9} {'warm-x':>7} {'rep-x':>7}"
        )
        for name, entry in results.items():
            for i, row in enumerate(entry["rounds"]):
                print(
                    f"{name:<24} {i:>5} {row['cold_seconds']:>9.4f}"
                    f" {row['warm_seconds']:>9.4f}"
                    f" {row['warm_repeat_seconds']:>9.4f}"
                    f" {row['warm_speedup_vs_cold']:>6.2f}x"
                    f" {row['repeat_speedup_vs_cold']:>6.2f}x"
                )
        print(f"wrote {OUTPUT_PATH}")

    # Acceptance: on the derivation-dominated workload, amortizing
    # ordering/view/plan derivation across the census is a real win.
    light = results["3-motif-census-light"]
    assert light["best_warm_speedup_vs_cold"] > 1.1, (
        "session reuse no longer wins on the derivation-dominated census"
    )
    # And reuse must never *hurt* the match-dominated workload.
    heavy = results["4-motif-census-heavy"]
    assert heavy["best_warm_speedup_vs_cold"] > 0.9
