"""Table 2: dataset statistics for the evaluation stand-ins.

Regenerates the dataset table (|V|, |E|, |L|, max/avg degree) for the four
stand-in graphs.  Benchmarks dataset *generation* cost so the suite also
documents how long the substrate takes to build.
"""

import pytest

from repro.graph import (
    friendster_like,
    graph_stats,
    mico_like,
    orkut_like,
    patents_like,
    stats_table,
)

GENERATORS = {
    "mico": lambda: mico_like(0.30),
    "patents": lambda: patents_like(0.30),
    "patents-labeled": lambda: patents_like(0.30, labeled=True),
    "orkut": lambda: orkut_like(0.15),
    "friendster": lambda: friendster_like(0.15),
}


@pytest.mark.paper_artifact("table2")
@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_dataset_generation(benchmark, name):
    graph = benchmark(GENERATORS[name])
    stats = graph_stats(graph)
    benchmark.extra_info["vertices"] = stats.num_vertices
    benchmark.extra_info["edges"] = stats.num_edges
    benchmark.extra_info["labels"] = stats.num_labels
    benchmark.extra_info["max_degree"] = stats.max_degree
    benchmark.extra_info["avg_degree"] = round(stats.avg_degree, 1)


@pytest.mark.paper_artifact("table2")
def test_print_table2(capsys):
    graphs = [fn() for fn in GENERATORS.values()]
    with capsys.disabled():
        print("\n=== Table 2 (stand-in datasets) ===")
        print(stats_table(graphs))
