"""Design-choice ablations beyond the paper's figures.

DESIGN.md calls out several load-bearing choices in the engine and the
FSM substrate; each gets an A/B bench here:

* **high-to-low matching order traversal + degree ordering** (§5.2) —
  compared against starting tasks from low-degree vertices (the paper's
  argument: hub tasks prune more when walked high-to-low, shrinking the
  per-task variance that causes stragglers);
* **tail counting** — the engine's final completion step can count the
  last candidate set instead of enumerating it; compared by forcing
  enumeration with a callback;
* **FSM domain backend** — dense int-backed bitsets vs roaring-like
  compressed bitmaps (§5.5): bytes and wall time on the same workload;
* **stabilizer-chain planning** — plan-generation latency across pattern
  families, including the 14-clique whose group is 14! (the case that
  makes materializing automorphisms unusable);
* **AutoMine-like schedules vs PRG-U** — the paper models AutoMine with
  PRG-U; both are guided-but-symmetry-unaware, so their explored-match
  counts should sit within a small factor of each other.
"""

import pytest

from benchmarks.common import run_once, timed

from repro.baselines import automine_count, prgu_count_raw
from repro.bitmap import RoaringBitmap
from repro.core import EngineStats, count, generate_plan, match
from repro.core.engine import run_tasks
from repro.mining import fsm
from repro.pattern import generate_clique
from repro.pattern.evaluation import pattern_p1
from repro.profiling import ExplorationCounters


# ----------------------------------------------------------------------
# Task ordering (§5.2)
# ----------------------------------------------------------------------


@pytest.mark.paper_artifact("ablation")
@pytest.mark.parametrize("order", ["hub-first", "leaf-first"])
def test_task_order(benchmark, orkut, order):
    """Hub-first task issue order vs leaf-first (same total work)."""
    plan = generate_plan(pattern_p1())
    ordered, _ = orkut.degree_ordered()
    n = ordered.num_vertices
    starts = range(n - 1, -1, -1) if order == "hub-first" else range(n)

    def run():
        return run_tasks(ordered, plan, start_vertices=starts, count_only=True)

    matches = run_once(benchmark, run)
    benchmark.extra_info["matches"] = matches


# ----------------------------------------------------------------------
# Tail counting
# ----------------------------------------------------------------------


@pytest.mark.paper_artifact("ablation")
@pytest.mark.parametrize("mode", ["count-tail", "enumerate"])
def test_tail_counting(benchmark, patents, mode):
    """count() (tail fast path) vs match() with a counting callback."""
    clique = generate_clique(4)
    if mode == "count-tail":
        n = run_once(benchmark, lambda: count(patents, clique))
    else:
        def enumerate_all():
            seen = [0]

            def cb(_):
                seen[0] += 1

            match(patents, clique, callback=cb)
            return seen[0]

        n = run_once(benchmark, enumerate_all)
    benchmark.extra_info["matches"] = n


# ----------------------------------------------------------------------
# FSM domain backend (§5.5)
# ----------------------------------------------------------------------


@pytest.mark.paper_artifact("ablation")
@pytest.mark.parametrize("backend", ["dense-int", "roaring"])
def test_fsm_domain_backend(benchmark, mico_small, backend):
    factory = None if backend == "dense-int" else RoaringBitmap

    def run():
        return fsm(mico_small, 2, 3, bitset_factory=factory)

    result = run_once(benchmark, run)
    benchmark.extra_info["frequent"] = len(result.frequent)
    benchmark.extra_info["domain_bytes"] = result.domain_bytes


@pytest.mark.paper_artifact("ablation")
def test_print_domain_backend_shape(mico_small, capsys):
    """Same supports from both backends; report the byte trade-off."""
    dense = fsm(mico_small, 2, 3)
    roaring = fsm(mico_small, 2, 3, bitset_factory=RoaringBitmap)
    assert sorted(dense.frequent.values()) == sorted(roaring.frequent.values())
    with capsys.disabled():
        print("\n=== FSM domain backend ===")
        print(f"dense-int bytes:  {dense.domain_bytes:>10,}")
        print(f"roaring bytes:    {roaring.domain_bytes:>10,}")


# ----------------------------------------------------------------------
# Plan-generation latency (stabilizer chain)
# ----------------------------------------------------------------------


@pytest.mark.paper_artifact("ablation")
@pytest.mark.parametrize("k", [4, 8, 14])
def test_plan_latency_cliques(benchmark, k):
    """Planning a k-clique is polynomial despite |Aut| = k!."""
    plan = benchmark(lambda: generate_plan(generate_clique(k)))
    assert len(plan.ordered_cores) == 1  # total order -> one extension


# ----------------------------------------------------------------------
# AutoMine-like vs PRG-U (the paper's modeling assumption)
# ----------------------------------------------------------------------


@pytest.mark.paper_artifact("ablation")
def test_print_automine_vs_prgu(mico_small, capsys):
    clique = generate_clique(3)
    counters = ExplorationCounters(system="automine-like")
    t_am, n_am = timed(
        lambda: automine_count(mico_small, clique, counters=counters)
    )
    t_pu, raw_pu = timed(lambda: prgu_count_raw(mico_small, clique))
    stats = EngineStats()
    t_prg, n_prg = timed(lambda: count(mico_small, clique, stats=stats))
    assert n_am == n_prg == raw_pu // 6
    with capsys.disabled():
        print("\n=== AutoMine-like vs PRG-U vs Peregrine (3-cliques) ===")
        print(f"automine-like: {t_am:.4f}s  explored={counters.matches_explored:,}")
        print(f"prg-u raw:     {t_pu:.4f}s  matches(raw)={raw_pu:,}")
        print(f"peregrine:     {t_prg:.4f}s  partial={stats.partial_matches:,}")
    # Both unaware systems explore ~|Aut| more complete matches than the
    # engine reports; Peregrine touches the fewest partial matches.
    assert stats.partial_matches < counters.matches_explored


# ----------------------------------------------------------------------
# Engine dispatch: vectorized vs reference across the feature matrix
# ----------------------------------------------------------------------

WORKLOADS = {
    "unlabeled-clique": lambda: (generate_clique(4), {}),
    "labeled-chain": lambda: (_labeled_chain(), {}),
    "vertex-induced-star": lambda: (_star3(), {"edge_induced": False}),
    "anti-edge-square": lambda: (_anti_square(), {}),
    "anti-vertex-maximal": lambda: (_maximal3(), {}),
}


def _labeled_chain():
    from repro.pattern import generate_chain

    p = generate_chain(3)
    p.set_label(0, 0)
    p.set_label(2, 1)
    return p


def _star3():
    from repro.pattern import generate_star

    return generate_star(3)


def _anti_square():
    from repro.pattern import Pattern

    p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    p.add_anti_edge(0, 2)
    return p


def _maximal3():
    from repro.mining.cliques import maximal_clique_pattern

    return maximal_clique_pattern(3)


@pytest.mark.paper_artifact("ablation")
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("engine", ["accel", "reference"])
def test_engine_dispatch(benchmark, patents_labeled, workload, engine):
    """Vectorized vs interpreted engine on every pattern-feature class.

    Before the accelerated engine covered the full matrix, everything
    except ``unlabeled-clique`` was outside its supported subset; this
    bench documents that the vectorized path now engages on labeled,
    vertex-induced and anti-constraint workloads too, and measures the
    density crossover that ``engine="auto"`` encodes
    (``repro.core.api.ACCEL_MIN_AVG_DEGREE``).
    """
    pattern, kwargs = WORKLOADS[workload]()
    plan = generate_plan(pattern, **{**kwargs, "symmetry_breaking": True})
    benchmark.extra_info["features"] = plan.features()

    def run():
        return count(patents_labeled, pattern, engine=engine, **kwargs)

    matches = run_once(benchmark, run)
    benchmark.extra_info["matches"] = matches


@pytest.mark.paper_artifact("ablation")
def test_print_engine_dispatch_parity(patents_labeled, capsys):
    """Both engines agree on every feature combination (spot check)."""
    rows = []
    for name in sorted(WORKLOADS):
        pattern, kwargs = WORKLOADS[name]()
        t_acc, n_acc = timed(
            lambda: count(patents_labeled, pattern, engine="accel", **kwargs)
        )
        t_ref, n_ref = timed(
            lambda: count(patents_labeled, pattern, engine="reference", **kwargs)
        )
        assert n_acc == n_ref
        rows.append((name, n_acc, t_acc, t_ref))
    with capsys.disabled():
        print("\n=== engine dispatch: accel vs reference ===")
        for name, n, t_acc, t_ref in rows:
            ratio = t_ref / t_acc if t_acc else float("inf")
            print(
                f"{name:<22} matches={n:>10,}  accel={t_acc:.4f}s"
                f"  reference={t_ref:.4f}s  speedup={ratio:.1f}x"
            )


# ----------------------------------------------------------------------
# Label-indexed task seeding (G-Miner's trick as an engine option)
# ----------------------------------------------------------------------


@pytest.mark.paper_artifact("ablation")
@pytest.mark.parametrize("mode", ["indexed", "unindexed"])
def test_label_index(benchmark, mico_small, mode):
    """Fully labeled 3-chain: seeding only label-compatible tasks."""
    from repro.pattern import generate_chain

    p = generate_chain(3)
    for u in range(3):
        p.set_label(u, u % 3)

    def run():
        return match(mico_small, p, label_index=(mode == "indexed"))

    n = run_once(benchmark, run)
    benchmark.extra_info["matches"] = n
