"""Approximate-counting benchmark: the sampling tier vs exact fusion.

ROADMAP item 4's estimator trades enumeration for inference: sampled
level-0 frontiers ride the same fused engine passes as the exact tier
(``repro.mining.sampling``), hub-first strata are counted exactly, and
uniform tail rounds are Horvitz-Thompson reweighted into unbiased
census estimates with Student-t confidence intervals.

The workload is the acceptance census: the four sparse 4-vertex motifs
(star, path, tailed triangle, cycle) on a truncated power-law graph —
the regime neighborhood sampling is built for, where the degree cutoff
bounds per-start work so the exhausted hub stratum stays cheap while
the homogeneous tail samples faithfully.  Eight seeded repetitions run
the identical estimator; the artifact records per-seed timing, achieved
per-motif error against the exact fused census, and empirical CI
coverage across all seed x motif cells.

Aggregation is fixed and recorded in the artifact: speedup compares the
exact wall time against the *median* repetition, accuracy is the
per-motif *median* achieved error (worst cell recorded alongside), and
coverage counts every cell — no repetition is dropped.

Acceptance (pinned in ``tests/test_bench_schema.py``): speedup >= 5x,
median achieved relative error <= 5% on every motif, CI coverage >= 90%
for the 95% intervals.

Run the full measurement (writes ``BENCH_approx.json``)::

    python -m pytest benchmarks/bench_approx.py -q -s

The ``fast``-marked smoke is part of the CI benchmark matrix.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

import pytest

from benchmarks.common import timed

from repro.core.session import MiningSession
from repro.graph.generators import power_law
from repro.mining.sampling import ApproxCount, approx_count_many
from repro.pattern.generators import generate_all_vertex_induced, generate_clique

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_approx.json"

# The acceptance graph: a truncated power-law (gamma on [d_min, d_max]).
# The cutoff matters — it is what keeps the top-1024 hub stratum from
# holding a third of the census work, which is exactly the regime where
# hub exhaustion caps the estimator's speedup.
GRAPH = dict(n=150_000, gamma=3.0, d_min=8, d_max=32, seed=17)

# The four sparse 4-vertex motifs; diamond and 4-clique are excluded
# because the configuration model realizes O(1) of them at this density
# (relative error against a count of ~0 is not a meaningful target).
MOTIF_NAMES = ("4-star", "4-path", "tailed-triangle", "4-cycle")

REL_ERR = 0.05
MAX_SAMPLES = 20_000
HUB_EXHAUST = 1_024
ROUND_STARTS = 1_024
SEEDS = tuple(range(1, 9))


def census_motifs():
    return generate_all_vertex_induced(4)[: len(MOTIF_NAMES)]


def _measure_rep(session, motifs, exact, seed: int) -> dict:
    """One seeded estimator run: timing, achieved error, CI coverage."""
    elapsed, results = timed(
        lambda: approx_count_many(
            session,
            motifs,
            rel_err=REL_ERR,
            max_samples=MAX_SAMPLES,
            seed=seed,
            hub_exhaust=HUB_EXHAUST,
            round_starts=ROUND_STARTS,
            edge_induced=False,
        )
    )
    errors, covered = {}, {}
    for name, motif in zip(MOTIF_NAMES, motifs):
        r = results[motif]
        truth = exact[motif]
        errors[name] = abs(r.estimate - truth) / truth
        covered[name] = bool(r.ci_low <= truth <= r.ci_high)
    samples = results[motifs[0]].samples
    return {
        "seed": seed,
        "seconds": elapsed,
        "samples": samples,
        "rel_err": errors,
        "in_ci": covered,
    }


@pytest.mark.fast
@pytest.mark.paper_artifact("approx")
def test_approx_smoke():
    """CI smoke: estimates carry honest intervals, full budgets go exact."""
    graph = power_law(3_000, gamma=2.5, d_min=4, seed=3)
    session = MiningSession(graph)
    triangle = generate_clique(3)
    exact = session.count(triangle)
    estimate = session.count(triangle, approx=0.05, max_samples=600, seed=1)
    assert isinstance(estimate, ApproxCount)
    assert not estimate.exact
    assert estimate.within(exact, slack=4.0)
    # A budget covering the whole frontier degenerates to the exact count.
    full = session.count(
        triangle, approx=0.05, max_samples=graph.num_vertices, seed=1
    )
    assert full.exact
    assert float(full) == float(exact)


@pytest.mark.paper_artifact("approx")
def test_approx_emits_json(capsys):
    """Full census: >= 5x over exact fusion at <= 5% median error."""
    graph = power_law(**GRAPH)
    motifs = census_motifs()
    session = MiningSession(graph)
    # Warm plans, CSR view and the census transform off the clock with a
    # two-start pass; the timed exact run then measures pure mining.
    session.count_many(motifs, edge_induced=False, start_vertices=[0, 1])
    exact_seconds, exact = timed(
        lambda: session.count_many(motifs, edge_induced=False)
    )

    reps = [_measure_rep(session, motifs, exact, seed) for seed in SEEDS]

    median_seconds = statistics.median(r["seconds"] for r in reps)
    speedup = exact_seconds / median_seconds
    median_err = {
        name: statistics.median(r["rel_err"][name] for r in reps)
        for name in MOTIF_NAMES
    }
    worst_err = max(max(r["rel_err"].values()) for r in reps)
    cells = [r["in_ci"][name] for r in reps for name in MOTIF_NAMES]
    coverage = sum(cells) / len(cells)

    payload = {
        "bench": "approx",
        "graph": dict(GRAPH, edges=graph.num_edges),
        "motifs": list(MOTIF_NAMES),
        "rel_err_target": REL_ERR,
        "confidence": 0.95,
        "max_samples": MAX_SAMPLES,
        "hub_exhaust": HUB_EXHAUST,
        "round_starts": ROUND_STARTS,
        "note": (
            "Sampling-tier census (approx_count_many: hub-first exact "
            "stratum + uniform with-replacement tail rounds through the "
            "shared fused walk, Horvitz-Thompson reweighted, Student-t "
            "intervals) against the exact fused census on the same "
            "session.  Eight seeded repetitions of the identical "
            "estimator; speedup = exact_seconds / median rep seconds, "
            "accuracy = per-motif median achieved |estimate - exact| / "
            "exact (worst single cell recorded as worst_rel_err), "
            "ci_coverage = covered cells / all seed x motif cells.  "
            "Acceptance: speedup >= 5, every motif's median error <= "
            "5%, coverage >= 90%."
        ),
        "exact": {
            "seconds": exact_seconds,
            "counts": {
                name: exact[motif]
                for name, motif in zip(MOTIF_NAMES, motifs)
            },
        },
        "reps": reps,
        "acceptance": {
            "speedup": speedup,
            "median_seconds": median_seconds,
            "max_rel_err": max(median_err.values()),
            "median_rel_err": median_err,
            "worst_rel_err": worst_err,
            "ci_coverage": coverage,
            "cells": len(cells),
        },
    }
    assert speedup >= 5.0, f"sampling tier won only {speedup:.1f}x"
    assert max(median_err.values()) <= REL_ERR, (
        f"median achieved error {median_err} blew the 5% target"
    )
    assert coverage >= 0.90, f"CI coverage {coverage:.0%} below nominal"
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== sampling tier vs exact fused census ===")
        print(
            f"exact {exact_seconds:6.2f}s   approx median "
            f"{median_seconds:6.2f}s   x{speedup:.2f}"
        )
        for name in MOTIF_NAMES:
            print(f"{name:16s} median err {median_err[name]:6.2%}")
        print(
            f"worst cell {worst_err:.2%}   CI coverage {coverage:.0%} "
            f"over {len(cells)} cells"
        )
        print(f"wrote {OUTPUT_PATH}")
