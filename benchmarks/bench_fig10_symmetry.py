"""Figure 10: the symmetry-breaking ablation (PRG vs PRG-U).

4-motifs and FSM, with and without symmetry breaking.  The paper's shape:
PRG-U loses by roughly the automorphism redundancy on motifs (an order of
magnitude for 4-motifs) and by ~3x on FSM due to redundant domain writes.
"""

import pytest

from benchmarks.common import run_once, timed

from repro.baselines import prgu_fsm, prgu_motif_counts
from repro.mining import fsm, motif_counts


@pytest.mark.paper_artifact("figure10")
@pytest.mark.parametrize("dataset", ["mico_small", "patents_small"])
@pytest.mark.parametrize("mode", ["prg", "prg-u"])
def test_4motifs(benchmark, request, dataset, mode):
    graph = request.getfixturevalue(dataset)
    if mode == "prg":
        counts = run_once(benchmark, lambda: motif_counts(graph, 4))
    else:
        counts = run_once(benchmark, lambda: prgu_motif_counts(graph, 4))
    benchmark.extra_info["total"] = sum(counts.values())


@pytest.mark.paper_artifact("figure10")
@pytest.mark.parametrize("threshold", [3, 5])
@pytest.mark.parametrize("mode", ["prg", "prg-u"])
def test_fsm(benchmark, mico_small, threshold, mode):
    if mode == "prg":
        result = run_once(benchmark, lambda: fsm(mico_small, 2, threshold))
    else:
        result = run_once(benchmark, lambda: prgu_fsm(mico_small, 2, threshold))
    benchmark.extra_info["frequent"] = len(result.frequent)
    benchmark.extra_info["domain_writes"] = result.domain_writes


@pytest.mark.paper_artifact("figure10")
def test_print_fig10_shape(mico_small, capsys):
    t_prg, aware = timed(lambda: motif_counts(mico_small, 4))
    t_prgu, unaware = timed(lambda: prgu_motif_counts(mico_small, 4))
    assert aware == unaware  # identical results after correction
    f_prg = fsm(mico_small, 2, 3)
    f_prgu = prgu_fsm(mico_small, 2, 3)
    with capsys.disabled():
        print("\n=== Figure 10 shape ===")
        print(f"4-motifs: PRG {t_prg:.3f}s, PRG-U {t_prgu:.3f}s "
              f"({t_prgu / t_prg:.1f}x slower)")
        print(f"FSM domain writes: PRG {f_prg.domain_writes}, "
              f"PRG-U {f_prgu.domain_writes} "
              f"({f_prgu.domain_writes / max(1, f_prg.domain_writes):.2f}x)")
    # Symmetry breaking must win on wall time and never lose on writes.
    assert t_prgu > t_prg
    assert f_prgu.domain_writes >= f_prg.domain_writes
