"""Shared fixtures for the benchmark suite.

Dataset stand-ins are generated once per session at scales chosen so the
full ``pytest benchmarks/ --benchmark-only`` run finishes in minutes of
pure Python while still separating the systems the way the paper's
evaluation does.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import pytest

from repro.graph import (
    friendster_like,
    mico_like,
    orkut_like,
    patents_like,
)

# Scales for engine-only workloads (larger) and baseline comparisons
# (smaller: the pattern-oblivious systems explore orders of magnitude more).
ENGINE_SCALE = 0.30
BASELINE_SCALE = 0.10


@pytest.fixture(scope="session")
def mico():
    return mico_like(ENGINE_SCALE)


@pytest.fixture(scope="session")
def patents():
    return patents_like(ENGINE_SCALE)


@pytest.fixture(scope="session")
def patents_labeled():
    return patents_like(ENGINE_SCALE, labeled=True)


@pytest.fixture(scope="session")
def orkut():
    return orkut_like(0.15)


@pytest.fixture(scope="session")
def friendster():
    return friendster_like(0.15)


@pytest.fixture(scope="session")
def mico_small():
    return mico_like(BASELINE_SCALE)


@pytest.fixture(scope="session")
def patents_small():
    return patents_like(BASELINE_SCALE)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): maps a benchmark to a paper table/figure"
    )
    config.addinivalue_line(
        "markers", "fast: benchmark smoke tests cheap enough for every CI run"
    )
