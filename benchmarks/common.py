"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.errors import BudgetExceeded, MemoryBudgetExceeded

__all__ = ["run_once", "timed", "guarded", "speedup"]


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Benchmark an expensive function with a single round.

    Mining runs are deterministic, so one round gives a faithful number
    without multiplying the suite's wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call (for ratio computations outside pytest-benchmark)."""
    begin = time.perf_counter()
    result = fn()
    return time.perf_counter() - begin, result


def guarded(fn: Callable[[], Any]) -> tuple[str, Any]:
    """Run a baseline that may exhaust its budget.

    Returns ``("ok", result)``, ``("timeout", None)`` for step-budget
    exhaustion (the paper's 'x' cells) or ``("oom", None)`` for store
    blowups (the paper's '—' and '/' cells).
    """
    try:
        return "ok", fn()
    except BudgetExceeded:
        return "timeout", None
    except MemoryBudgetExceeded:
        return "oom", None


def speedup(baseline_seconds: float, ours_seconds: float) -> float:
    """Baseline-over-ours ratio, guarding the zero denominator."""
    if ours_seconds <= 0:
        return float("inf")
    return baseline_seconds / ours_seconds
