"""Figure 12: scalability of matching p1 on the orkut stand-in.

Two measurements:

* measured wall-clock speedup with a fork-based process pool (true
  parallelism; meaningful only on multi-core hosts — the harness records
  the host's CPU count alongside);
* work-partition speedup: total single-thread time divided by the largest
  per-worker slice time when start vertices are strided across workers.
  This isolates the paper's claim — the degree-ordered task decomposition
  balances load — from the host's core count.

Also reproduces the near-zero load-imbalance observation (§6.7): the gap
between per-thread match counts under dynamic chunked scheduling.
"""

import os

import pytest

from benchmarks.common import run_once, timed

from repro.core import count, generate_plan, run_tasks
from repro.pattern import pattern_p1
from repro.runtime import parallel_match, process_count

WORKERS = [1, 2, 4]


@pytest.mark.paper_artifact("figure12")
@pytest.mark.parametrize("workers", WORKERS)
def test_process_scaling(benchmark, orkut, workers):
    result = run_once(
        benchmark, lambda: process_count(orkut, pattern_p1(), num_processes=workers)
    )
    benchmark.extra_info["matches"] = result
    benchmark.extra_info["host_cpus"] = os.cpu_count()


@pytest.mark.paper_artifact("figure12")
def test_work_partition_speedup(orkut, capsys):
    """Simulated speedup: strided task partitions, sequential timing."""
    ordered, _ = orkut.degree_ordered()
    plan = generate_plan(pattern_p1())
    n = ordered.num_vertices
    t_total, _ = timed(lambda: run_tasks(ordered, plan, count_only=True))
    rows = []
    for workers in WORKERS:
        slice_times = []
        for offset in range(workers):
            starts = range(n - 1 - offset, -1, -workers)
            t_slice, _ = timed(
                lambda s=starts: run_tasks(
                    ordered, plan, start_vertices=s, count_only=True
                )
            )
            slice_times.append(t_slice)
        simulated = t_total / max(slice_times)
        rows.append((workers, simulated))
    with capsys.disabled():
        print("\n=== Figure 12 shape: work-partition speedup (p1, orkut) ===")
        print(f"host cpus: {os.cpu_count()}")
        for workers, sim in rows:
            print(f"  {workers} workers: {sim:.2f}x (ideal {workers}x)")
    # Balanced decomposition: speedup grows with workers and reaches at
    # least ~60% of ideal at the largest width.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][1] > 0.6 * WORKERS[-1]


@pytest.mark.paper_artifact("figure12")
def test_load_imbalance_near_zero(orkut, capsys):
    result = parallel_match(orkut, pattern_p1(), num_threads=4, chunk_size=2)
    with capsys.disabled():
        print(f"\nmatch-placement imbalance: {result.load_imbalance():.3f} "
              f"(per-thread matches {result.per_thread_matches})")
        print(f"thread CPU-time imbalance: {result.time_imbalance():.3f} "
              f"(per-thread cpu {[round(t, 3) for t in result.per_thread_cpu]})"
              " -- GIL-scheduled, informational only")
    assert result.matches == count(orkut, pattern_p1())
