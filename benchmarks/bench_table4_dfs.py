"""Table 4: Peregrine vs the depth-first system (Fractal).

Workloads: motifs, cliques, FSM and pattern matching p1-p6.  The paper's
shape: Peregrine is faster by an order of magnitude on most workloads; the
gap is largest on pattern matching, where Fractal's exploration is not
guided by matching orders or symmetry breaking.
"""

import pytest

from benchmarks.common import run_once, timed

from repro.baselines import (
    dfs_clique_count,
    dfs_fsm,
    dfs_motif_count,
    dfs_pattern_match,
)
from repro.core import count
from repro.mining import clique_count, fsm, motif_counts
from repro.pattern import evaluation_patterns

MATCH_PATTERNS = ["p1", "p3", "p4", "p5"]  # p6 is the 5h-timeout monster


@pytest.mark.paper_artifact("table4")
@pytest.mark.parametrize("system", ["peregrine", "fractal"])
def test_3motifs_patents(benchmark, patents_small, system):
    if system == "peregrine":
        run_once(benchmark, lambda: motif_counts(patents_small, 3))
    else:
        run_once(benchmark, lambda: dfs_motif_count(patents_small, 3))


@pytest.mark.paper_artifact("table4")
@pytest.mark.parametrize("k", [3, 4])
@pytest.mark.parametrize("system", ["peregrine", "fractal"])
def test_kcliques(benchmark, patents_small, k, system):
    if system == "peregrine":
        result = run_once(benchmark, lambda: clique_count(patents_small, k))
    else:
        result, _ = run_once(benchmark, lambda: dfs_clique_count(patents_small, k))
    benchmark.extra_info["cliques"] = result


@pytest.mark.paper_artifact("table4")
@pytest.mark.parametrize("system", ["peregrine", "fractal"])
def test_fsm_mico(benchmark, mico_small, system):
    if system == "peregrine":
        result = run_once(benchmark, lambda: fsm(mico_small, 2, 4))
        benchmark.extra_info["frequent"] = len(result.frequent)
    else:
        frequent, _ = run_once(benchmark, lambda: dfs_fsm(mico_small, 2, 4))
        benchmark.extra_info["frequent"] = len(frequent)


@pytest.mark.paper_artifact("table4")
@pytest.mark.parametrize("pattern_name", MATCH_PATTERNS)
@pytest.mark.parametrize("system", ["peregrine", "fractal"])
def test_pattern_matching(benchmark, patents_small, pattern_name, system):
    pattern = evaluation_patterns()[pattern_name]
    if system == "peregrine":
        result = run_once(benchmark, lambda: count(patents_small, pattern))
    else:
        result, _ = run_once(
            benchmark, lambda: dfs_pattern_match(patents_small, pattern)
        )
    benchmark.extra_info["matches"] = result


@pytest.mark.paper_artifact("table4")
def test_print_table4_shape(patents_small, capsys):
    rows = []
    for name in MATCH_PATTERNS:
        pattern = evaluation_patterns()[name]
        t_engine, ours = timed(lambda: count(patents_small, pattern))
        t_dfs, (theirs, _) = timed(
            lambda: dfs_pattern_match(patents_small, pattern)
        )
        assert ours == theirs
        rows.append((name, t_engine, t_dfs, t_dfs / max(t_engine, 1e-9)))
    with capsys.disabled():
        print("\n=== Table 4 shape: pattern matching on patents stand-in ===")
        print(f"{'pattern':<8} {'peregrine':>10} {'fractal-like':>13} {'speedup':>8}")
        for name, te, td, s in rows:
            print(f"{name:<8} {te:>9.3f}s {td:>12.3f}s {s:>7.1f}x")
    # The paper's shape: Peregrine wins on every matched pattern.
    assert all(s > 1.0 for *_, s in rows)
