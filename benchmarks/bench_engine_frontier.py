"""Frontier-batched engine benchmark: avg-degree sweep + perf baseline.

Compares the three engines — reference interpreter, per-match vectorized
(``accel``), frontier-batched (``accel-batch``) — across an average-degree
sweep, and writes the machine-readable timings to ``BENCH_engine.json`` at
the repo root so future PRs have a baseline to regress against.  The sweep
is what measured ``repro.core.api.ACCEL_BATCH_MIN_AVG_DEGREE``: frontier
batching amortizes numpy dispatch across whole match levels, so the batched
engine wins from avg degree ~2 upward — far below the per-match engine's
old crossover of 128 — including on single-vertex-core patterns, whose
tail count it vectorizes per frontier row.

Run the full sweep (writes ``BENCH_engine.json``, prints the table)::

    python -m pytest benchmarks/bench_engine_frontier.py -q -s

The ``fast``-marked smoke test is wired into CI so this harness cannot
silently rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.common import timed

from repro.core import count
from repro.graph import erdos_renyi
from repro.pattern import Pattern, generate_chain, generate_clique

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"

ENGINES = ("reference", "accel", "accel-batch")
SWEEP_N = 600
SWEEP_DEGREES = (2, 4, 8, 16, 32, 64, 128)

# One multi-vertex-core pattern per regime the dispatch rules reason
# about: core-intersection dominated (clique), mixed core+completion
# (tailed triangle), and tail-count dominated (single-vertex-core chain).
PATTERNS = {
    "triangle": lambda: generate_clique(3),
    "tailed-triangle": lambda: Pattern.from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3)]
    ),
    "chain-3": lambda: generate_chain(3),
}

MULTI_CORE_PATTERNS = ("triangle", "tailed-triangle")


def _sweep_graph(avg_degree: int, n: int = SWEEP_N, seed: int = 7):
    return erdos_renyi(n, min(1.0, avg_degree / (n - 1)), seed=seed)


def _time_engines(graph, pattern) -> dict:
    """Per-engine wall time and count; counts must agree exactly."""
    count(graph, pattern, engine="accel-batch")  # warm CSR view + keys
    entry = {}
    counts = {}
    for engine in ENGINES:
        seconds, matches = timed(lambda: count(graph, pattern, engine=engine))
        entry[f"{engine}_seconds"] = seconds
        counts[engine] = matches
    assert len(set(counts.values())) == 1, f"engine disagreement: {counts}"
    entry["matches"] = counts["reference"]
    entry["batch_speedup_vs_reference"] = (
        entry["reference_seconds"] / entry["accel-batch_seconds"]
        if entry["accel-batch_seconds"] > 0
        else float("inf")
    )
    return entry


@pytest.mark.fast
@pytest.mark.paper_artifact("engine-frontier")
def test_frontier_smoke():
    """CI smoke: every engine runs and agrees on a small sparse graph."""
    g = _sweep_graph(8, n=150)
    for name, pattern_fn in PATTERNS.items():
        p = pattern_fn()
        expected = count(g, p, engine="reference")
        assert count(g, p, engine="accel") == expected, name
        assert count(g, p, engine="accel-batch") == expected, name
        assert count(g, p, engine="accel-batch", frontier_chunk=64) == expected


@pytest.mark.paper_artifact("engine-frontier")
def test_frontier_sweep_emits_json(capsys):
    """Full sweep: beat the interpreter below the old crossover, log it."""
    results = []
    for name, pattern_fn in PATTERNS.items():
        pattern = pattern_fn()
        for degree in SWEEP_DEGREES:
            graph = _sweep_graph(degree)
            entry = _time_engines(graph, pattern)
            entry.update(
                pattern=name,
                multi_vertex_core=name in MULTI_CORE_PATTERNS,
                avg_degree_target=degree,
                avg_degree=round(graph.avg_degree(), 2),
                n=SWEEP_N,
            )
            results.append(entry)

    payload = {
        "bench": "engine-frontier",
        "n": SWEEP_N,
        "engines": list(ENGINES),
        "note": (
            "Wall-clock seconds per engine for count() across an "
            "erdos_renyi avg-degree sweep; measured basis for "
            "ACCEL_BATCH_MIN_AVG_DEGREE in repro.core.api."
        ),
        "results": results,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== engine frontier sweep (seconds) ===")
        header = f"{'pattern':<16} {'deg':>4} {'matches':>10}"
        header += "".join(f" {engine:>11}" for engine in ENGINES)
        header += f" {'batch-x':>8}"
        print(header)
        for row in results:
            line = (
                f"{row['pattern']:<16} {row['avg_degree_target']:>4}"
                f" {row['matches']:>10,}"
            )
            for engine in ENGINES:
                line += f" {row[f'{engine}_seconds']:>11.4f}"
            line += f" {row['batch_speedup_vs_reference']:>7.1f}x"
            print(line)
        print(f"wrote {OUTPUT_PATH}")

    # Acceptance: the batched engine beats the reference interpreter at
    # avg degree <= 32 on a multi-vertex-core pattern (the old per-match
    # crossover sat at 128 with a core-size exclusion).
    low_degree_wins = [
        row
        for row in results
        if row["multi_vertex_core"]
        and row["avg_degree_target"] <= 32
        and row["batch_speedup_vs_reference"] > 1.0
    ]
    assert low_degree_wins, "batched engine no longer wins below degree 32"
