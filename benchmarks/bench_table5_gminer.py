"""Table 5: Peregrine vs purpose-built algorithms (G-Miner).

Two workloads only — the two G-Miner ships: 3-clique counting and matching
the labeled pattern p2.  The paper's shape: Peregrine beats the
purpose-built triangle counter (task materialization overhead) on the
sparser graphs, while G-Miner's preprocessed label index can win p2 on the
dense labeled graph (it prefilters by label; Peregrine discovers labels
dynamically).
"""

import pytest

from benchmarks.common import run_once, timed

from repro.baselines import gminer_match_p2, gminer_triangle_count
from repro.core import count
from repro.graph import with_random_labels
from repro.mining import clique_count
from repro.pattern import pattern_p2


@pytest.fixture(scope="module")
def labeled_orkut(orkut):
    # The paper adds uniform synthetic labels 1-6 to Orkut for p2 (§6.1).
    return with_random_labels(orkut, 6, seed=42)


@pytest.mark.paper_artifact("table5")
@pytest.mark.parametrize("dataset", ["mico", "patents", "orkut"])
@pytest.mark.parametrize("system", ["peregrine", "gminer"])
def test_3cliques(benchmark, request, dataset, system):
    graph = request.getfixturevalue(dataset)
    if system == "peregrine":
        result = run_once(benchmark, lambda: clique_count(graph, 3))
    else:
        result, counters = run_once(benchmark, lambda: gminer_triangle_count(graph))
        benchmark.extra_info["task_bytes"] = counters.extra["task_bytes"]
    benchmark.extra_info["triangles"] = result


@pytest.mark.paper_artifact("table5")
@pytest.mark.parametrize("system", ["peregrine", "gminer"])
def test_match_p2(benchmark, labeled_orkut, system):
    p2 = pattern_p2()
    if system == "peregrine":
        result = run_once(benchmark, lambda: count(labeled_orkut, p2))
    else:
        result, _ = run_once(benchmark, lambda: gminer_match_p2(labeled_orkut, p2))
    benchmark.extra_info["matches"] = result


@pytest.mark.paper_artifact("table5")
def test_results_agree_and_print(patents, labeled_orkut, capsys):
    t_prg, ours = timed(lambda: clique_count(patents, 3))
    t_gm, (theirs, _) = timed(lambda: gminer_triangle_count(patents))
    assert ours == theirs
    p2 = pattern_p2()
    t_prg2, ours2 = timed(lambda: count(labeled_orkut, p2))
    t_gm2, (theirs2, _) = timed(lambda: gminer_match_p2(labeled_orkut, p2))
    assert ours2 == theirs2
    with capsys.disabled():
        print("\n=== Table 5 shape ===")
        print(f"3-cliques patents: peregrine {t_prg:.3f}s, gminer-like {t_gm:.3f}s")
        print(f"match p2 orkut:    peregrine {t_prg2:.3f}s, gminer-like {t_gm2:.3f}s")
