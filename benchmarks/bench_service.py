"""Closed-loop load benchmark for the async mining service.

The service tier's claim is operational: under concurrent load on one
shared graph, cross-request fused batching buys real throughput, not
just architecture.  This bench drives the in-process
:class:`~repro.service.MiningService` (no HTTP socket — what's measured
is the batching and the mining, not ``urllib``) with **closed-loop**
asyncio clients: each client issues its next request only after the
previous one answers, the standard way to measure a latency/throughput
trade-off without open-loop backlog artifacts.

For each concurrency level (1 / 4 / 16 / 64 clients) the same workload
— clients cycling a fixed mix of count patterns over one shared
power-law graph — runs twice:

* **batched** — the default service: concurrent compatible requests
  coalesce into one fused ``match_many`` walk per flush window;
* **unbatched** — ``ServiceConfig(batching=False)``: every request runs
  solo on the same worker pool (the ablation).

Per level the artifact records client-observed p50/p99 latency,
throughput, and the service's own fusion gauges.  The acceptance bar
(pinned in ``tests/test_bench_schema.py``): batched throughput at 16
clients >= 1.3x unbatched, with a nonzero fusion batch rate.

Run the full measurement (writes ``BENCH_service.json``)::

    python -m pytest benchmarks/bench_service.py -q -s

The ``fast``-marked smoke is part of the CI benchmark matrix.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.core import MiningSession
from repro.cli.parsing import parse_pattern_spec
from repro.graph import power_law
from repro.service import MiningService, ServiceConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_service.json"

CLIENT_LEVELS = (1, 4, 16, 64)
REQUESTS_PER_CLIENT = 24
ACCEPTANCE_CLIENTS = 16

# The request mix clients cycle through: small count patterns with
# plenty of repetition across concurrent clients, so batches both fuse
# and dedup — the service's intended regime (motif dashboards, shared
# exploratory queries), not a worst-case of all-distinct heavy queries.
PATTERN_MIX = (
    "clique:3",
    "chain:3",
    "star:3",
    "cycle:4",
    "chain:4",
    "clique:4",
)


def _workload_graph():
    return power_law(3_000, gamma=2.3, seed=5, name="service-workload")


async def _closed_loop(service, clients: int, requests_per_client: int):
    """Run the closed loop; returns (elapsed_s, latencies_s, responses)."""
    latencies: list[float] = []
    responses: list[dict] = []

    async def client(client_id: int) -> None:
        for i in range(requests_per_client):
            spec = PATTERN_MIX[(client_id + i) % len(PATTERN_MIX)]
            begin = time.perf_counter()
            response = await service.handle(
                {"verb": "count", "graph": "g", "pattern": spec}
            )
            latencies.append(time.perf_counter() - begin)
            responses.append(response)

    begin = time.perf_counter()
    await asyncio.gather(*[client(c) for c in range(clients)])
    return time.perf_counter() - begin, latencies, responses


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _run_level(graph, clients: int, batched: bool) -> dict:
    """One (concurrency, mode) cell: fresh service, full closed loop."""

    async def go():
        config = ServiceConfig(workers=2, batching=batched)
        async with MiningService(config) as service:
            service.register_graph("g", graph)
            # One untimed warmup request per pattern: plan caches and
            # the degree ordering are session state, not service load.
            for spec in PATTERN_MIX:
                response = await service.handle(
                    {"verb": "count", "graph": "g", "pattern": spec}
                )
                assert response["ok"], response
            elapsed, latencies, responses = await _closed_loop(
                service, clients, REQUESTS_PER_CLIENT
            )
            snapshot = service.stats()
        return elapsed, latencies, responses, snapshot

    elapsed, latencies, responses, snapshot = asyncio.run(go())
    for response in responses:
        assert response["ok"], response
    total = clients * REQUESTS_PER_CLIENT
    latencies.sort()
    batching = snapshot["batching"]
    return {
        "clients": clients,
        "requests": total,
        "seconds": elapsed,
        "throughput_rps": total / elapsed,
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
        "max_ms": latencies[-1] * 1e3,
        "fusion_batch_rate": batching["fusion_batch_rate"],
        "deduped_requests": batching["deduped_requests"],
        "max_batch_size": batching["max_batch_size"],
    }


@pytest.mark.fast
@pytest.mark.paper_artifact("service")
def test_service_smoke():
    """CI smoke: fused answers equal sequential truth, fusion engages."""
    graph = power_law(400, gamma=2.3, seed=5)
    truth = MiningSession(graph)
    expected = {
        spec: truth.count(parse_pattern_spec(spec)) for spec in PATTERN_MIX
    }

    async def go():
        async with MiningService(
            ServiceConfig(workers=2, max_wait_ms=10.0)
        ) as service:
            service.register_graph("g", graph)
            requests = [
                {"verb": "count", "graph": "g", "pattern": spec}
                for spec in PATTERN_MIX * 2
            ]
            responses = await asyncio.gather(
                *[service.handle(r) for r in requests]
            )
            return responses, service.stats()

    responses, snapshot = asyncio.run(go())
    for response in responses:
        assert response["ok"], response
        assert (
            response["result"]["count"]
            == expected[response["result"]["pattern"]]
        )
    assert snapshot["batching"]["fusion_batch_rate"] > 0.0
    assert snapshot["batching"]["deduped_requests"] >= len(PATTERN_MIX)


@pytest.mark.paper_artifact("service")
def test_service_emits_json(capsys):
    """Full closed-loop sweep: latency/throughput, batched vs unbatched."""
    graph = _workload_graph()
    levels = []
    for clients in CLIENT_LEVELS:
        batched = _run_level(graph, clients, batched=True)
        unbatched = _run_level(graph, clients, batched=False)
        levels.append(
            {
                "clients": clients,
                "batched": batched,
                "unbatched": unbatched,
                "batched_speedup": (
                    batched["throughput_rps"] / unbatched["throughput_rps"]
                ),
            }
        )

    acceptance_level = next(
        level for level in levels if level["clients"] == ACCEPTANCE_CLIENTS
    )
    payload = {
        "bench": "service",
        "n": graph.num_vertices,
        "edges": graph.num_edges,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "patterns": list(PATTERN_MIX),
        "note": (
            "Closed-loop load on the in-process MiningService: each "
            "client awaits its response before issuing the next "
            "request, all clients share one power-law graph and cycle "
            "the same count-pattern mix with staggered phases.  Per "
            "concurrency level the same workload runs against the "
            "default service (cross-request fused batching) and "
            "ServiceConfig(batching=False) (every request solo on the "
            "same 2-thread pool).  Latencies are client-observed "
            "(sorted-sample p50/p99); throughput is total requests "
            "over wall time; fusion gauges come from the service's own "
            "metrics snapshot.  Acceptance (tests/test_bench_schema."
            "py): batched throughput >= 1.3x unbatched at 16 clients "
            "and a nonzero fusion_batch_rate."
        ),
        "levels": levels,
        "acceptance": {
            "clients": ACCEPTANCE_CLIENTS,
            "batched_speedup": acceptance_level["batched_speedup"],
            "fusion_batch_rate": (
                acceptance_level["batched"]["fusion_batch_rate"]
            ),
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== service: closed-loop batched vs unbatched ===")
        for level in levels:
            batched, unbatched = level["batched"], level["unbatched"]
            print(
                f"{level['clients']:>3} clients | batched "
                f"{batched['throughput_rps']:8.1f} rps "
                f"p50 {batched['p50_ms']:7.2f}ms "
                f"p99 {batched['p99_ms']:7.2f}ms | unbatched "
                f"{unbatched['throughput_rps']:8.1f} rps "
                f"p50 {unbatched['p50_ms']:7.2f}ms "
                f"p99 {unbatched['p99_ms']:7.2f}ms | "
                f"x{level['batched_speedup']:.2f} "
                f"(fusion {batched['fusion_batch_rate']:.2f})"
            )
        print(f"wrote {OUTPUT_PATH}")
