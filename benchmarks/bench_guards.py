"""Guardrail-overhead benchmark: what budgets, guards and crash
tolerance cost when you are *not* using them.

PR 7's execution guardrails ride the hot paths: every engine polls an
optional budget between frontier chunks, the session verbs route
through admission guards, and ``process_count``'s dynamic schedule runs
on crash-tolerant lease-board workers instead of a ``Pool``.  The
robustness story only holds if the disarmed cost is negligible, so this
bench pins two ratios:

* **guard-off overhead** — the disarmed guardrail path
  (``session.count`` with ``guard="off"``, no budget: one ``is None``
  check per frontier chunk) against a raw warm
  ``FrontierBatchedEngine.run`` of the same plan and frontier.  The
  acceptance bar (pinned in ``tests/test_bench_schema.py``) is <= 2%.
* **recovery overhead** — a crash-tolerant ``process_count`` run where
  one worker is killed deterministically at its first lease
  (``REPRO_FAULT_WORKER_DIE="0:0"``) against the same run with no
  fault: the price of losing a worker is one respawn round plus one
  re-run chunk, not a rerun of the query.

An armed-but-roomy run (hour-long deadline plus a ``downgrade`` probe)
and the probe's own stats are recorded for context.

Run the full measurement (writes ``BENCH_guards.json``)::

    python -m pytest benchmarks/bench_guards.py -q -s

The ``fast``-marked smoke is part of the CI benchmark matrix.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.common import timed

from repro.core import MiningSession, count
from repro.core.callbacks import Budget
from repro.graph import erdos_renyi, power_law
from repro.pattern import generate_clique
from repro.runtime import guards, process_count
from repro.runtime.parallel import FAULT_ENV

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_guards.json"

ROUNDS = 5
RECOVERY_ROUNDS = 3


def _workload():
    """Power-law counting workload: big enough that per-chunk polling
    would show up, skewed enough that the probe has hubs to find."""
    return power_law(12_000, gamma=2.3, seed=3, name="guard-workload")


def _engine_seconds(session, plan, starts) -> float:
    """One raw engine run: the pre-guardrail hot path, no session verb."""
    from repro.core import accel

    engine = accel.FrontierBatchedEngine(session.view)
    elapsed, _ = timed(
        lambda: engine.run(plan, start_vertices=starts, count_only=True)
    )
    return elapsed


@pytest.mark.fast
@pytest.mark.paper_artifact("guards")
def test_guards_smoke():
    """CI smoke: disarmed guards change nothing, recovery is exact."""
    g = erdos_renyi(80, 0.15, seed=2)
    pattern = generate_clique(3)
    session = MiningSession(g)
    expected = session.count(pattern)
    assert session.count(pattern, guard="off") == expected
    assert session.count(
        pattern, budget=Budget(deadline=3600.0), on_budget="partial"
    ) == expected
    estimate = guards.estimate_cost(session, pattern)
    assert estimate.sampled <= guards.PROBE_SAMPLE
    os.environ[FAULT_ENV] = "0:0"
    try:
        got = process_count(
            g, pattern, num_processes=2, schedule="dynamic", chunk_hint=8
        )
    finally:
        del os.environ[FAULT_ENV]
    assert got == expected


@pytest.mark.paper_artifact("guards")
def test_guards_emits_json(capsys):
    """Full measurement: guard-off and recovery overhead ratios."""
    graph = _workload()
    pattern = generate_clique(3)
    session = MiningSession(graph)
    plan = session.plan_for(pattern)

    from repro.core import accel

    view = session.view
    starts = accel.frontier_start_order(view.labels, view.num_vertices, plan)
    expected = session.count(pattern)  # warm: CSR view, plan, dispatch

    # --- guard-off overhead: disarmed verb path vs raw engine runs ---
    raw_rounds, off_rounds, armed_rounds = [], [], []
    roomy = Budget(deadline=3600.0)
    for _ in range(ROUNDS):
        raw_rounds.append(_engine_seconds(session, plan, starts))
        elapsed, got = timed(lambda: session.count(pattern, guard="off"))
        assert got == expected
        off_rounds.append(elapsed)
        elapsed, got = timed(
            lambda: session.count(
                pattern, guard="downgrade", budget=roomy, on_budget="partial"
            )
        )
        assert got == expected
        armed_rounds.append(elapsed)
    unguarded = min(raw_rounds)
    guard_off = min(off_rounds)
    armed = min(armed_rounds)

    # --- probe cost and verdict on the same workload ---
    probe_elapsed, estimate = timed(
        lambda: guards.estimate_cost(session, pattern)
    )

    # --- recovery overhead: one deterministic worker death vs clean ---
    recovery_graph = erdos_renyi(1_500, 0.02, seed=4, name="recovery")
    recovery_expected = count(recovery_graph, pattern)
    pool_kw = dict(num_processes=2, schedule="dynamic", chunk_hint=64)
    clean_rounds, crash_rounds = [], []
    num_chunks = None
    for _ in range(RECOVERY_ROUNDS):
        elapsed, got = timed(
            lambda: process_count(recovery_graph, pattern, **pool_kw)
        )
        assert got == recovery_expected
        clean_rounds.append(elapsed)
        os.environ[FAULT_ENV] = "0:0"
        try:
            elapsed, got = timed(
                lambda: process_count(recovery_graph, pattern, **pool_kw)
            )
        finally:
            del os.environ[FAULT_ENV]
        assert got == recovery_expected  # requeue restored exactness
        crash_rounds.append(elapsed)
    if num_chunks is None:
        from repro.runtime import ChunkLedger

        rec_session = MiningSession(recovery_graph)
        rec_plan = rec_session.plan_for(pattern)
        rec_view = rec_session.view
        rec_starts = accel.frontier_start_order(
            rec_view.labels, rec_view.num_vertices, rec_plan
        )
        ledger = ChunkLedger.build(
            list(rec_starts),
            weights=rec_view.degrees()[rec_starts] + 1,
            num_workers=pool_kw["num_processes"],
            chunk_hint=pool_kw["chunk_hint"],
        )
        num_chunks = len(ledger)
    clean = min(clean_rounds)
    crash = min(crash_rounds)

    payload = {
        "bench": "guards",
        "n": graph.num_vertices,
        "note": (
            "Disarmed-guardrail overhead and crash-recovery cost.  "
            "guard_off_ratio = session.count with guard='off' and no "
            "budget (the disarmed path: one is-None poll per frontier "
            "chunk) over a raw warm FrontierBatchedEngine.run of the "
            "same plan and frontier, best-of-rounds; acceptance <= "
            "1.02.  guarded_ratio arms an hour-long deadline plus a "
            "downgrade admission probe on the same call, for context.  "
            "recovery: process_count (dynamic, 2 workers) with "
            "REPRO_FAULT_WORKER_DIE='0:0' killing one worker at its "
            "first lease vs the same run clean; overhead_ratio = "
            "crash/clean, both returning the exact count — the price "
            "of a lost worker is a respawn round plus one requeued "
            "chunk, never a rerun."
        ),
        "overhead": {
            "pattern": "clique3",
            "matches": int(expected),
            "rounds": ROUNDS,
            "unguarded_seconds": unguarded,
            "guard_off_seconds": guard_off,
            "guarded_seconds": armed,
            "guard_off_ratio": guard_off / unguarded,
            "guarded_ratio": armed / unguarded,
        },
        "probe": {
            "probe_seconds": probe_elapsed,
            **estimate.as_dict(),
        },
        "recovery": {
            "rounds": RECOVERY_ROUNDS,
            "clean_seconds": clean,
            "crash_seconds": crash,
            "overhead_ratio": crash / clean,
            "death_spec": "0:0",
            "death_chunk": 0,
            "num_chunks": num_chunks,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== guardrails: disarmed overhead and recovery ===")
        print(
            f"raw engine {unguarded:.4f}s | guard-off {guard_off:.4f}s "
            f"(x{guard_off / unguarded:.3f}) | armed {armed:.4f}s "
            f"(x{armed / unguarded:.3f})"
        )
        print(
            f"probe {probe_elapsed * 1e3:.2f}ms predicted "
            f"{estimate.predicted_partials:.3g} "
            f"(hubs {estimate.hub_count}, explosive {estimate.explosive})"
        )
        print(
            f"recovery clean {clean:.4f}s | crash {crash:.4f}s "
            f"(x{crash / clean:.2f}, {num_chunks} chunks)"
        )
        print(f"wrote {OUTPUT_PATH}")
