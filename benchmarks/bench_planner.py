"""Adaptive-planner benchmark: one probe beats the fixed thresholds.

ROADMAP item 2's second half replaces the fixed engine/schedule
heuristics (global ``avg_degree >= 2.0`` picks the batched engine, a
hard-coded chunks-per-worker sizes dynamic chunks) with a per-query
plan derived from the admission probe's measurements.  The fixed
thresholds look at the *graph*; the probe looks at the *query* — and
the two disagree exactly when a pattern's label-filtered frontier has a
different density than the graph around it.

The sweep crosses frontier density (sparse / dense), pattern size
(small / large) and degree distribution (uniform / power-law), then
adds the cell the planner was built for: a near-forest graph whose
global average degree keeps the fixed heuristic on the pure-Python
reference engine, hiding a dense fully-labeled core where the probe
measures high per-start expansion and routes the query to the batched
engine instead.  Timings are warm (probe cached on the session,
best-of-rounds) and every cell asserts count parity, so the ratios are
engine choice, not noise or wrong answers.

Acceptance (pinned in ``tests/test_bench_schema.py``): adaptive never
loses a cell by more than 5% (``speedup >= 0.95``) and wins the
labeled-core cell by at least 1.3x.

Run the full measurement (writes ``BENCH_planner.json``)::

    python -m pytest benchmarks/bench_planner.py -q -s

The ``fast``-marked smoke is part of the CI benchmark matrix.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from benchmarks.common import timed

from repro.core.session import MiningSession, batch_preferred
from repro.graph.builder import from_edges
from repro.graph.generators import erdos_renyi, power_law
from repro.pattern.generators import generate_chain, generate_clique
from repro.runtime import planner

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_planner.json"

ROUNDS = 5


def hub_core_graph(core: int = 300, tail: int = 8000, p: float = 0.15,
                   seed: int = 42):
    """A dense labeled core drowned in unlabeled isolated vertices.

    Global average degree stays below the fixed batched-engine threshold
    (2.0) while the label-1 frontier — the only starts a fully-labeled
    clique query visits — is ~``core * p`` dense.  The shape the fixed
    heuristic cannot see and the probe measures directly.
    """
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(core)
        for j in range(i + 1, core)
        if rng.random() < p
    ]
    labels = [1] * core + [0] * tail
    return from_edges(edges, labels=labels, num_vertices=core + tail,
                      name="hub-core")


def labeled_clique(k: int):
    pattern = generate_clique(k)
    for u in range(k):
        pattern.set_label(u, 1)
    return pattern


def sweep_cells():
    """name -> (graph, pattern): density x pattern size x distribution."""
    sparse = erdos_renyi(12_000, 1.6 / 11_999, seed=3, name="sparse-uniform")
    dense = erdos_renyi(2_500, 0.012, seed=5, name="dense-uniform")
    skewed = power_law(8_000, gamma=2.1, d_min=4, seed=7, name="power-law")
    return {
        "sparse-uniform-small": (sparse, generate_clique(3)),
        "sparse-uniform-large": (sparse, generate_chain(4)),
        "dense-uniform-small": (dense, generate_clique(3)),
        "dense-uniform-large": (dense, generate_clique(4)),
        "powerlaw-small": (skewed, generate_clique(3)),
        "powerlaw-large": (skewed, generate_clique(4)),
        "skewed-labeled-core": (hub_core_graph(), labeled_clique(3)),
    }


def _measure_cell(graph, pattern) -> dict:
    """Warm fixed-vs-auto timings for one cell, with count parity."""
    session = MiningSession(graph)
    fixed_count = session.count(pattern, plan="fixed")  # warm plan + CSR
    auto_count = session.count(pattern, plan="auto")  # warm probe cache
    assert auto_count == fixed_count
    chosen = session.last_query_plan
    fixed_engine = (
        "accel-batch"
        if batch_preferred(session.ordered, session.plan_for(pattern))
        else "reference"
    )
    fixed_rounds, auto_rounds = [], []
    for _ in range(ROUNDS):
        elapsed, got = timed(lambda: session.count(pattern, plan="fixed"))
        assert got == fixed_count
        fixed_rounds.append(elapsed)
        elapsed, got = timed(lambda: session.count(pattern, plan="auto"))
        assert got == fixed_count
        auto_rounds.append(elapsed)
    fixed_best = min(fixed_rounds)
    auto_best = min(auto_rounds)
    estimate = chosen.estimate
    return {
        "n": graph.num_vertices,
        "edges": graph.num_edges,
        "pattern_vertices": pattern.num_vertices,
        "matches": int(fixed_count),
        "rounds": ROUNDS,
        "fixed_engine": fixed_engine,
        "auto_engine": chosen.engine,
        "auto_schedule": chosen.schedule,
        "probe": {
            "frontier_size": estimate.frontier_size,
            "avg_expansion": estimate.avg_expansion,
            "level1_volume": estimate.level1_volume,
            "hub_skew": estimate.hub_skew,
        },
        "fixed_seconds": fixed_best,
        "auto_seconds": auto_best,
        "speedup": fixed_best / auto_best,
    }


@pytest.mark.fast
@pytest.mark.paper_artifact("planner")
def test_planner_smoke():
    """CI smoke: adaptive plans keep exact counts on both regimes."""
    dense = MiningSession(erdos_renyi(200, 0.1, seed=2))
    pattern = generate_clique(3)
    assert dense.count(pattern, plan="auto") == dense.count(
        pattern, plan="fixed"
    )
    assert dense.last_query_plan.engine == "accel-batch"

    core = MiningSession(hub_core_graph(core=60, tail=600))
    labeled = labeled_clique(3)
    assert core.count(labeled, plan="auto") == core.count(
        labeled, plan="fixed"
    )
    # The fixed heuristic reads the near-forest global degree; the probe
    # reads the dense labeled frontier.  They must disagree here.
    assert not batch_preferred(core.ordered, core.plan_for(labeled))
    assert core.last_query_plan.engine == "accel-batch"
    plan = planner.plan_query(core, labeled)
    assert plan.estimate.avg_expansion >= planner.MIN_BATCH_EXPANSION


@pytest.mark.paper_artifact("planner")
def test_planner_emits_json(capsys):
    """Full sweep: adaptive >= fixed per cell, big win on the skewed cell."""
    cells = {}
    for name, (graph, pattern) in sweep_cells().items():
        cells[name] = _measure_cell(graph, pattern)

    speedups = {name: cell["speedup"] for name, cell in cells.items()}
    payload = {
        "bench": "planner",
        "rounds_per_cell": ROUNDS,
        "note": (
            "Adaptive planner (plan='auto': one bounded probe chooses "
            "engine, schedule, chunking and workers per query) against "
            "the fixed-threshold baseline (plan='fixed': global "
            "avg_degree >= 2.0 picks the batched engine).  Warm "
            "best-of-rounds session.count timings, count parity "
            "asserted per round; speedup = fixed_seconds / "
            "auto_seconds.  The sweep crosses frontier density, "
            "pattern size and degree distribution; "
            "'skewed-labeled-core' is the acceptance cell — a "
            "near-forest graph (global avg degree < 2 keeps the fixed "
            "heuristic on the reference engine) hiding a dense "
            "fully-labeled core that the probe routes to the batched "
            "engine.  Acceptance: every cell >= 0.95, the labeled-core "
            "cell >= 1.3."
        ),
        "cells": cells,
        "acceptance": {
            "min_speedup": min(speedups.values()),
            "max_speedup": max(speedups.values()),
            "skewed_cell": "skewed-labeled-core",
            "skewed_speedup": speedups["skewed-labeled-core"],
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== adaptive planner vs fixed thresholds ===")
        for name, cell in cells.items():
            print(
                f"{name:24s} {cell['fixed_engine']:11s}->"
                f"{cell['auto_engine']:11s} fixed "
                f"{cell['fixed_seconds'] * 1e3:8.2f}ms auto "
                f"{cell['auto_seconds'] * 1e3:8.2f}ms "
                f"x{cell['speedup']:.3f}"
            )
        print(f"wrote {OUTPUT_PATH}")
