"""Multi-pattern fusion benchmark: fused runner vs. sequential per-pattern.

The workload the fused runner exists for: one ``count_many`` (or one FSM
round's ``match_batches_many``) over a set of patterns against one
graph.  Both sides run on the *same warm session* and force the same
member engine, so the measured delta is exactly the fusion:

* **sequential** — ``engine="accel-batch"``: every pattern walks its own
  level-0 frontier through the frontier-batched engine, the pre-fusion
  behaviour of ``count_many``;
* **fused** — ``engine="fused"``: one shared frontier walk with shared
  first-level gathers (:class:`repro.core.accel.SharedFrontierGathers`),
  and — for the count-only vertex-induced censuses — the shared
  non-induced basis of :mod:`repro.core.multipattern` (anti-edge-free
  plans hit the engine's arithmetic tail counts; induced counts
  demultiplex by exact Möbius inversion).

Three regimes are measured.  The 3- and 4-motif censuses are where
fusion multiplies (the 4-census closure collapses six anti-edge-heavy
induced counts onto one cheap basis); the FSM-style structural round
streams every match into per-pattern batch sinks, where the vectorized
domain group-by dominates and fusion is merely free (~1x) — the numbers
document both.

Machine-readable timings land in ``BENCH_multipattern.json`` at the repo
root.  Run the full measurement (writes the JSON, prints the table)::

    python -m pytest benchmarks/bench_multipattern.py -q -s

The ``fast``-marked smoke test is wired into CI so this harness cannot
silently rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.common import speedup, timed

from repro.core import MiningSession
from repro.graph import DataGraph, erdos_renyi, with_random_labels
from repro.pattern import (
    Pattern,
    generate_all_vertex_induced,
    generate_chain,
    generate_clique,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_multipattern.json"

ROUNDS = 3

SEQUENTIAL_ENGINE = "accel-batch"

# name -> (n, avg degree, kind, kind arg)
WORKLOADS = {
    "3-motif-census": (8000, 6, "census", 3),
    "4-motif-census": (600, 8, "census", 4),
    "fsm-round-structurals": (4000, 8, "fsm-round", 3),
}


def _bench_graph(n: int, degree: int, labels: int | None, seed: int = 21) -> DataGraph:
    graph = erdos_renyi(n, min(1.0, degree / (n - 1)), seed=seed)
    if labels is not None:
        graph = with_random_labels(graph, labels, seed=seed)
    return graph


def _census_round(session: MiningSession, patterns, engine: str) -> dict:
    return session.count_many(patterns, edge_induced=False, engine=engine)


def _fsm_round(session: MiningSession, structurals, engine: str) -> list[int]:
    """One FSM-style structural round: stream matches into per-pattern sinks."""
    rows = [0] * len(structurals)

    def sink(index: int):
        def on_batch(batch) -> None:
            rows[index] += batch.shape[0]

        return on_batch

    session.match_batches_many(
        structurals,
        [sink(i) for i in range(len(structurals))],
        edge_induced=True,
        engine=engine,
    )
    return rows


def _warm(session: MiningSession, run) -> None:
    """Warm both paths once (plans, CSR view, census transform) and
    assert fused/sequential agreement before any timing happens."""
    expected = run(session, SEQUENTIAL_ENGINE)
    assert run(session, "fused") == expected, "fused/sequential disagree"


def _measure(session: MiningSession, run) -> dict:
    sequential_seconds, _ = timed(lambda: run(session, SEQUENTIAL_ENGINE))
    fused_seconds, _ = timed(lambda: run(session, "fused"))
    return {
        "sequential_seconds": sequential_seconds,
        "fused_seconds": fused_seconds,
        "fused_speedup": speedup(sequential_seconds, fused_seconds),
    }


def _workload_runner(kind: str, arg: int):
    if kind == "census":
        patterns = generate_all_vertex_induced(arg)
        return patterns, lambda session, engine: _census_round(
            session, patterns, engine
        )
    structurals = [
        Pattern.from_edges([(0, 1)]),
        generate_chain(3),
        generate_clique(3),
    ]
    return structurals, lambda session, engine: _fsm_round(
        session, structurals, engine
    )


@pytest.mark.fast
@pytest.mark.paper_artifact("multipattern-fusion")
def test_multipattern_smoke():
    """CI smoke: fused execution agrees with sequential on both shapes."""
    graph = _bench_graph(n=150, degree=8, labels=None)
    session = MiningSession(graph)
    patterns = generate_all_vertex_induced(3)
    assert session.count_many(
        patterns, edge_induced=False, engine="fused"
    ) == session.count_many(
        patterns, edge_induced=False, engine=SEQUENTIAL_ENGINE
    )
    labeled = MiningSession(_bench_graph(n=150, degree=8, labels=3))
    structurals, run = _workload_runner("fsm-round", 3)
    assert run(labeled, "fused") == run(labeled, SEQUENTIAL_ENGINE)


@pytest.mark.paper_artifact("multipattern-fusion")
def test_multipattern_emits_json(capsys):
    """Full measurement: fused beats sequential on censuses, log it."""
    results = {}
    for name, (n, degree, kind, arg) in WORKLOADS.items():
        labels = 3 if kind == "fsm-round" else None
        graph = _bench_graph(n, degree, labels)
        session = MiningSession(graph)
        patterns, run = _workload_runner(kind, arg)
        _warm(session, run)
        rounds = [_measure(session, run) for _ in range(ROUNDS)]
        results[name] = {
            "n": n,
            "avg_degree_target": degree,
            "kind": kind,
            "patterns": len(patterns),
            "rounds": rounds,
            "best_fused_speedup": max(e["fused_speedup"] for e in rounds),
        }

    payload = {
        "bench": "multipattern-fusion",
        "rounds_per_workload": ROUNDS,
        "sequential_engine": SEQUENTIAL_ENGINE,
        "note": (
            "Wall-clock seconds per multi-pattern workload on one warm "
            "MiningSession: sequential = engine='accel-batch' per-pattern "
            "execution (own frontier walk each), fused = engine='fused' "
            "(shared frontier walk + shared first-level gathers; "
            "count-only vertex-induced censuses additionally route "
            "through the shared non-induced basis with exact Möbius "
            "demultiplexing).  Censuses are where fusion multiplies; the "
            "FSM-style streaming round is dominated by the per-batch "
            "domain group-by, where fusion is merely free (~1x)."
        ),
        "workloads": results,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== multi-pattern fusion (seconds) ===")
        print(
            f"{'workload':<24} {'round':>5} {'sequential':>11}"
            f" {'fused':>9} {'speedup':>8}"
        )
        for name, entry in results.items():
            for i, row in enumerate(entry["rounds"]):
                print(
                    f"{name:<24} {i:>5} {row['sequential_seconds']:>11.4f}"
                    f" {row['fused_seconds']:>9.4f}"
                    f" {row['fused_speedup']:>7.2f}x"
                )
        print(f"wrote {OUTPUT_PATH}")

    # Acceptance: fused count_many beats sequential per-pattern execution
    # on the motif censuses (the multiplicative regime).
    assert results["3-motif-census"]["best_fused_speedup"] > 1.2, (
        "fusion no longer wins the 3-motif census"
    )
    assert results["4-motif-census"]["best_fused_speedup"] > 2.0, (
        "fusion no longer wins the 4-motif census"
    )
    # Fusion must never hurt the streaming FSM round.
    assert results["fsm-round-structurals"]["best_fused_speedup"] > 0.85