"""Storage-tier benchmark: cold starts, fan-out residency, hub membership.

Peregrine converts text inputs to a packed binary adjacency format
precisely because parse-time dominates small-query latency; this bench
measures what our storage tiers buy on the same axes:

* **cold_start** — wall-clock to go from a file on disk to a usable
  :class:`~repro.graph.graph.DataGraph`, for the text edge list, the
  compressed ``.npz`` archive, and the mmap ``.rgx`` store.  The store's
  claim is O(header) Python work (three ``mmap`` calls, no adjacency
  materialization), so its open time must be bounded away from both
  parsers — acceptance pins ``.rgx`` at >= 5x over text parse.
* **fanout_rss** — per-worker and parent-side memory when a process pool
  shares one CSR graph.  ``shm`` copies the arrays into
  ``multiprocessing.shared_memory`` (tmpfs: RAM-pinned, unevictable)
  while ``mmap`` workers re-open the ``.rgx`` file and share clean
  page-cache pages.  Workers touch every page, then report
  ``VmRSS``/``Pss`` from procfs; the parent reports the bytes each mode
  allocates up front.  Both modes *share* pages across workers — the
  measured story is the parent-side copy the shm tier cannot avoid.
* **membership** — the roaring hub kernels vs the searchsorted adjacency
  keys on power-law hub queries: the
  :class:`~repro.core.accel.HubMembershipIndex` compiles each hub row
  into packed bits (via :class:`~repro.bitmap.roaring.RoaringBitmap`),
  so a batched anti-edge/injectivity probe against hubs is two array
  lookups instead of an O(log E) search per element.

Run the full measurement (writes ``BENCH_storage.json``)::

    python -m pytest benchmarks/bench_storage.py -q -s

The ``fast``-marked smoke joins the CI benchmark matrix automatically.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from benchmarks.common import timed

from repro.core import count
from repro.graph import (
    GraphStore,
    load_edge_list,
    load_mmap,
    load_npz,
    power_law,
    save_edge_list,
    save_mmap,
    save_npz,
)
from repro.pattern import generate_clique

np = pytest.importorskip("numpy")

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_storage.json"

ROUNDS = 5
FANOUT_WORKERS = 2

# ----------------------------------------------------------------------
# Fan-out RSS probes (module-level: fork workers resolve them by name)
# ----------------------------------------------------------------------

_PROBE_STATE: dict = {}


def _read_proc_kb(path: str, key: str):
    try:
        with open(path) as fh:
            for line in fh:
                if line.startswith(key):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - smaps_rollup may be absent
        return None
    return None


def _shm_probe_init(meta):
    from multiprocessing import shared_memory

    segments, arrays = [], []
    for name, size in meta:
        seg = shared_memory.SharedMemory(name=name)
        segments.append(seg)
        arrays.append(np.ndarray((size,), dtype=np.int64, buffer=seg.buf))
    _PROBE_STATE["segments"] = segments  # keep attachments alive
    _PROBE_STATE["arrays"] = arrays


def _mmap_probe_init(path):
    store = GraphStore(path)
    _PROBE_STATE["store"] = store  # keep the mappings alive
    _PROBE_STATE["arrays"] = [store.offsets, store.neighbors]


def _touch_and_measure(_worker_id):
    """Fault in every shared page, then report this worker's residency."""
    checksum = 0
    for arr in _PROBE_STATE["arrays"]:
        checksum += int(np.asarray(arr).sum())
    return {
        "rss_kb": _read_proc_kb("/proc/self/status", "VmRSS:"),
        "pss_kb": _read_proc_kb("/proc/self/smaps_rollup", "Pss:"),
        "checksum": checksum,
    }


def _fanout_probe(graph, rgx_path: str, workers: int) -> dict:
    """Worker residency under shm fan-out vs mmap fan-out of one CSR."""
    from repro.core import accel
    from repro.runtime import parallel as parallel_module

    ctx = multiprocessing.get_context("fork")
    ordered, _ = graph.degree_ordered()
    view = accel.shared_view(ordered)

    segments, meta = parallel_module._shm_segments(view)
    shm_meta = [
        (name, size) for name, size in meta.values() if name
    ]
    shm_bytes = sum(seg.size for seg in segments)
    try:
        with ctx.Pool(
            processes=workers,
            initializer=_shm_probe_init,
            initargs=(shm_meta,),
        ) as pool:
            shm_reports = pool.map(_touch_and_measure, range(workers))
    finally:
        for seg in segments:
            seg.close()
            seg.unlink()

    with ctx.Pool(
        processes=workers,
        initializer=_mmap_probe_init,
        initargs=(rgx_path,),
    ) as pool:
        mmap_reports = pool.map(_touch_and_measure, range(workers))

    # The same pages must have been faulted in under both modes.
    shm_sum = {r["checksum"] for r in shm_reports}
    mmap_sum = {r["checksum"] for r in mmap_reports}
    assert len(shm_sum) == 1 and len(mmap_sum) == 1

    def summarize(reports):
        rss = [r["rss_kb"] for r in reports if r["rss_kb"] is not None]
        pss = [r["pss_kb"] for r in reports if r["pss_kb"] is not None]
        return {
            "max_worker_rss_kb": max(rss) if rss else None,
            "max_worker_pss_kb": max(pss) if pss else None,
        }

    shm_summary = summarize(shm_reports)
    mmap_summary = summarize(mmap_reports)
    delta = {}
    for key in ("max_worker_rss_kb", "max_worker_pss_kb"):
        if shm_summary[key] is not None and mmap_summary[key] is not None:
            delta[key.replace("max_worker_", "shm_minus_mmap_")] = (
                shm_summary[key] - mmap_summary[key]
            )
    return {
        "workers": workers,
        "csr_payload_bytes": int(view.memory_bytes()),
        "shm": {
            **shm_summary,
            "parent_tmpfs_copy_bytes": int(shm_bytes),
        },
        "mmap": {
            **mmap_summary,
            "store_file_bytes": os.path.getsize(rgx_path),
            "parent_extra_bytes": 0,
        },
        **delta,
    }


# ----------------------------------------------------------------------
# Membership microbench
# ----------------------------------------------------------------------


def _membership_round(graph, queries: int, seed: int) -> dict:
    """Roaring hub rows vs searchsorted keys on hub-heavy query batches."""
    from repro.core import accel

    ordered, _ = graph.degree_ordered()
    view = accel.AcceleratedGraphView(ordered)
    build_seconds, hubs = timed(lambda: view.hub_index())
    assert hubs is not None, "benchmark graph has no hubs at the threshold"
    engine = accel.FrontierBatchedEngine(view)

    rng = np.random.default_rng(seed)
    n = ordered.num_vertices
    hub_ids = np.asarray(hubs.hubs, dtype=np.int64)
    owners = hub_ids[rng.integers(0, hub_ids.size, queries)]
    values = rng.integers(0, n, queries).astype(np.int64)

    sorted_seconds, want = timed(
        lambda: engine._member_sorted(owners, values)
    )
    roaring_seconds, got = timed(
        lambda: hubs.member(owners, values, engine._member_sorted)
    )
    assert np.array_equal(got, want)
    return {
        "queries": queries,
        "num_hubs": int(hub_ids.size),
        "index_build_seconds": build_seconds,
        "index_bytes": int(hubs.memory_bytes()),
        "searchsorted_seconds": sorted_seconds,
        "roaring_seconds": roaring_seconds,
        "roaring_speedup": (
            sorted_seconds / roaring_seconds
            if roaring_seconds > 0
            else float("inf")
        ),
    }


# ----------------------------------------------------------------------
# The tests
# ----------------------------------------------------------------------


@pytest.mark.fast
@pytest.mark.paper_artifact("storage")
def test_storage_smoke(tmp_path):
    """CI smoke: every tier round-trips and the probes keep working."""
    g = power_law(300, gamma=1.8, seed=5)
    rgx = tmp_path / "g.rgx"
    txt = tmp_path / "g.edges"
    save_mmap(g, rgx)
    save_edge_list(g, txt)
    h = load_mmap(rgx)
    assert h == g
    expected = count(g, generate_clique(3))
    assert count(h, generate_clique(3)) == expected
    probe = _fanout_probe(h, str(rgx), workers=2)
    assert probe["shm"]["parent_tmpfs_copy_bytes"] > 0
    assert probe["mmap"]["store_file_bytes"] == os.path.getsize(rgx)
    row = _membership_round(power_law(800, gamma=1.5, seed=3), 2_000, seed=1)
    assert row["num_hubs"] > 0


@pytest.mark.paper_artifact("storage")
def test_storage_emits_json(tmp_path, capsys):
    """Full measurement: cold starts, fan-out residency, hub membership."""
    g = power_law(20_000, gamma=2.0, seed=7, name="power-law-20k")
    txt = tmp_path / "g.edges"
    npz = tmp_path / "g.npz"
    rgx = tmp_path / "g.rgx"
    save_edge_list(g, txt)
    save_npz(g, npz)
    save_mmap(g, rgx)

    loaders = {
        "text": lambda: load_edge_list(txt),
        "npz": lambda: load_npz(npz),
        "mmap": lambda: load_mmap(rgx),
    }
    cold = {name: [] for name in loaders}
    for _ in range(ROUNDS):
        for name, loader in loaders.items():
            elapsed, loaded = timed(loader)
            assert loaded.num_vertices == g.num_vertices
            cold[name].append(elapsed)
    best = {name: min(times) for name, times in cold.items()}
    cold_start = {
        "rounds": ROUNDS,
        "file_bytes": {
            "text": os.path.getsize(txt),
            "npz": os.path.getsize(npz),
            "mmap": os.path.getsize(rgx),
        },
        "best_seconds": best,
        "all_seconds": cold,
        "mmap_speedup_vs_text": best["text"] / best["mmap"],
        "mmap_speedup_vs_npz": best["npz"] / best["mmap"],
    }

    fanout = _fanout_probe(load_mmap(rgx), str(rgx), FANOUT_WORKERS)

    membership_graph = power_law(6_000, gamma=1.6, seed=11)
    membership = [
        _membership_round(membership_graph, queries, seed=i)
        for i, queries in enumerate((10_000, 100_000))
    ]

    payload = {
        "bench": "storage",
        "n": g.num_vertices,
        "edges": g.num_edges,
        "note": (
            "Storage-tier measurements on a power-law graph.  cold_start "
            "times file -> usable DataGraph per tier (best of "
            f"{ROUNDS} rounds; the .rgx open is O(header) Python work, "
            "no adjacency materialization).  fanout_rss forks "
            f"{FANOUT_WORKERS} workers that fault in every CSR page and "
            "report procfs VmRSS/Pss: shm attaches tmpfs segment copies "
            "(parent_tmpfs_copy_bytes of RAM-pinned, unevictable pages), "
            "mmap workers re-open the store file and share clean, "
            "evictable page-cache pages (zero parent-side copy).  "
            "membership compares the searchsorted adjacency-key kernel "
            "against the roaring-compiled HubMembershipIndex bit rows on "
            "hub-owner query batches (the anti-edge / injectivity probe "
            "shape); index_build_seconds is the one-time view-build cost."
        ),
        "cold_start": cold_start,
        "fanout_rss": fanout,
        "membership": membership,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== storage: cold start (seconds, best of rounds) ===")
        for name, seconds in best.items():
            print(f"{name:<6} {seconds:>10.6f}")
        print(
            f"mmap vs text: {cold_start['mmap_speedup_vs_text']:.0f}x, "
            f"vs npz: {cold_start['mmap_speedup_vs_npz']:.0f}x"
        )
        print("=== storage: fan-out residency ===")
        print(
            f"shm  worker rss {fanout['shm']['max_worker_rss_kb']} KiB, "
            f"parent copy {fanout['shm']['parent_tmpfs_copy_bytes']} B"
        )
        print(
            f"mmap worker rss {fanout['mmap']['max_worker_rss_kb']} KiB, "
            f"file {fanout['mmap']['store_file_bytes']} B"
        )
        print("=== storage: hub membership ===")
        for row in membership:
            print(
                f"{row['queries']:>7} queries: searchsorted "
                f"{row['searchsorted_seconds']:.5f}s, roaring "
                f"{row['roaring_seconds']:.5f}s "
                f"({row['roaring_speedup']:.1f}x)"
            )
        print(f"wrote {OUTPUT_PATH}")

    # Acceptance: the mmap tier's cold start is bounded away from parsing.
    assert cold_start["mmap_speedup_vs_text"] >= 5.0, (
        "mmap cold start regressed to within 5x of text parsing "
        f"({cold_start['mmap_speedup_vs_text']:.1f}x)"
    )
    # The shm tier's parent-side copy is the cost mmap exists to remove.
    assert fanout["shm"]["parent_tmpfs_copy_bytes"] > 0
    assert fanout["mmap"]["parent_extra_bytes"] == 0
