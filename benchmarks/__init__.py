"""Benchmark suite as a package.

The ``__init__.py`` is load-bearing: it gives ``benchmarks/conftest.py``
the unique module name ``benchmarks.conftest`` so pytest can collect
``tests/`` and ``benchmarks/`` in one invocation without colliding with
``tests/conftest.py`` (two top-level modules named ``conftest`` raise an
import-file mismatch under the default import mode).  Benchmark modules
therefore import shared helpers as ``from benchmarks.common import ...``.
"""
