"""Parallel-schedule benchmark: work-stealing vs. static frontier slicing.

The workload behind the Figure 12 scalability claim: ``process_count``'s
workers consume the level-0 frontier, and this bench measures what the
*schedule* — how starts are placed on workers — costs or saves across
degree skew.  ``static`` is the legacy up-front stride slicing
(``frontier[i::P]``); ``dynamic`` is the work-stealing queue of
degree-weighted chunks from :mod:`repro.runtime.scheduler`.

**Methodology.**  This repo's benchmark hosts are often single-core
containers, where wall-clocking a process pool measures serialization,
not scheduling.  Following the ``bench_fig12`` work-partition idiom, the
schedule comparison is therefore *makespan-based and host-independent*:
each worker's assignment is timed sequentially on one warm engine —
whole stride slices for static, the ledger's chunks (greedily list-
scheduled onto the earliest-free worker, exactly the shared-cursor
claiming order) for dynamic — and the speedup is the ratio of the two
makespans.  Real ``process_count`` pools are additionally run for count
parity and informational wall clock (meaningful only when
``host_cpus`` >= the process count).

Three graphs sweep skew at fixed pattern (p1, the diamond):

* ``uniform`` — G(n, p): every task costs the same; dynamic chunking
  must be ~free (the 0.95x acceptance floor);
* ``power-law`` — natural heavy tail (gamma 2.3): a few separated hubs
  hold multi-ms tasks; static's straggler is whoever draws the top hub
  plus a full 1/P share of everything else;
* ``power-law-flash-crowd`` — truncated power-law body plus one
  flash-crowd hub whose single task approaches a whole worker share:
  the regime the work-stealing queue exists for (>= 1.5x acceptance).

Run the full measurement (writes ``BENCH_parallel.json``)::

    python -m pytest benchmarks/bench_parallel.py -q -s

The ``fast``-marked smoke (real pools, tiny graph) is part of the CI
benchmark matrix, so the harness cannot silently rot.
"""

from __future__ import annotations

import heapq
import json
import os
import random
import time
from pathlib import Path

import pytest

from benchmarks.common import timed

from repro.core import MiningSession, count
from repro.graph import DataGraph, erdos_renyi, from_edges, power_law
from repro.pattern import generate_clique, pattern_p1
from repro.runtime import ChunkLedger, process_count

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_parallel.json"

ROUNDS = 3
PROCESSES = (4, 8)


def _flash_crowd(
    n: int = 12_000,
    fans: int = 3_000,
    gamma: float = 2.8,
    d_min: int = 4,
    d_max: int = 40,
    seed: int = 3,
) -> DataGraph:
    """A truncated power-law body plus one flash-crowd hub.

    The body's tail is capped so no interior vertex carries a large
    task; the appended hub (degree ``fans``) holds the single task that
    approaches a full worker share — the straggler a static partition
    cannot shed.
    """
    base = power_law(n, gamma=gamma, d_min=d_min, d_max=d_max, seed=seed)
    edges = {
        (u, v) for u in base.vertices() for v in base.neighbors(u) if u < v
    }
    rng = random.Random(seed + 7)
    hub = n
    for v in rng.sample(range(n), fans):
        edges.add((v, hub))
    return from_edges(
        sorted(edges), num_vertices=n + 1, name="power-law-flash-crowd"
    )


# name -> (graph factory, skew kind)
WORKLOADS = {
    "uniform": (
        lambda: erdos_renyi(12_000, 14 / 11_999, seed=3, name="uniform"),
        "uniform",
    ),
    "power-law": (
        lambda: power_law(9_000, gamma=2.3, seed=3, name="power-law"),
        "power-law",
    ),
    "power-law-flash-crowd": (_flash_crowd, "power-law-flash-crowd"),
}


def _schedule_round(session, plan, num_workers: int) -> dict:
    """One measured round: static slice times vs dynamic chunk makespan.

    Static: each stride slice is one engine run — exactly a static
    worker's whole assignment.  Dynamic: each ledger chunk is one engine
    run, then chunks are greedily list-scheduled onto the earliest-free
    worker in claiming order — exactly the shared-cursor protocol of
    :func:`repro.runtime.parallel.process_count`.
    """
    from repro.core import accel

    view = session.view
    frontier = accel.frontier_start_order(
        view.labels, view.num_vertices, plan
    )
    weights = view.degrees()[frontier] + 1
    engine = accel.FrontierBatchedEngine(view)

    slice_seconds = []
    for offset in range(num_workers):
        elapsed, _ = timed(
            lambda s=frontier[offset::num_workers]: engine.run(
                plan, start_vertices=s, count_only=True
            )
        )
        slice_seconds.append(elapsed)

    ledger = ChunkLedger.build(
        frontier, weights=weights, num_workers=num_workers
    )
    chunk_seconds = []
    for index in range(len(ledger)):
        elapsed, _ = timed(
            lambda c=ledger.chunk(index): engine.run(
                plan, start_vertices=c, count_only=True
            )
        )
        chunk_seconds.append(elapsed)
    finish = [0.0] * num_workers
    heapq.heapify(finish)
    for elapsed in chunk_seconds:
        heapq.heappush(finish, heapq.heappop(finish) + elapsed)

    static_makespan = max(slice_seconds)
    dynamic_makespan = max(finish)
    return {
        "processes": num_workers,
        "sequential_seconds": sum(slice_seconds),
        "static_makespan_seconds": static_makespan,
        "dynamic_makespan_seconds": dynamic_makespan,
        "speedup_vs_static": static_makespan / dynamic_makespan,
        "chunks": len(ledger),
    }


@pytest.mark.fast
@pytest.mark.paper_artifact("parallel-schedule")
def test_parallel_schedule_smoke():
    """CI smoke: real pools agree across schedules on both skew shapes."""
    for graph in (
        erdos_renyi(120, 0.12, seed=2),
        _flash_crowd(n=150, fans=60, seed=2),
    ):
        expected = count(graph, generate_clique(3), engine="reference")
        for schedule in ("dynamic", "static"):
            got = process_count(
                graph,
                generate_clique(3),
                num_processes=2,
                schedule=schedule,
            )
            assert got == expected, (graph.name, schedule)
    # The ledger partitions the frontier exactly once.
    ledger = ChunkLedger.build(
        list(range(50)), weights=[1] * 50, num_workers=2
    )
    flat = [v for i in range(len(ledger)) for v in ledger.chunk(i)]
    assert flat == list(range(50))


@pytest.mark.paper_artifact("parallel-schedule")
def test_parallel_schedule_emits_json(capsys):
    """Full skew sweep: dynamic >= static everywhere, >=1.5x at high skew."""
    pattern = pattern_p1()
    results = {}
    for name, (factory, kind) in WORKLOADS.items():
        graph = factory()
        session = MiningSession(graph)
        plan = session.plan_for(pattern)
        # Warm: CSR view, adjacency keys, numpy dispatch caches — and the
        # count doubles as the real-pool parity reference.
        sequential_matches = count(graph, pattern)
        degrees = sorted(
            (graph.degree(v) for v in graph.vertices()), reverse=True
        )
        rounds = []
        for _ in range(ROUNDS):
            for num_workers in PROCESSES:
                rounds.append(_schedule_round(session, plan, num_workers))
        best = {
            str(P): max(
                r["speedup_vs_static"]
                for r in rounds
                if r["processes"] == P
            )
            for P in PROCESSES
        }
        # Real pools: counts pin the sequential reference under both
        # schedules; wall clock recorded for multi-core hosts.
        wall = {}
        for schedule in ("dynamic", "static"):
            elapsed, got = timed(
                lambda s=schedule: process_count(
                    session, pattern, num_processes=4, schedule=s
                )
            )
            assert got == sequential_matches, schedule
            wall[schedule] = elapsed
        results[name] = {
            "n": graph.num_vertices,
            "edges": graph.num_edges,
            "kind": kind,
            "pattern": "p1",
            "matches": sequential_matches,
            "max_degree": degrees[0],
            "top_degrees": degrees[:4],
            "avg_degree": round(graph.avg_degree(), 2),
            "rounds": rounds,
            "best_speedup_vs_static": best,
            "wall_clock_4procs_seconds": wall,
        }

    payload = {
        "bench": "parallel-schedule",
        "host_cpus": os.cpu_count(),
        "processes": list(PROCESSES),
        "rounds_per_workload": ROUNDS,
        "note": (
            "Dynamic (work-stealing queue of degree-weighted frontier "
            "chunks, repro.runtime.scheduler) vs static (up-front stride "
            "slices) work placement for process_count, pattern p1.  "
            "Makespans are host-independent: each worker's assignment "
            "is timed sequentially on one warm FrontierBatchedEngine "
            "(whole stride slices for static; ledger chunks greedily "
            "list-scheduled in cursor-claiming order for dynamic), the "
            "bench_fig12 work-partition idiom.  speedup_vs_static = "
            "static_makespan / dynamic_makespan; best_speedup_vs_static "
            "is the max over rounds per process count.  Real pools are "
            "run for count parity; their wall clock is informational "
            "only when host_cpus < processes.  Uniform graphs pay only "
            "chunk-dispatch overhead (>= 0.95x); the power-law tiers "
            "show the straggler gap a static partition cannot shed — "
            "the flash-crowd hub task approaches a full worker share, "
            "where stealing wins >= 1.5x."
        ),
        "workloads": results,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\n=== parallel schedule: dynamic vs static makespans ===")
        print(f"host cpus: {os.cpu_count()} (makespans are host-independent)")
        print(
            f"{'workload':<24} {'P':>2} {'round':>5} {'static':>9}"
            f" {'dynamic':>9} {'speedup':>8}"
        )
        for name, entry in results.items():
            for i, row in enumerate(entry["rounds"]):
                print(
                    f"{name:<24} {row['processes']:>2} {i:>5}"
                    f" {row['static_makespan_seconds']:>9.4f}"
                    f" {row['dynamic_makespan_seconds']:>9.4f}"
                    f" {row['speedup_vs_static']:>7.2f}x"
                )
        print(f"wrote {OUTPUT_PATH}")

    # Acceptance: dynamic never loses on uniform graphs...
    for P in PROCESSES:
        assert results["uniform"]["best_speedup_vs_static"][str(P)] >= 0.95, (
            f"dynamic scheduling regressed on the uniform graph at {P} procs"
        )
        for name in ("power-law", "power-law-flash-crowd"):
            assert results[name]["best_speedup_vs_static"][str(P)] >= 0.95, (
                f"dynamic scheduling lost to static on {name} at {P} procs"
            )
    # ...and clearly wins the high-skew straggler regime.
    flash_best = max(
        results["power-law-flash-crowd"]["best_speedup_vs_static"].values()
    )
    assert flash_best >= 1.5, (
        "work stealing no longer absorbs the flash-crowd straggler "
        f"(best {flash_best:.2f}x)"
    )
