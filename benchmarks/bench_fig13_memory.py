"""Figure 13: peak memory of intermediate state across systems.

The paper's shape, reproduced via logical byte accounting:

* Peregrine's footprint is tiny and *flat in pattern size* (recursion
  stack only);
* DFS (Fractal-like) is small but grows with aggregation state;
* BFS (Arabesque-like) holds whole levels of embeddings;
* RStream-like materializes join output before filtering — largest.
"""

import pytest

from benchmarks.common import run_once

from repro.baselines import (
    bfs_clique_count,
    bfs_fsm,
    dfs_clique_count,
    dfs_fsm,
    rstream_clique_count,
)
from repro.core import generate_plan, run_tasks
from repro.mining import fsm
from repro.pattern import generate_clique
from repro.profiling import embedding_bytes


def peregrine_clique_bytes(graph, k: int) -> int:
    """Peregrine's live state: one partial match on the recursion stack."""
    plan = generate_plan(generate_clique(k))
    ordered, _ = graph.degree_ordered()
    run_tasks(ordered, plan, count_only=True)
    return embedding_bytes(k)  # the single in-flight mapping


CLIQUE_SYSTEMS = {
    "peregrine": peregrine_clique_bytes,
    "fractal-like": lambda g, k: dfs_clique_count(g, k)[1].peak_store_bytes,
    "arabesque-like": lambda g, k: bfs_clique_count(g, k)[1].peak_store_bytes,
    "rstream-like": lambda g, k: rstream_clique_count(g, k)[1].peak_store_bytes,
}


@pytest.mark.paper_artifact("figure13")
@pytest.mark.parametrize("k", [3, 4])
@pytest.mark.parametrize("system", sorted(CLIQUE_SYSTEMS))
def test_clique_memory(benchmark, patents_small, k, system):
    nbytes = run_once(benchmark, lambda: CLIQUE_SYSTEMS[system](patents_small, k))
    benchmark.extra_info["peak_bytes"] = nbytes


@pytest.mark.paper_artifact("figure13")
@pytest.mark.parametrize("system", ["peregrine", "fractal-like", "arabesque-like"])
def test_fsm_memory(benchmark, mico_small, system):
    if system == "peregrine":
        result = run_once(benchmark, lambda: fsm(mico_small, 2, 3))
        benchmark.extra_info["peak_bytes"] = result.domain_bytes
    elif system == "fractal-like":
        _, counters = run_once(benchmark, lambda: dfs_fsm(mico_small, 2, 3))
        benchmark.extra_info["peak_bytes"] = counters.peak_store_bytes
    else:
        _, counters = run_once(benchmark, lambda: bfs_fsm(mico_small, 2, 3))
        benchmark.extra_info["peak_bytes"] = counters.peak_store_bytes


@pytest.mark.paper_artifact("figure13")
def test_memory_ordering_shape(patents_small, capsys):
    sizes = {
        name: fn(patents_small, 4) for name, fn in CLIQUE_SYSTEMS.items()
    }
    from repro.reporting import bar_chart, format_bytes

    with capsys.disabled():
        print("\n=== Figure 13 shape: 4-clique peak intermediate bytes ===")
        ordered_sizes = sorted(sizes.items(), key=lambda kv: kv[1])
        print(
            bar_chart(
                ordered_sizes,
                width=40,
                value_format=lambda v: format_bytes(int(v)),
            )
        )
    assert sizes["peregrine"] < sizes["fractal-like"]
    assert sizes["fractal-like"] < sizes["arabesque-like"]
    assert sizes["arabesque-like"] < sizes["rstream-like"]


@pytest.mark.paper_artifact("figure13")
def test_peregrine_memory_flat_in_pattern_size(patents_small):
    """Changing the clique size barely moves Peregrine's footprint (§6.7)."""
    b3 = peregrine_clique_bytes(patents_small, 3)
    b5 = peregrine_clique_bytes(patents_small, 5)
    assert b5 <= 2 * b3
