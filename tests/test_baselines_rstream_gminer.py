"""Tests for the RStream-like and G-Miner-like baselines."""

import pytest

from repro.baselines import (
    bfs_clique_count,
    gminer_match_p2,
    gminer_triangle_count,
    rstream_clique_count,
    rstream_fsm,
    rstream_motif_count,
)
from repro.core import count
from repro.errors import MemoryBudgetExceeded
from repro.graph import erdos_renyi, mico_like, with_random_labels
from repro.mining import clique_count, fsm, motif_counts
from repro.pattern import Pattern, canonical_code, pattern_p2


class TestRStream:
    def test_motifs_equal_engine(self, random_graph):
        baseline, _ = rstream_motif_count(random_graph, 3)
        engine = {
            canonical_code(p): n for p, n in motif_counts(random_graph, 3).items()
        }
        assert baseline == engine

    def test_cliques_equal_engine(self, denser_graph):
        baseline, counters = rstream_clique_count(denser_graph, 4)
        assert baseline == clique_count(denser_graph, 4)
        # Native clique support: no isomorphism computations (Fig 1b).
        assert counters.isomorphism_checks == 0

    def test_fsm_equal_engine(self):
        g = mico_like(0.15)
        baseline, _ = rstream_fsm(g, 2, 3)
        engine = {
            canonical_code(p): s for p, s in fsm(g, 2, 3).frequent.items()
        }
        assert baseline == engine

    def test_materialization_costs_more_disk_than_bfs_memory(self, denser_graph):
        """RStream stores the join output before filtering (Fig 1b)."""
        _, rs = rstream_clique_count(denser_graph, 4)
        _, ab = bfs_clique_count(denser_graph, 4)
        assert rs.peak_store_bytes > ab.peak_store_bytes

    def test_disk_budget_raises(self, denser_graph):
        with pytest.raises(MemoryBudgetExceeded):
            rstream_motif_count(denser_graph, 4, disk_budget=2_000)


class TestGMiner:
    def test_triangles_equal_engine(self, denser_graph):
        got, counters = gminer_triangle_count(denser_graph)
        assert got == clique_count(denser_graph, 3)
        assert counters.extra["tasks"] == denser_graph.num_vertices
        assert counters.extra["task_bytes"] > 0

    def test_triangles_on_triangle_free_graph(self):
        from repro.graph import cycle_graph

        got, _ = gminer_triangle_count(cycle_graph(8))
        assert got == 0

    def test_p2_equal_engine(self):
        g = with_random_labels(erdos_renyi(50, 0.25, seed=5), 6, seed=6)
        p2 = pattern_p2()
        got, _ = gminer_match_p2(g, p2)
        assert got == count(g, p2)

    def test_p2_requires_full_labels(self, random_graph):
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        with pytest.raises(ValueError):
            gminer_match_p2(random_graph, p)

    def test_task_materialization_costs_memory(self, denser_graph):
        from repro.core import EngineStats

        _, counters = gminer_triangle_count(denser_graph)
        # Peregrine materializes nothing per task; G-Miner ships subgraphs.
        assert counters.peak_store_bytes > 0
