"""Tests for pattern file I/O."""

import pytest

from repro.errors import PatternFormatError
from repro.pattern import (
    Pattern,
    load_pattern,
    load_patterns,
    pattern_from_text,
    pattern_to_text,
    save_patterns,
    pattern_p7,
    pattern_p8,
)


class TestTextFormat:
    def test_round_trip_plain(self):
        p = Pattern.from_edges([(0, 1), (1, 2), (0, 2)])
        assert pattern_from_text(pattern_to_text(p)) == p

    def test_round_trip_with_anti_and_labels(self):
        p = pattern_p8()
        p.set_label(0, 3)
        assert pattern_from_text(pattern_to_text(p)) == p

    def test_round_trip_anti_vertex(self):
        p = pattern_p7()
        assert pattern_from_text(pattern_to_text(p)) == p

    def test_comments_ignored(self):
        p = pattern_from_text("e 0 1  # an edge\n# full comment\na 0 2")
        assert p.num_edges == 1
        assert p.num_anti_edges == 1

    def test_bad_directive(self):
        with pytest.raises(PatternFormatError):
            pattern_from_text("x 0 1")

    def test_bad_arity(self):
        with pytest.raises(PatternFormatError):
            pattern_from_text("e 0 1 2")

    def test_non_integer(self):
        with pytest.raises(PatternFormatError):
            pattern_from_text("e a b")

    def test_empty_block(self):
        with pytest.raises(PatternFormatError):
            pattern_from_text("# nothing\n")


class TestFiles:
    def test_multi_pattern_round_trip(self, tmp_path):
        patterns = [
            Pattern.from_edges([(0, 1)]),
            pattern_p8(),
            pattern_p7(),
        ]
        path = tmp_path / "patterns.txt"
        save_patterns(patterns, path)
        loaded = load_patterns(path)
        assert loaded == patterns

    def test_load_pattern_single(self, tmp_path):
        path = tmp_path / "one.txt"
        save_patterns([Pattern.from_edges([(0, 1)])], path)
        assert load_pattern(path).num_edges == 1

    def test_load_pattern_rejects_multiple(self, tmp_path):
        path = tmp_path / "two.txt"
        save_patterns([Pattern.from_edges([(0, 1)])] * 2, path)
        with pytest.raises(PatternFormatError):
            load_pattern(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n")
        with pytest.raises(PatternFormatError):
            load_patterns(path)
