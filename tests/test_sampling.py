"""Tests for the first-class approximate mining tier (PR 10).

Covers the :mod:`repro.mining.sampling` estimators (accuracy, exact
degeneration, determinism, the statistical CI-coverage contract), the
vertical wiring — ``count(approx=...)`` / ``count_many`` fused sharing,
planner auto-routing under ``latency_budget``, the ``guard="downgrade"``
approximate escalation — plus the planner-sized pools satellite and the
service ``approx_count`` verb / metrics gauges.
"""

from __future__ import annotations

import asyncio
import dataclasses
import io

import pytest

from repro.core.session import ExecOptions, MiningSession
from repro.errors import MatchingError
from repro.graph import barabasi_albert, erdos_renyi, from_edges
from repro.mining.sampling import (
    ApproxCount,
    approx_count,
    approx_count_many,
    color_coding_count,
)
from repro.pattern import (
    Pattern,
    generate_chain,
    generate_clique,
    generate_star,
)
from repro.pattern.generators import generate_all_vertex_induced
from repro.runtime import guards, planner


@pytest.fixture(scope="module")
def ba_graph():
    return barabasi_albert(800, 4, seed=3)


@pytest.fixture(scope="module")
def ba_session(ba_graph):
    return MiningSession(ba_graph)


# ----------------------------------------------------------------------
# The estimator itself
# ----------------------------------------------------------------------


class TestApproxCount:
    def test_result_shape(self, ba_session):
        exact = ba_session.count(generate_clique(3))
        r = ba_session.count(generate_clique(3), approx=0.05, seed=1)
        assert isinstance(r, ApproxCount)
        assert r.ci_low <= r.estimate <= r.ci_high
        assert r.samples > 0
        assert r.frontier_size == 800
        assert int(r) == round(r.estimate)
        assert float(r) == r.estimate
        assert r.within(exact, slack=3.0)
        payload = r.as_dict()
        assert {"estimate", "stderr", "ci_low", "ci_high",
                "rel_err_achieved", "samples", "early_stop"} <= set(payload)

    def test_deterministic_with_seed(self, ba_session):
        a = ba_session.count(generate_clique(3), approx=0.05, seed=42)
        b = ba_session.count(generate_clique(3), approx=0.05, seed=42)
        assert a == b

    def test_functional_entry_point(self, ba_graph):
        r = approx_count(ba_graph, generate_clique(3), rel_err=0.05, seed=1)
        via_session = MiningSession(ba_graph).count(
            generate_clique(3), approx=0.05, seed=1
        )
        assert r.estimate == via_session.estimate

    def test_exact_fallback_when_budget_covers_frontier(self, ba_session):
        exact = ba_session.count(generate_clique(3))
        r = ba_session.count(
            generate_clique(3), approx=0.05, seed=7, max_samples=800
        )
        assert r.exact
        assert r.estimate == exact
        assert r.stderr == 0.0
        assert r.early_stop == "exhausted-frontier"

    def test_budget_cap_is_honored(self, ba_session):
        r = ba_session.count(
            generate_clique(3), approx=0.001, seed=7, max_samples=300
        )
        assert r.samples <= 300
        assert not r.exact

    def test_empty_frontier(self):
        session = MiningSession(from_edges([], num_vertices=5))
        r = session.count(generate_clique(3), approx=0.1, seed=0)
        assert r.estimate == 0.0
        assert r.early_stop in ("empty-frontier", "exhausted-frontier")

    def test_invalid_knobs_rejected(self, ba_session):
        with pytest.raises(ValueError):
            ba_session.count(generate_clique(3), approx=1.5)
        with pytest.raises(ValueError):
            ba_session.count(generate_clique(3), approx=0.05, confidence=1.0)
        with pytest.raises(ValueError):
            ba_session.count(generate_clique(3), approx=0.05, max_samples=0)
        with pytest.raises(ValueError):
            ba_session.count(generate_clique(3), latency_budget=-1.0)

    def test_count_only_contract(self, ba_session):
        with pytest.raises(MatchingError):
            ba_session.match(
                generate_clique(3), lambda m: None, approx=0.05
            )
        with pytest.raises(MatchingError):
            ba_session.count(
                generate_clique(3),
                approx=0.05,
                budget=__import__(
                    "repro.core.callbacks", fromlist=["Budget"]
                ).Budget(deadline=10.0),
            )
        with pytest.raises(MatchingError):
            ba_session.count_many(
                [generate_clique(3)], num_processes=2, approx=0.05
            )


class TestCoverage:
    """The statistical contract: empirical CI coverage >= ~nominal."""

    def test_ci_coverage_at_least_nominal(self):
        graph = erdos_renyi(400, 0.05, seed=9)
        session = MiningSession(graph)
        pattern = generate_clique(3)
        exact = session.count(pattern)
        assert exact > 0
        hits = 0
        reps = 40
        for seed in range(reps):
            r = session.count(
                pattern, approx=0.05, seed=seed, max_samples=200
            )
            assert not r.exact  # the cap must actually force sampling
            if r.ci_low <= exact <= r.ci_high:
                hits += 1
        # 95% nominal; >= 90% empirical over seeded reps (satellite 4).
        assert hits / reps >= 0.90

    def test_estimates_are_unbiased_ish(self):
        graph = erdos_renyi(300, 0.06, seed=2)
        session = MiningSession(graph)
        pattern = generate_clique(3)
        exact = session.count(pattern)
        estimates = [
            session.count(
                pattern, approx=0.05, seed=s, max_samples=150
            ).estimate
            for s in range(30)
        ]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - exact) / exact < 0.10


class TestMultiPattern:
    def test_count_many_estimates_every_pattern(self, ba_session):
        patterns = [generate_clique(3), generate_chain(3), generate_star(3)]
        exact = ba_session.count_many(patterns)
        approx = ba_session.count_many(patterns, approx=0.05, seed=5)
        assert set(approx) == set(patterns)
        for p in patterns:
            r = approx[p]
            assert isinstance(r, ApproxCount)
            assert abs(r.estimate - exact[p]) / max(exact[p], 1) < 0.25

    def test_census_tier_shares_sampled_walks(self, ba_session):
        motifs = list(generate_all_vertex_induced(4))
        exact = ba_session.count_many(motifs, edge_induced=False)
        approx = ba_session.count_many(
            motifs, edge_induced=False, approx=0.05, seed=11
        )
        for m in motifs:
            r = approx[m]
            if r.exact:
                assert r.estimate == exact[m]
            else:
                assert abs(r.estimate - exact[m]) / max(exact[m], 1) < 0.25

    def test_functional_many(self, ba_graph):
        patterns = [generate_clique(3), generate_star(3)]
        results = approx_count_many(
            ba_graph, patterns, rel_err=0.05, seed=3
        )
        assert set(results) == set(patterns)
        assert all(isinstance(r, ApproxCount) for r in results.values())


class TestColorCoding:
    def test_triangle_estimate(self, ba_session):
        exact = ba_session.count(generate_clique(3))
        r = color_coding_count(
            ba_session, generate_clique(3), num_colors=2, seed=1,
            max_colorings=32,
        )
        assert r.method == "color-coding"
        assert abs(r.estimate - exact) / exact < 0.5

    def test_disconnected_pattern_rejected(self, ba_session):
        disconnected = Pattern.from_edges([(0, 1), (2, 3)])
        with pytest.raises(MatchingError):
            color_coding_count(ba_session, disconnected, seed=1)

    def test_vertex_induced_rejected(self, ba_session):
        with pytest.raises(MatchingError):
            color_coding_count(
                ba_session, generate_clique(3), seed=1, edge_induced=False
            )


# ----------------------------------------------------------------------
# Vertical wiring: planner routing, guard escalation, exact bit-identity
# ----------------------------------------------------------------------


class TestPlannerRouting:
    def test_latency_budget_routes_to_approx(self, ba_session):
        r = ba_session.count(
            generate_clique(4), plan="auto", latency_budget=1e-9, seed=2
        )
        assert isinstance(r, ApproxCount)
        qp = ba_session.last_query_plan
        assert qp is not None and qp.use_approx
        assert qp.approx_rel_err == planner.AUTO_APPROX_REL_ERR
        assert f"approx={planner.AUTO_APPROX_REL_ERR:g}" in qp.describe()

    def test_generous_budget_stays_exact(self, ba_session):
        plain = ba_session.count(generate_clique(4))
        r = ba_session.count(
            generate_clique(4), plan="auto", latency_budget=1e9
        )
        assert isinstance(r, int) and not isinstance(r, ApproxCount)
        assert r == plain
        assert not ba_session.last_query_plan.use_approx

    def test_exact_results_bit_identical_without_approx(self, ba_session):
        # The acceptance pin: adding the tier must not perturb exact
        # counting — fixed and auto plans agree exactly with each other
        # and with a fresh pre-tier-style session.
        p = generate_clique(3)
        fixed = ba_session.count(p, plan="fixed")
        auto = ba_session.count(p, plan="auto")
        fresh = MiningSession(ba_session.graph).count(p)
        assert fixed == auto == fresh
        assert type(fixed) is int

    def test_caller_pinned_approx_survives_planning(self, ba_session):
        r = ba_session.count(generate_clique(3), plan="auto", approx=0.1,
                             seed=1)
        assert isinstance(r, ApproxCount)
        assert r.requested_rel_err == 0.1

    def test_match_rejects_latency_budget_routing(self, ba_session):
        # Only count-only runs may be auto-routed; match with a callback
        # under the same plan/budget must stay exact, not estimate.
        seen = []
        total = ba_session.match(
            generate_clique(3), seen.append, plan="auto", latency_budget=1e-9
        )
        assert type(total) is int
        assert len(seen) == total


class TestGuardEscalation:
    def test_downgrade_escalates_to_approx(self, ba_session, monkeypatch):
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        r = ba_session.count(generate_clique(3), guard="downgrade", seed=4)
        assert isinstance(r, ApproxCount)
        assert r.requested_rel_err == guards.DOWNGRADE_APPROX_REL_ERR

    def test_mild_explosion_only_downgrades(self, ba_session, monkeypatch):
        # Past the threshold but inside DOWNGRADE_APPROX_FACTOR: pacing
        # (chunk tightening), not estimation.
        estimate = ba_session._guard_estimate(
            generate_clique(3), ba_session.options()
        )
        monkeypatch.setattr(
            guards, "EXPLOSIVE_PARTIALS",
            estimate.predicted_partials / 2.0,
        )
        r = ba_session.count(generate_clique(3), guard="downgrade")
        assert type(r) is int


# ----------------------------------------------------------------------
# Satellite: planner-sized pools (num_workers=None)
# ----------------------------------------------------------------------


class TestPoolSizing:
    def test_resolver_contract(self):
        import os

        from repro.runtime.parallel import (
            DEFAULT_NUM_PROCESSES,
            DEFAULT_NUM_THREADS,
            _resolve_pool_size,
        )

        assert _resolve_pool_size(3, "auto", DEFAULT_NUM_THREADS) == 3
        assert (
            _resolve_pool_size(None, "fixed", DEFAULT_NUM_THREADS)
            == DEFAULT_NUM_THREADS
        )
        assert (
            _resolve_pool_size(None, "fixed", DEFAULT_NUM_PROCESSES)
            == DEFAULT_NUM_PROCESSES
        )
        assert _resolve_pool_size(None, "auto", 4) == (os.cpu_count() or 4)

    def test_parallel_match_plans_pool_size(self, ba_session):
        from repro.runtime.parallel import parallel_match

        exact = ba_session.count(generate_clique(3))
        result = parallel_match(
            ba_session, generate_clique(3), num_threads=None, plan="auto"
        )
        assert result.matches == exact
        qp = planner.plan_query(
            ba_session,
            generate_clique(3),
            ba_session.options(),
            num_workers=__import__("os").cpu_count() or 1,
        )
        assert result.num_threads == qp.num_workers

    def test_process_count_accepts_none(self):
        from repro.runtime.parallel import process_count

        graph = erdos_renyi(80, 0.1, seed=1)
        session = MiningSession(graph)
        exact = session.count(generate_clique(3))
        # Tiny workload: the planner sizes the pool down to 1, which
        # takes the fast in-process path.
        assert process_count(
            session, generate_clique(3), num_processes=None, plan="auto"
        ) == exact


# ----------------------------------------------------------------------
# Service: approx_count verb, envelope fields, metrics gauges
# ----------------------------------------------------------------------


class TestServiceApprox:
    @pytest.fixture
    def service(self, ba_graph):
        from repro.service import MiningService, ServiceConfig

        service = MiningService(ServiceConfig(workers=1, max_wait_ms=1.0))
        service.register_graph("g", ba_graph)
        yield service
        asyncio.run(service.close())

    def test_approx_count_verb_envelope(self, service, ba_session):
        exact = ba_session.count(generate_clique(3))
        response = asyncio.run(service.handle({
            "verb": "approx_count",
            "graph": "g",
            "pattern": "clique:3",
            "rel_err": 0.05,
            "seed": 7,
        }))
        assert response["ok"], response
        result = response["result"]
        assert result["count"] == round(result["estimate"])
        assert result["ci_low"] <= result["estimate"] <= result["ci_high"]
        assert "rel_err_achieved" in result
        assert "early_stop" in result
        assert result["ci_low"] - 3 * result["stderr"] <= exact
        assert exact <= result["ci_high"] + 3 * result["stderr"]
        stats = asyncio.run(service.handle({"verb": "stats"}))
        approx_gauges = stats["result"]["approx"]
        assert approx_gauges["engagements"] == 1
        assert approx_gauges["planner_downgrades"] == 0

    def test_estimator_knobs_rejected_in_options(self, service):
        response = asyncio.run(service.handle({
            "verb": "approx_count",
            "graph": "g",
            "pattern": "clique:3",
            "options": {"approx": 0.05},
        }))
        assert not response["ok"]
        assert response["error"]["code"] == "invalid_request"

    def test_count_verb_carries_approx_envelope(self, service):
        response = asyncio.run(service.handle({
            "verb": "count",
            "graph": "g",
            "pattern": "clique:3",
            "options": {"approx": 0.05, "seed": 3},
        }))
        assert response["ok"], response
        result = response["result"]
        assert "approx" in result
        assert result["count"] == round(result["approx"]["estimate"])

    def test_latency_budget_counts_as_planner_downgrade(self, service):
        response = asyncio.run(service.handle({
            "verb": "count",
            "graph": "g",
            "pattern": "clique:4",
            "options": {
                "plan": "auto", "latency_budget": 1e-9, "seed": 1,
            },
        }))
        assert response["ok"], response
        assert "approx" in response["result"]
        stats = asyncio.run(service.handle({"verb": "stats"}))
        approx_gauges = stats["result"]["approx"]
        assert approx_gauges["engagements"] == 1
        assert approx_gauges["planner_downgrades"] == 1


# ----------------------------------------------------------------------
# CLI: repro-mine count --approx / repro-mine approx
# ----------------------------------------------------------------------


class TestCLI:
    def run_cli(self, argv):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(argv)
        out = io.StringIO()
        code = args.func(args, out)
        return code, out.getvalue()

    DATASET = ["--dataset", "mico", "--scale", "0.05"]

    def test_count_approx_flag(self):
        code, output = self.run_cli(
            ["count", *self.DATASET, "--pattern", "clique:3",
             "--approx", "0.05", "--sample-seed", "1"]
        )
        assert code == 0
        assert "estimate:" in output
        assert "CI [" in output

    def test_approx_subcommand(self):
        code, output = self.run_cli(
            ["approx", *self.DATASET, "--pattern", "clique:3",
             "--rel-err", "0.1", "--sample-seed", "2"]
        )
        assert code == 0
        assert "estimate:" in output
        assert "stop:" in output

    def test_approx_conflicts_with_processes(self):
        with pytest.raises(SystemExit):
            self.run_cli(
                ["count", *self.DATASET, "--pattern", "clique:3",
                 "--approx", "0.05", "--processes", "2"]
            )


# ----------------------------------------------------------------------
# ExecOptions plumbing details
# ----------------------------------------------------------------------


class TestOptionPlumbing:
    def test_new_fields_default_off(self):
        opts = ExecOptions()
        assert opts.approx is None
        assert opts.confidence == 0.95
        assert opts.max_samples is None
        assert opts.latency_budget is None
        assert opts.seed is None

    def test_inner_runs_strip_sampling_knobs(self):
        from repro.mining.sampling import _inner_opts

        opts = ExecOptions(
            approx=0.05, max_samples=10, latency_budget=1.0, seed=3,
            guard="downgrade", planner="auto",
        )
        inner = _inner_opts(opts)
        assert inner.approx is None
        assert inner.max_samples is None
        assert inner.latency_budget is None
        assert inner.guard == "off"
        assert inner.planner == "fixed"

    def test_plan_query_approx_fields_serialize(self, ba_session):
        opts = dataclasses.replace(
            ba_session.options(), latency_budget=1e-9
        )
        qp = planner.plan_query(ba_session, generate_clique(3), opts)
        payload = qp.as_dict()
        assert payload["use_approx"] is True
        assert payload["approx_rel_err"] == planner.AUTO_APPROX_REL_ERR
